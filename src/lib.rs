//! # scal — Self-Checking Alternating Logic
//!
//! The umbrella crate of a full Rust reproduction of *"Self-Checking
//! Alternating Logic: Sequential Circuit Design"* (Woodard & Metze, ISCA
//! 1978; full-length source: Woodard's thesis, CSL report R-788, 1977).
//!
//! Alternating logic detects faults with **time redundancy**: a network
//! realizing a self-dual function receives every input word twice — true,
//! then complemented — and must answer with complementary outputs. Under the
//! single stuck-at model, a fault either cannot corrupt a code word or shows
//! up as a *non-alternating* pair that a simple checker catches.
//!
//! Each module re-exports one subsystem crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`logic`] | `scal-logic` | truth tables, duals, self-dualization, Quine–McCluskey, expressions |
//! | [`netlist`] | `scal-netlist` | gate-level circuits, evaluation, simulation, structure, cost, text/DOT |
//! | [`faults`] | `scal-faults` | stuck-at model, alternating-pair fault simulation |
//! | [`engine`] | `scal-engine` | compiled fault-campaign engine: levelized schedules, 64-pair packed sweeps, parallel fan-out |
//! | [`obs`] | `scal-obs` | campaign observability: typed event streams, JSONL traces, metrics, cancellation |
//! | [`analysis`] | `scal-analysis` | Algorithm 3.1, test derivation/generation, redundancy removal, repair |
//! | [`core`] | `scal-core` | SCAL verification engine, dualization, the paper's circuits |
//! | [`checkers`] | `scal-checkers` | two-rail/XOR/mixed checkers, hardcore, system composition |
//! | [`minority`] | `scal-minority` | minority modules, NAND/NOR → alternating conversion |
//! | [`seq`] | `scal-seq` | sequential SCAL: dual flip-flop & code-conversion designs, ALPT/PALT |
//! | [`system`] | `scal-system` | the SCAL computer, ADR/TMR, space codes, economics |
//! | [`serve`] | `scal-serve` | the campaign service: TCP/JSONL server, shared worker pool, client |
//!
//! ```
//! use scal::core::{dualize_synthesized, verify};
//! use scal::netlist::Circuit;
//!
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let f = c.and(&[a, b]);
//! c.mark_output("f", f);
//!
//! let alternating = dualize_synthesized(&c);
//! assert!(verify(&alternating).unwrap().is_self_checking());
//! ```
//!
//! See `README.md`, `DESIGN.md`, and `EXPERIMENTS.md` in the repository
//! root, the five runnable programs in `examples/`, and the table/figure
//! regenerators in `scal-bench` (`cargo run -p scal-bench --bin experiments
//! -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use scal_analysis as analysis;
pub use scal_checkers as checkers;
pub use scal_core as core;
pub use scal_engine as engine;
pub use scal_faults as faults;
pub use scal_logic as logic;
pub use scal_minority as minority;
pub use scal_netlist as netlist;
pub use scal_obs as obs;
pub use scal_seq as seq;
pub use scal_serve as serve;
pub use scal_system as system;
