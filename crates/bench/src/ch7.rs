//! Chapter 7 experiments: economics, the SCAL computer, and fault-tolerant
//! configurations.

use scal_system::adr::{run_pair, sum_program, CostModel, FaultyMember};
use scal_system::tmr::run_tmr;
use scal_system::{Cpu, CpuMode, ScalComputer};
use std::fmt::Write;

/// Fig. 7.2 — the reliability design trade-off: benefit, cost, and utility
/// per protection degree; the utility peak lands on single-fault protection
/// for typical values.
#[must_use]
pub fn fig7_2(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 7.2: reliability design trade-off ==");
    let value = 5.0;
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>6} {:>8}",
        "protection", "benefit", "cost", "utility"
    );
    for p in scal_system::econ::trade_off(value) {
        let _ = writeln!(
            s,
            "{:<16} {:>8.2} {:>6.2} {:>8.2}",
            format!("{:?}", p.degree),
            p.benefit,
            p.cost,
            p.utility
        );
    }
    let _ = writeln!(
        s,
        "peak utility at {:?} (the paper: 'the peak utility is reached when single fault protection is used')",
        scal_system::econ::optimal_degree(value)
    );
    s
}

/// Figs. 7.1/7.3/7.4 — the SCAL computer: program execution, the 2x time
/// cost of alternating mode, bus-translator round trips, and a datapath
/// fault-injection campaign measuring detection coverage.
#[must_use]
pub fn fig7_3(ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 7.3: the SCAL computer ==");
    let program = sum_program(20);

    let mut normal = Cpu::new(CpuMode::Normal);
    normal.run(&program, 100_000).expect("clean run");
    let mut scal = Cpu::new(CpuMode::Alternating);
    scal.run(&program, 100_000).expect("clean run");
    let _ = writeln!(
        s,
        "workload sum(1..=20): result {} (expected 210); periods normal={} alternating={} (x{})",
        scal.memory.read(0x10).unwrap(),
        normal.stats().periods,
        scal.stats().periods,
        scal.stats().periods / normal.stats().periods.max(1)
    );

    // Bus translators.
    let mut machine = ScalComputer::new();
    let ok = (0u16..256).all(|v| machine.bus_round_trip(v as u8).unwrap() == v as u8);
    let _ = writeln!(s, "ALPT/PALT bus round trip exact for all 256 words: {ok}");
    let corrupted_detected = {
        let bus = scal_system::machine::BusTranslator::new();
        let mut det = 0;
        for bit in 0..8u8 {
            let (_, _, code_ok) = bus.round_trip(0x5A, Some(bit));
            if !code_ok {
                det += 1;
            }
        }
        det
    };
    let _ = writeln!(
        s,
        "single stored-bit bus corruptions flagged: {corrupted_detected}/8"
    );

    // Fault-injection campaign over every adder fault, on the workload,
    // through the observable CPU campaign builder.
    let campaign = scal_system::campaign::Campaign::new(scal_system::CpuUnit::Adder)
        .workloads(vec![scal_system::Workload {
            name: "sum(1..=20)",
            program: program.clone(),
            setup: vec![],
            expect: 210,
        }])
        .budget(100_000)
        .observer(ctx)
        .run();
    let detected: usize = campaign.results.iter().map(|r| r.detected).sum();
    let dormant: usize = campaign.results.iter().map(|r| r.dormant).sum();
    let wrong: usize = campaign.results.iter().map(|r| r.undetected_wrong).sum();
    let _ = writeln!(
        s,
        "adder fault campaign on the workload: {} faults -> {} detected, {} dormant (answer still correct), {} undetected-wrong",
        campaign.results.len(),
        detected,
        dormant,
        wrong
    );
    let _ = writeln!(
        s,
        "single-fault coverage: every sensitized adder fault is caught by alternation checking: {}",
        wrong == 0
    );

    // §7.2 system encoding considerations: match the code to the failure
    // mode. Escape rate = fraction of unidirectional (same-direction
    // multi-line) corruptions each space code misses.
    let _ = writeln!(s, "\nsystem encoding (§7.2) — unidirectional escape rates:");
    for (name, rate) in scal_system::codes::unidirectional_escape_rates() {
        let _ = writeln!(s, "  {name:<12} {:.3}", rate);
    }
    let _ = writeln!(
        s,
        "parity: cheapest (1 line), single-fault only; Berger / m-out-of-n: all-unidirectional, for space-checked CPUs; alternating logic: the time-domain alternative this system uses"
    );
    s
}

/// Fig. 7.5 / §7.4 — the fault-tolerant configuration against TMR and
/// Shedletsky's ADR: behaviour under injected faults and the hardware cost
/// factors.
#[must_use]
pub fn fig7_5(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 7.5: fault-tolerant alternating-logic CPU vs TMR/ADR =="
    );
    let program = sum_program(15);

    let clean = run_pair(&program, None);
    let _ = writeln!(
        s,
        "fault-free pair: {} instructions, {} mismatches, {} periods",
        clean.instructions, clean.mismatches, clean.periods
    );
    for member in [FaultyMember::Normal, FaultyMember::Scal] {
        let out = run_pair(&program, Some((member, 0)));
        let _ = writeln!(
            s,
            "fault in {:?} member: diagnosed+removed {:?}, mismatches {}, checks fired {}, periods {}",
            member, out.removed, out.mismatches, out.checks_fired, out.periods
        );
    }

    let tmr_clean = run_tmr(&program, None);
    let tmr_faulty = run_tmr(&program, Some((2, 0)));
    let _ = writeln!(
        s,
        "TMR baseline: clean acc {} / faulty-member acc {} (corrections {}), periods {} (3x hardware, 1x time)",
        tmr_clean.acc, tmr_faulty.acc, tmr_faulty.corrections, tmr_clean.periods
    );

    let m = CostModel::default();
    let _ = writeln!(s, "\nhardware cost factors (A = {}, S = {}):", m.a, m.s);
    let _ = writeln!(
        s,
        "  Shedletsky ADR (A*S*N) : {:.1} N  [paper: ~4N, 'probably worse than TMR']",
        m.adr_factor()
    );
    let _ = writeln!(s, "  TMR (3N)               : {:.1} N", m.tmr_factor());
    let _ = writeln!(
        s,
        "  Fig 7.5 pair ((1+A)N)  : {:.1} N  [beats TMR iff A < 2]",
        m.parallel_scal_factor()
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig7_2_peaks_at_single_fault() {
        assert!(
            super::fig7_2(&crate::ExperimentCtx::default()).contains("peak utility at SingleFault")
        );
    }

    #[test]
    fn fig7_3_has_full_coverage() {
        let r = super::fig7_3(&crate::ExperimentCtx::default());
        assert!(r.contains("caught by alternation checking: true"), "{r}");
        assert!(r.contains("flagged: 8/8"));
        assert!(r.contains("(x2)"));
    }

    #[test]
    fn fig7_5_diagnoses_both_members() {
        let r = super::fig7_5(&crate::ExperimentCtx::default());
        assert!(r.contains("removed Some(Normal)"));
        assert!(r.contains("removed Some(Scal)"));
    }
}
