//! Chapter 4 experiments: the ALPT/PALT translators and Table 4.1.

use scal_netlist::Sim;
use scal_seq::kohavi::{table_4_1, table_4_1_general};
use scal_seq::{alpt, palt};
use std::fmt::Write;

/// Fig. 4.2 — the dual flip-flop machine's sample data stream: inputs,
/// feedback variables, and outputs all alternate in unison, with the
/// feedback lagging one full pair (two periods) behind.
#[must_use]
pub fn fig4_2(ctx: &crate::ExperimentCtx) -> String {
    use scal_seq::dual_ff::AltSeqDriver;
    use scal_seq::kohavi::{kohavi_0101, reynolds_circuit};
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 4.2: dual flip-flop data stream (0101 detector) =="
    );
    let machine = reynolds_circuit();
    let m = kohavi_0101();
    let stream = [0u32, 1, 0, 1, 0, 1];
    let golden = m.run(&stream);
    let mut drv = AltSeqDriver::new(&machine);
    let _ = writeln!(
        s,
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "word", "(X, X')", "(z, z')", "(Y1Y0,Y1'Y0')", "machine z"
    );
    for (i, &x) in stream.iter().enumerate() {
        let (o1, o2) = drv.apply(&[x == 1]);
        let y = |o: &Vec<bool>| format!("{}{}", u8::from(o[2]), u8::from(o[1]));
        let _ = writeln!(
            s,
            "{i:>6} {:>10} {:>10} {:>12} {:>10}",
            format!("({x}, {})", 1 - x),
            format!("({}, {})", u8::from(o1[0]), u8::from(o2[0])),
            format!("({}, {})", y(&o1), y(&o2)),
            u8::from(golden[i][0])
        );
    }
    let _ = writeln!(
        s,
        "every line alternates each pair; z matches the unchecked machine in period 1"
    );
    // Exhaustive fault campaign over the dual-FF machine on this stream,
    // through the sequential Campaign builder (forwards the observer).
    let words: Vec<Vec<bool>> = stream.iter().map(|&x| vec![x == 1]).collect();
    let campaign = scal_seq::Campaign::new(&machine, &words)
        .backend(ctx.seq_backend())
        .eval_mode(ctx.eval_mode())
        .observer(ctx)
        .run()
        .expect("dual-FF machine simulates");
    let detected = campaign
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, scal_seq::SeqOutcome::Detected { .. }))
        .count();
    let violations = campaign
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, scal_seq::SeqOutcome::Violation { .. }))
        .count();
    let _ = writeln!(
        s,
        "fault campaign on this stream: {} faults -> {} detected, {} dormant, {} violations",
        campaign.outcomes.len(),
        detected,
        campaign.outcomes.len() - detected - violations,
        violations
    );
    s
}

/// Figs. 4.4–4.6 — translator behaviour and self-checking: round-trip
/// correctness, the distance-2 code invariant, and single-bit corruption
/// coverage, for several word sizes (odd sizes fold the period clock into
/// the check, per §4.3).
#[must_use]
pub fn fig4_4(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Figs 4.4-4.6: ALPT / PALT code conversion ==");
    for n in [2usize, 3, 4, 8] {
        let a = alpt(n);
        let p = palt(n);
        let mut round_trips = 0usize;
        let mut detected = 0usize;
        let mut injections = 0usize;
        for word in 0..(1u32 << n) {
            // ALPT: drive the alternating pair.
            let mut sim = Sim::new(&a);
            let w: Vec<bool> = (0..n).map(|i| (word >> i) & 1 == 1).collect();
            let mut p1 = w.clone();
            p1.push(false);
            sim.step(&p1);
            let mut p2: Vec<bool> = w.iter().map(|&b| !b).collect();
            p2.push(true);
            sim.step(&p2);
            let stored: Vec<bool> = sim.state().to_vec();

            // PALT: read back in period 1, check both periods.
            let read = |bits: &[bool]| -> (u32, bool) {
                let mut ok = true;
                let mut val = 0u32;
                for phi in [false, true] {
                    let mut ins = bits.to_vec();
                    ins.push(phi);
                    let out = p.eval(&ins);
                    if !phi {
                        for (i, &b) in out.iter().take(n).enumerate() {
                            val |= u32::from(b) << i;
                        }
                    }
                    ok &= out[n] != out[n + 1];
                }
                (val, ok)
            };
            let (val, ok) = read(&stored);
            if val == word && ok {
                round_trips += 1;
            }
            // Corrupt every stored bit (including the parity rail).
            for bit in 0..=n {
                let mut bad = stored.clone();
                bad[bit] = !bad[bit];
                let (_, ok) = read(&bad);
                injections += 1;
                if !ok {
                    detected += 1;
                }
            }
        }
        let _ = writeln!(
            s,
            "n={n}: {round_trips}/{} words round-trip exactly; {detected}/{injections} single stored-bit corruptions flagged; flip-flops = n+1 = {}",
            1u32 << n,
            alpt(n).cost().flip_flops
        );
    }
    s
}

/// Table 4.1 — comparative costs of the 0101 sequence detector, paper
/// numbers alongside our synthesized reconstructions, plus the general-case
/// formulas at growing machine sizes.
#[must_use]
pub fn tab4_1(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table 4.1: comparative costs of the 0101 sequence detector =="
    );
    let _ = writeln!(
        s,
        "{:<40} {:>9} {:>7} | {:>9} {:>7}",
        "", "paper FF", "gates", "ours FF", "gates"
    );
    for row in table_4_1() {
        let _ = writeln!(
            s,
            "{:<40} {:>9} {:>7} | {:>9} {:>7}",
            row.design,
            row.paper_flip_flops.map_or("-".into(), |v| v.to_string()),
            row.paper_gates.map_or("-".into(), |v| v.to_string()),
            row.measured_flip_flops,
            row.measured_gates
        );
    }
    let _ = writeln!(
        s,
        "\nGeneral case (n flip-flops, m gates in the Kohavi machine):"
    );
    for (n, m) in [(2usize, 12usize), (8, 60), (16, 150), (32, 400)] {
        let _ = writeln!(s, "  n={n}, m={m}:");
        for (name, ff, gates) in table_4_1_general(n, m) {
            let _ = writeln!(s, "    {name:<22} {ff:>6.0} flip-flops {gates:>8.1} gates");
        }
    }
    let _ = writeln!(
        s,
        "\nshape check: translator flip-flops (n+1) < dual-FF (2n) for all n > 1; gate penalty additive (n+2)"
    );

    // Measured sweep: actual synthesized pattern detectors of growing size.
    let _ = writeln!(s, "\nMeasured sweep (synthesized 01.. pattern detectors):");
    let _ = writeln!(
        s,
        "{:>8} {:>14} {:>14} {:>16}",
        "pattern", "baseline FF/g", "dual-FF FF/g", "translator FF/g"
    );
    for row in scal_seq::patterns::measured_sweep(&[4, 8, 16]) {
        let _ = writeln!(
            s,
            "{:>8} {:>10}/{:<4} {:>10}/{:<4} {:>12}/{:<4}",
            row.pattern_len,
            row.baseline.0,
            row.baseline.1,
            row.dual_ff.0,
            row.dual_ff.1,
            row.translator.0,
            row.translator.1
        );
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_2_streams_alternate_and_match() {
        let r = super::fig4_2(&crate::ExperimentCtx::default());
        assert!(
            r.contains("(1, 0)     (1, 0)"),
            "detections must appear:\n{r}"
        );
        assert!(r.contains("period 1"));
    }

    #[test]
    fn translators_fully_detect_single_corruptions() {
        let r = super::fig4_4(&crate::ExperimentCtx::default());
        // Every "detected/injections" pair must be complete.
        for line in r.lines().filter(|l| l.contains("round-trip")) {
            let frag = line.split(';').nth(1).unwrap();
            let nums: Vec<&str> = frag.trim().split('/').collect();
            let detected: usize = nums[0].rsplit(' ').next().unwrap().parse().unwrap();
            let total: usize = nums[1].split(' ').next().unwrap().parse().unwrap();
            assert_eq!(detected, total, "line: {line}");
        }
    }

    #[test]
    fn table_4_1_reports_both_columns() {
        let r = super::tab4_1(&crate::ExperimentCtx::default());
        assert!(r.contains("Kohavi example"));
        assert!(r.contains("Translator"));
        assert!(r.contains("paper FF"));
    }
}
