//! Extension experiments: machinery the paper motivates but leaves to
//! future work or cites (its §8.3 recommendations and \[SHED2\]).

use scal_analysis::{generate_tests, validate_tests};
use scal_checkers::compose::{attach_dual_rail, drive_pair};
use scal_core::paper;
use scal_netlist::Sim;
use scal_system::retry::Bus;
use std::fmt::Write;

/// Complete stuck-at test-set generation (extending §3.2's per-line
/// derivation to whole networks — the "constructive design procedures"
/// direction of §8.3).
#[must_use]
pub fn ext_testgen(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== extension: complete stuck-at test generation ==");
    let circuits = [
        ("self-dual adder", paper::self_dual_adder()),
        ("2-bit ripple adder", paper::ripple_adder(2)),
        ("fig 3.7 network", paper::fig3_7().circuit),
    ];
    for (name, c) in circuits {
        let tests = generate_tests(&c).expect("generable");
        let missed = validate_tests(&c, &tests);
        let exhaustive = 1usize << (c.inputs().len() - 1);
        let _ = writeln!(
            s,
            "{name:<20}: {} faults, {} test pairs (vs {} exhaustive), coverage {:.1}%, validated missed = {}",
            tests.fault_count,
            tests.pairs.len(),
            exhaustive,
            100.0 * tests.coverage(),
            missed.len()
        );
    }
    s
}

/// The complete checked system of Chapter 5 as one netlist: network +
/// dual-rail checker + Fig 5.7 latch + Fig 5.5 clock gate, driven at gate
/// level with fault injection.
#[must_use]
pub fn ext_checked_system(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== extension: fully composed checked system (Ch. 5) ==");
    let net = paper::self_dual_adder();
    let checked = attach_dual_rail(&net);
    let cost = checked.circuit.cost();
    let _ = writeln!(
        s,
        "adder + checker + latch + clock gate: {} gates, {} flip-flops (network alone: {} gates)",
        cost.gates,
        cost.flip_flops,
        net.cost().gates
    );
    // Healthy run.
    let mut sim = Sim::new(&checked.circuit);
    let healthy = (0..8u32).all(|m| {
        let w: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
        let (o1, o2) = drive_pair(&mut sim, &w);
        o1[checked.clk_out] && o2[checked.clk_out]
    });
    let _ = writeln!(s, "healthy sweep keeps the clock running: {healthy}");
    // Fault campaign on the network region: clock must gate.
    let mut gated = 0usize;
    let mut total = 0usize;
    for fault in scal_faults::enumerate_faults(&net) {
        let checked = attach_dual_rail(&net);
        let mut sim = Sim::new(&checked.circuit);
        let site = checked.map_site(fault.site);
        sim.attach(scal_netlist::Override {
            site,
            value: fault.stuck,
        });
        total += 1;
        let mut stopped = false;
        for _round in 0..2 {
            for m in 0..8u32 {
                let w: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
                let (o1, o2) = drive_pair(&mut sim, &w);
                if !o1[checked.clk_out] || !o2[checked.clk_out] {
                    stopped = true;
                }
            }
        }
        if stopped {
            gated += 1;
        }
    }
    let _ = writeln!(
        s,
        "network-fault campaign: {gated}/{total} single faults stop the clock (the remainder are input-branch equivalents already counted)"
    );
    s
}

/// Automatic fanout-splitting repair (§8.3's "constructive design
/// procedures"): mechanize the Fig 3.4 → Fig 3.7 fix and apply it to the
/// paper's own broken example.
#[must_use]
pub fn ext_repair(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== extension: automatic self-checking repair ==");
    let fig = paper::fig3_4();
    let (fixed, report) = scal_analysis::make_self_checking(&fig.circuit).expect("analyzable");
    let _ = writeln!(
        s,
        "Fig 3.4 network: {} splits -> self-checking: {}; gates {} -> {}",
        report.splits, report.self_checking, report.gates_before, report.gates_after
    );
    let hand = paper::fig3_7().circuit;
    let _ = writeln!(
        s,
        "hand fix (Fig 3.7): {} gates; automatic fix: {} gates; functions identical: {}",
        hand.cost().gates,
        fixed.cost().gates,
        fixed.output_tts() == fig.circuit.output_tts()
    );
    let verdict = scal_core::verify(&fixed).expect("verifies");
    let _ = writeln!(
        s,
        "exhaustive confirmation of the automatic fix: fault-secure {}, self-testing {}",
        verdict.fault_secure, verdict.self_testing
    );
    s
}

/// Shedletsky's alternate data retry \[SHED2\]: parity detection + time
/// redundancy = single-stuck-line *correction* on a bus.
#[must_use]
pub fn ext_adr_retry(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== extension: alternate data retry (Shedletsky) ==");
    let mut corrected = 0usize;
    let mut retried = 0usize;
    let mut total = 0usize;
    for line in 0..=8u8 {
        for stuck in [false, true] {
            let bus = Bus::new(8).with_stuck_line(line, stuck);
            for v in 0..=255u16 {
                total += 1;
                let t = bus.adr_transfer(v as u8).expect("single fault correctable");
                if t.value == v as u8 {
                    corrected += 1;
                }
                if t.retried {
                    retried += 1;
                }
            }
        }
    }
    let _ = writeln!(
        s,
        "all (line, stuck, word) combinations: {corrected}/{total} delivered exactly; {retried} needed the complemented retry"
    );
    let _ = writeln!(
        s,
        "time redundancy upgrades the distance-2 parity code from detection to correction — at double transfer time, the paper's recurring trade"
    );
    s
}

/// Compiled-engine fault-campaign throughput ([`scal_engine::EngineStats`])
/// on the paper's networks, exact mode vs early fault dropping, under the
/// context's `--eval-mode` (cone-restricted by default).
#[must_use]
pub fn ext_engine(ctx: &crate::ExperimentCtx) -> String {
    use scal_faults::{enumerate_faults, Campaign};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== extension: compiled fault-campaign engine [{} eval] ==",
        ctx.eval_mode()
    );
    let circuits = [
        ("fig 3.7 network", paper::fig3_7().circuit),
        ("4-bit ripple adder", paper::ripple_adder(4)),
        ("8-bit ripple adder", paper::ripple_adder(8)),
    ];
    for (name, c) in circuits {
        let faults = enumerate_faults(&c);
        for (mode, drop) in [("exact", false), ("drop", true)] {
            let report = Campaign::new(&c)
                .faults(faults.clone())
                .drop_after_detection(drop)
                // Pin the pattern-major path: the tracer narrates per-fault
                // cone stats, which auto fault-packing would fold into lane
                // batches.
                .fault_packing(false)
                .eval_mode(ctx.eval_mode())
                .observer(ctx)
                .run()
                .expect("paper networks are engine-compatible");
            let _ = writeln!(s, "{name:<20} [{mode}]: {}", report.stats.summary());
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn testgen_reports_full_coverage() {
        let r = super::ext_testgen(&crate::ExperimentCtx::default());
        assert!(r.contains("coverage 100.0%"));
        assert!(r.contains("missed = 0"));
    }

    #[test]
    fn checked_system_gates_on_faults() {
        let r = super::ext_checked_system(&crate::ExperimentCtx::default());
        assert!(r.contains("keeps the clock running: true"));
    }

    #[test]
    fn repair_fixes_fig3_4_automatically() {
        let r = super::ext_repair(&crate::ExperimentCtx::default());
        assert!(r.contains("self-checking: true"));
        assert!(r.contains("functions identical: true"));
        assert!(r.contains("fault-secure true"));
    }

    #[test]
    fn engine_stats_report_throughput() {
        let r = super::ext_engine(&crate::ExperimentCtx::default());
        assert!(r.contains("patterns/s"));
        assert!(r.contains("[exact]") && r.contains("[drop]"));
    }

    #[test]
    fn adr_retry_corrects_everything() {
        let r = super::ext_adr_retry(&crate::ExperimentCtx::default());
        let frag = r.lines().find(|l| l.contains("delivered exactly")).unwrap();
        let nums: Vec<usize> = frag
            .split(&[' ', '/'][..])
            .filter_map(|w| w.parse().ok())
            .collect();
        assert_eq!(nums[0], nums[1], "corrected must equal total");
    }
}
