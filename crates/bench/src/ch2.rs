//! Chapter 2 experiment: the self-dual adder of Fig. 2.2.

use scal_core::paper::{ripple_adder, self_dual_adder};
use scal_faults::Campaign;
use std::fmt::Write;

/// Fig. 2.2 — the self-dual (Liu) full adder: verify self-duality of both
/// outputs, zero added hardware for alternation, and full self-checking by
/// exhaustive single-fault campaign; then scale to a ripple adder.
#[must_use]
pub fn fig2_2(ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 2.2: self-dual adder ==");
    let adder = self_dual_adder();
    let cost = adder.cost();
    let tts = adder.output_tts();
    let _ = writeln!(
        s,
        "full adder: {} gates ({} gate inputs), {} flip-flops",
        cost.gates, cost.gate_inputs, cost.flip_flops
    );
    let _ = writeln!(
        s,
        "sum self-dual: {}   carry self-dual: {}   (alternating with NO added hardware)",
        tts[0].is_self_dual(),
        tts[1].is_self_dual()
    );
    let report = Campaign::new(&adder)
        // The experiments tracer narrates per-fault observability (the
        // requested eval-mode payload, cone stats), so pin the
        // pattern-major path: auto fault-packing would fold those events
        // into lane batches and report eval mode "full".
        .fault_packing(false)
        .eval_mode(ctx.eval_mode())
        .observer(ctx)
        .run()
        .expect("adder verifies");
    let _ = writeln!(
        s,
        "exhaustive SCAL verification: {} faults x {} pairs -> fault-secure: {}, self-testing: {}",
        report.results.len(),
        1usize << (adder.inputs().len() - 1),
        report.all_fault_secure(),
        report.all_tested()
    );

    for bits in [2usize, 4, 8] {
        let ra = ripple_adder(bits);
        let c = ra.cost();
        let sd = ra.output_tts().iter().all(scal_logic::Tt::is_self_dual);
        let _ = writeln!(
            s,
            "{bits}-bit ripple adder: {} gates, all outputs self-dual: {sd}",
            c.gates
        );
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_mentions_key_facts() {
        let r = super::fig2_2(&crate::ExperimentCtx::default());
        assert!(r.contains("fault-secure: true"));
        assert!(r.contains("self-testing: true"));
        assert!(r.contains("sum self-dual: true"));
    }
}
