//! The SCAL conversion cost-factor study (§2.4, §4.5, Table 4.1's 1.8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scal_core::{dualize, dualize_synthesized};
use scal_logic::{qm, Tt};
use scal_netlist::{Circuit, NodeId};
use std::fmt::Write;

/// Two-level NAND-NAND baseline realization of a set of functions (the
/// "normal logic" a designer would have built).
fn synth_baseline(tts: &[Tt]) -> Circuit {
    let n = tts[0].nvars();
    let mut c = Circuit::new();
    let vars: Vec<NodeId> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
    let mut inverters: Vec<Option<NodeId>> = vec![None; n];
    for (k, tt) in tts.iter().enumerate() {
        let node = realize(&mut c, &vars, &mut inverters, tt);
        c.mark_output(format!("f{k}"), node);
    }
    c
}

fn realize(c: &mut Circuit, vars: &[NodeId], inverters: &mut [Option<NodeId>], tt: &Tt) -> NodeId {
    if tt.is_zero() {
        return c.constant(false);
    }
    if tt.is_one() {
        return c.constant(true);
    }
    let cover = qm::minimize(tt, None);
    let mut terms = Vec::new();
    for cube in &cover {
        let mut lits = Vec::new();
        for v in 0..tt.nvars() {
            let bit = 1u32 << v;
            if cube.mask() & bit != 0 {
                lits.push(if cube.value() & bit != 0 {
                    vars[v]
                } else {
                    match inverters[v] {
                        Some(x) => x,
                        None => {
                            let x = c.not(vars[v]);
                            inverters[v] = Some(x);
                            x
                        }
                    }
                });
            }
        }
        terms.push(if lits.len() == 1 {
            c.not(lits[0])
        } else {
            c.nand(&lits)
        });
    }
    if terms.len() == 1 {
        c.not(terms[0])
    } else {
        c.nand(&terms)
    }
}

/// `cost1_8` — the ablation: for a suite of benchmark functions, compare the
/// two-level baseline against (a) the re-synthesized self-dual network and
/// (b) the structural Yamamoto envelope, and report the gate-cost factor
/// distribution against Reynolds' 1.8 average (and the paper's note that it
/// "varies widely, from one for an adder to multiples for some logic").
#[must_use]
pub fn cost1_8(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== cost study: the SCAL conversion factor (Reynolds' 1.8) =="
    );
    let mut suite: Vec<(String, Vec<Tt>)> = Vec::new();

    // Named functions.
    let a3 = |i: usize| Tt::var(3, i);
    suite.push((
        "full adder (self-dual)".into(),
        vec![
            &a3(0) ^ &a3(1) ^ &a3(2),
            (&a3(0) & &a3(1)) | (&a3(1) & &a3(2)) | (&a3(0) & &a3(2)),
        ],
    ));
    suite.push(("and2".into(), vec![Tt::var(2, 0) & Tt::var(2, 1)]));
    suite.push((
        "mux2".into(),
        vec![(Tt::var(3, 2) & Tt::var(3, 1)) | (!Tt::var(3, 2) & Tt::var(3, 0))],
    ));
    suite.push((
        "comparator (a>b) 2-bit".into(),
        vec![Tt::from_fn(4, |m| (m & 3) > ((m >> 2) & 3))],
    ));

    // Random functions.
    let mut rng = StdRng::seed_from_u64(0x5CA1);
    for n in [3usize, 4, 5] {
        for k in 0..3 {
            let tt = Tt::from_fn(n, |_| rng.gen_bool(0.5));
            suite.push((format!("random {n}-var #{k}"), vec![tt]));
        }
    }

    let _ = writeln!(
        s,
        "{:<26} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "function", "base", "synthesized", "factor", "structural", "factor"
    );
    let mut factors = Vec::new();
    for (name, tts) in &suite {
        let base = synth_baseline(tts);
        let bg = base.cost().gates.max(1);
        let synth = dualize_synthesized(&base);
        let sg = synth.cost().gates;
        let structural = dualize(&base);
        let stg = structural.cost().gates;
        let f_synth = sg as f64 / bg as f64;
        factors.push(f_synth);
        let _ = writeln!(
            s,
            "{name:<26} {bg:>9} {sg:>11} {:>9.2} {stg:>11} {:>9.2}",
            f_synth,
            stg as f64 / bg as f64
        );
    }
    let mean = factors.iter().sum::<f64>() / factors.len() as f64;
    let min = factors.iter().copied().fold(f64::INFINITY, f64::min);
    let max = factors.iter().copied().fold(0.0f64, f64::max);
    let _ = writeln!(
        s,
        "\nsynthesized-route factor: mean {mean:.2} (min {min:.2}, max {max:.2}); paper: 'cost factors vary widely from one for an adder to multiples for some logic', average ~1.8"
    );
    let _ = writeln!(
        s,
        "the self-dual adder's factor is ~1.0 (free), reproducing the paper's anchor point"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn adder_factor_is_about_one() {
        let r = super::cost1_8(&crate::ExperimentCtx::default());
        let line = r
            .lines()
            .find(|l| l.starts_with("full adder"))
            .expect("adder row");
        let cols: Vec<&str> = line.split_whitespace().collect();
        let factor: f64 = cols[cols.len() - 3].parse().unwrap();
        assert!(factor <= 1.3, "adder should be (nearly) free: {factor}");
    }

    #[test]
    fn mean_factor_is_in_a_plausible_band() {
        let r = super::cost1_8(&crate::ExperimentCtx::default());
        let mean_line = r.lines().find(|l| l.contains("mean")).unwrap();
        let mean: f64 = mean_line
            .split("mean ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mean > 1.0 && mean < 4.0, "mean factor {mean}");
    }
}
