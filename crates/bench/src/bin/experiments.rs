//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p scal-bench --bin experiments -- all
//! cargo run -p scal-bench --bin experiments -- tab4_1 fig3_6
//! cargo run -p scal-bench --bin experiments -- ext_engine --trace out.jsonl
//! cargo run -p scal-bench --bin experiments -- all --metrics
//! ```
//!
//! `--trace FILE` streams every campaign event the selected experiments
//! emit as JSON lines; `--metrics` prints aggregated counters and phase
//! wall-time histograms after the reports; `--coverage-out FILE` writes one
//! per-fault coverage map per campaign as JSON lines; `--profile` prints
//! the per-phase timing tree of every campaign.

use scal_bench::ExperimentCtx;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: experiments [--trace FILE] [--metrics] [--coverage-out FILE] [--profile] \
         [--eval-mode full|cone] [--seq-backend packed|scalar|graph] <id>... | all | list"
    );
    eprintln!("ids:");
    for (id, _) in scal_bench::EXPERIMENTS {
        eprintln!("  {id}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExperimentCtx::new();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => {
                let Some(path) = iter.next() else {
                    eprintln!("--trace needs a file argument");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = ctx.set_trace(&path) {
                    eprintln!("cannot create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "--metrics" => ctx.enable_metrics(),
            "--coverage-out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--coverage-out needs a file argument");
                    return ExitCode::FAILURE;
                };
                ctx.set_coverage_out(path);
            }
            "--profile" => ctx.enable_profile(),
            "--eval-mode" => {
                let Some(raw) = iter.next() else {
                    eprintln!("--eval-mode needs an argument (full|cone)");
                    return ExitCode::FAILURE;
                };
                match raw.parse() {
                    Ok(mode) => ctx.set_eval_mode(mode),
                    Err(_) => {
                        eprintln!("bad --eval-mode value {raw:?} (want full|cone)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seq-backend" => {
                let Some(raw) = iter.next() else {
                    eprintln!("--seq-backend needs an argument (packed|scalar|graph)");
                    return ExitCode::FAILURE;
                };
                match raw.parse() {
                    Ok(backend) => ctx.set_seq_backend(backend),
                    Err(_) => {
                        eprintln!("bad --seq-backend value {raw:?} (want packed|scalar|graph)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if ids.len() == 1 && ids[0] == "list" {
        for (id, _) in scal_bench::EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if ids.len() == 1 && ids[0] == "all" {
        scal_bench::EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in ids {
        match scal_bench::run(id, &ctx) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(metrics) = ctx.metrics() {
        println!("== metrics ==");
        print!("{}", metrics.render());
    }
    if let Some(profiler) = ctx.profiler() {
        println!("== profiles ==");
        for profile in profiler.profiles() {
            print!("{}", profile.render());
        }
    }
    match ctx.write_coverage() {
        Ok(Some((path, maps))) => {
            eprintln!("coverage: {maps} map(s) written to {}", path.display());
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("coverage write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = ctx.finish() {
        eprintln!("trace write failed: {e}");
        return ExitCode::FAILURE;
    }
    if ctx.trace_lines() > 0 {
        eprintln!("trace: {} events written", ctx.trace_lines());
    }
    ExitCode::SUCCESS
}
