//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p scal-bench --bin experiments -- all
//! cargo run -p scal-bench --bin experiments -- tab4_1 fig3_6
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id>... | all | list");
        eprintln!("ids:");
        for (id, _) in scal_bench::EXPERIMENTS {
            eprintln!("  {id}");
        }
        return ExitCode::FAILURE;
    }
    if args.len() == 1 && args[0] == "list" {
        for (id, _) in scal_bench::EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.len() == 1 && args[0] == "all" {
        scal_bench::EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match scal_bench::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
