//! `scal_run` — netlist interchange and campaign driver for generated and
//! imported designs.
//!
//! ```text
//! scal_run gen --kind selfdual --gates 100000 --seed 42 --out big.v
//! scal_run convert big.v big.bench
//! scal_run info big.bench
//! scal_run run big.v --threads 1 --max-faults 256
//! ```
//!
//! `gen` writes a synthetic circuit in the format named by the output
//! extension (`.v`, `.bench`, `.scal`/`.txt`); `convert` round-trips a file
//! between formats (input format sniffed from extension/content); `info`
//! prints size and structure counters; `run` compiles the design and sweeps
//! an alternating-pair fault campaign, printing the coverage summary.
//! Exit codes: `0` clean, `1` usage or I/O error, `2` campaign rejection
//! (sequential or too-wide circuit).

use scal_engine::EvalMode;
use scal_netlist::synth::{self, SynthKind};
use scal_netlist::{Circuit, NetlistFormat};
use scal_obs::{CoverageObserver, Profiler};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         \x20 scal_run gen --kind ripple|csel|mult|chain|selfdual --gates N \
         [--seed S] --out FILE\n\
         \x20 scal_run convert IN OUT\n\
         \x20 scal_run info FILE\n\
         \x20 scal_run run FILE [--threads N] [--max-faults N] [--eval-mode full|cone]\n\
         \x20               [--word-width 0|1|4|8] [--fault-packing on|off|auto]\n\
         \x20               [--fault-collapse on|off|auto]\n\
         formats are chosen by extension (.v, .bench, .scal/.txt) and sniffed on read"
    );
    ExitCode::FAILURE
}

fn gen(args: &[String]) -> ExitCode {
    let mut kind = None;
    let mut gates = None;
    let mut seed = 42u64;
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(raw) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--kind" => match raw.parse::<SynthKind>() {
                Ok(k) => kind = Some(k),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            "--gates" => match raw.parse::<usize>() {
                Ok(n) if n > 0 => gates = Some(n),
                _ => return usage(),
            },
            "--seed" => match raw.parse() {
                Ok(s) => seed = s,
                Err(_) => return usage(),
            },
            "--out" => out = Some(raw.clone()),
            _ => return usage(),
        }
    }
    let (Some(kind), Some(gates), Some(out)) = (kind, gates, out) else {
        return usage();
    };
    let circuit = synth::generate(kind, gates, seed);
    match circuit.write_path(&out) {
        Ok(()) => {
            eprintln!(
                "wrote {} ({} nodes, {} gates) to {out}",
                kind.name(),
                circuit.len(),
                circuit.cost().gates
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn convert(args: &[String]) -> ExitCode {
    let [input, output] = args else {
        return usage();
    };
    let circuit = match Circuit::read_path(input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match circuit.write_path(output) {
        Ok(()) => {
            eprintln!("converted {input} -> {output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn info(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let circuit = match Circuit::read_path(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cost = circuit.cost();
    let format = std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .and_then(NetlistFormat::from_extension)
        .map_or("sniffed", NetlistFormat::name);
    println!(
        "{path}: format {format}, {} nodes, {} inputs, {} gates, {} gate inputs, \
         {} flip-flops, {} outputs, {}",
        circuit.len(),
        circuit.inputs().len(),
        cost.gates,
        cost.gate_inputs,
        cost.flip_flops,
        circuit.outputs().len(),
        if circuit.is_sequential() {
            "sequential"
        } else {
            "combinational"
        }
    );
    ExitCode::SUCCESS
}

fn run(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut threads = 0usize;
    let mut max_faults = None;
    let mut eval_mode = EvalMode::default();
    let mut word_width = 0usize;
    // `None` leaves the engine's Auto heuristics (and the
    // SCAL_FAULT_COLLAPSE environment override) in charge.
    let mut fault_packing: Option<bool> = None;
    let mut fault_collapse: Option<bool> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(raw) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--threads" => match raw.parse() {
                Ok(n) => threads = n,
                Err(_) => return usage(),
            },
            "--max-faults" => match raw.parse::<usize>() {
                Ok(n) if n > 0 => max_faults = Some(n),
                _ => return usage(),
            },
            "--eval-mode" => match raw.parse() {
                Ok(m) => eval_mode = m,
                Err(_) => return usage(),
            },
            "--word-width" => match raw.parse::<usize>() {
                Ok(w) if w == 0 || scal_engine::WORD_WIDTHS.contains(&w) => word_width = w,
                _ => return usage(),
            },
            "--fault-packing" => match raw.as_str() {
                "on" => fault_packing = Some(true),
                "off" => fault_packing = Some(false),
                "auto" => fault_packing = None,
                _ => return usage(),
            },
            "--fault-collapse" => match raw.as_str() {
                "on" => fault_collapse = Some(true),
                "off" => fault_collapse = Some(false),
                "auto" => fault_collapse = None,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let circuit = match Circuit::read_path(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut faults = scal_faults::enumerate_faults(&circuit);
    let total_sites = faults.len();
    if let Some(n) = max_faults {
        faults.truncate(n);
    }
    let swept = faults.len();
    let cov = CoverageObserver::new();
    let prof = Profiler::new();
    let mut campaign = scal_faults::Campaign::new(&circuit)
        .faults(faults)
        .threads(threads)
        .eval_mode(eval_mode)
        .word_width(word_width)
        .observer(&prof)
        .coverage(&cov);
    if let Some(pack) = fault_packing {
        campaign = campaign.fault_packing(pack);
    }
    if let Some(collapse) = fault_collapse {
        campaign = campaign.fault_collapse(collapse);
    }
    let report = match campaign.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign rejected: {e}");
            return ExitCode::from(2);
        }
    };
    let map = cov.latest().expect("coverage map");
    let profile = prof.latest().expect("profile");
    let collapse = match profile.collapse_ratio() {
        Some(r) => format!(
            ", collapse {r:.2}x ({} reps)",
            profile.collapse_representatives
        ),
        None => String::new(),
    };
    println!(
        "{path}: {swept}/{total_sites} faults swept, {} detected ({:.1}% of swept), \
         {} pairs, compile {:.1} ms, eval {:.1} ms{collapse}",
        map.detected_count(),
        100.0 * map.coverage_fraction(),
        profile.pairs,
        profile.phase_micros("compile").unwrap_or(0) as f64 / 1e3,
        profile.eval_micros().unwrap_or(0) as f64 / 1e3,
    );
    let _ = report;
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match command.as_str() {
        "gen" => gen(rest),
        "convert" => convert(rest),
        "info" => info(rest),
        "run" => run(rest),
        _ => usage(),
    }
}
