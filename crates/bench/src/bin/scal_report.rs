//! BENCH snapshot / regression reporter.
//!
//! ```text
//! cargo run -p scal-bench --bin scal_report                      # write BENCH_<date>.json
//! cargo run -p scal-bench --bin scal_report -- --out bench.json
//! cargo run -p scal-bench --bin scal_report -- --baseline BENCH_baseline.json
//! cargo run -p scal-bench --bin scal_report -- --baseline b.json --max-perf-drop 35
//! ```
//!
//! Runs the standard campaign suite (see `scal_bench::report::run_suite`),
//! writes the machine-readable snapshot, and — when `--baseline FILE` is
//! given — diffs against it. Exit codes: `0` clean, `1` usage or I/O error,
//! `2` coverage regression (blocking), `3` throughput regression beyond the
//! threshold (warning-grade; default 20%).

use scal_bench::report::{compare, run_large_suite, run_suite, Snapshot, DEFAULT_MAX_PERF_DROP};
use scal_engine::EvalMode;
use scal_seq::SeqBackend;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: scal_report [--out FILE] [--baseline FILE] [--max-perf-drop PCT] \
         [--threads N] [--eval-mode full|cone] [--seq-backend packed|scalar|graph] \
         [--word-width 0|1|4|8] [--fault-collapse on|off|auto] [--suite standard|large] \
         [--large-gates N] [--quiet]"
    );
    eprintln!("  --out FILE           snapshot path (default BENCH_<date>.json)");
    eprintln!("  --baseline FILE      committed snapshot to diff against");
    eprintln!("  --max-perf-drop PCT  tolerated throughput drop, percent (default 20)");
    eprintln!("  --threads N          engine worker threads (default 0 = auto)");
    eprintln!("  --eval-mode MODE     engine faulty-sweep strategy (default cone)");
    eprintln!("  --seq-backend NAME   sequential-campaign backend (default packed)");
    eprintln!(
        "  --word-width W       evaluation word width in 64-bit sub-words (default 0 = auto)"
    );
    eprintln!(
        "  --fault-collapse X   compile-time fault collapsing across the suite (default auto = on)"
    );
    eprintln!("  --suite NAME         standard paper suite or synthetic large tier");
    eprintln!("  --large-gates N      target gate count of large-suite designs (default 100000)");
    eprintln!("  --quiet              suppress the human-readable summary");
}

struct Options {
    out: Option<String>,
    baseline: Option<String>,
    max_perf_drop: f64,
    threads: usize,
    eval_mode: EvalMode,
    seq_backend: SeqBackend,
    word_width: usize,
    large: bool,
    large_gates: usize,
    quiet: bool,
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        out: None,
        baseline: None,
        max_perf_drop: DEFAULT_MAX_PERF_DROP,
        threads: 0,
        eval_mode: EvalMode::default(),
        seq_backend: SeqBackend::default(),
        word_width: 0,
        large: false,
        large_gates: 100_000,
        quiet: false,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs an argument"));
        match arg.as_str() {
            "--out" => opts.out = Some(value("--out")?),
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--max-perf-drop" => {
                let raw = value("--max-perf-drop")?;
                let pct: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad --max-perf-drop value {raw:?}"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("--max-perf-drop {pct} outside 0..=100"));
                }
                opts.max_perf_drop = pct / 100.0;
            }
            "--threads" => {
                let raw = value("--threads")?;
                opts.threads = raw
                    .parse()
                    .map_err(|_| format!("bad --threads value {raw:?}"))?;
            }
            "--eval-mode" => {
                let raw = value("--eval-mode")?;
                opts.eval_mode = raw
                    .parse()
                    .map_err(|_| format!("bad --eval-mode value {raw:?} (want full|cone)"))?;
            }
            "--seq-backend" => {
                let raw = value("--seq-backend")?;
                opts.seq_backend = raw.parse().map_err(|_| {
                    format!("bad --seq-backend value {raw:?} (want packed|scalar|graph)")
                })?;
            }
            "--word-width" => {
                let raw = value("--word-width")?;
                opts.word_width = raw
                    .parse()
                    .ok()
                    .filter(|&w| w == 0 || scal_engine::WORD_WIDTHS.contains(&w))
                    .ok_or(format!(
                        "bad --word-width value {raw:?} (want 0, 1, 4 or 8)"
                    ))?;
            }
            "--fault-collapse" => {
                // Routed through the engine's environment override so every
                // suite campaign (pair, sequential, large tier) honors it
                // without a per-builder knob.
                let raw = value("--fault-collapse")?;
                match raw.as_str() {
                    "on" | "off" => std::env::set_var(scal_engine::SCAL_FAULT_COLLAPSE_ENV, &raw),
                    "auto" => std::env::remove_var(scal_engine::SCAL_FAULT_COLLAPSE_ENV),
                    _ => {
                        return Err(format!(
                            "bad --fault-collapse value {raw:?} (want on|off|auto)"
                        ))
                    }
                }
            }
            "--suite" => {
                let raw = value("--suite")?;
                opts.large = match raw.as_str() {
                    "standard" => false,
                    "large" => true,
                    _ => return Err(format!("bad --suite value {raw:?} (want standard|large)")),
                };
            }
            "--large-gates" => {
                let raw = value("--large-gates")?;
                opts.large_gates = raw
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or(format!("bad --large-gates value {raw:?}"))?;
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn report(opts: &Options) -> Result<ExitCode, String> {
    let snap: Snapshot = if opts.large {
        run_large_suite(
            opts.threads,
            opts.eval_mode,
            opts.large_gates,
            opts.word_width,
        )
    } else {
        run_suite(
            opts.threads,
            opts.eval_mode,
            opts.seq_backend,
            opts.word_width,
        )
    };
    if !opts.quiet {
        print!("{}", snap.render());
    }
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", snap.date));
    std::fs::write(&out, snap.to_json() + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("snapshot written to {out}");

    let Some(baseline_path) = &opts.baseline else {
        return Ok(ExitCode::SUCCESS);
    };
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = scal_obs::json::parse(&text)
        .map_err(|e| format!("baseline {baseline_path} is not valid JSON: {e}"))?;
    let regressions = compare(&snap, &baseline, opts.max_perf_drop);
    if regressions.is_empty() {
        eprintln!("no regressions against {baseline_path}");
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        eprintln!(
            "{}: {}: {}",
            if r.coverage {
                "COVERAGE REGRESSION"
            } else {
                "perf regression"
            },
            r.circuit,
            r.detail
        );
    }
    if regressions.iter().any(|r| r.coverage) {
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::from(3))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match report(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
