//! Chapter 6 experiments: minority modules.

use scal_faults::Campaign;
use scal_minority::{convert_to_alternating, fig6_2_example};
use scal_netlist::{Circuit, GateKind};
use std::fmt::Write;

/// Fig. 6.1 — minority-module primitives: the truth table, majority from
/// two minority modules, NAND from one module (completeness, Theorem 6.1).
#[must_use]
pub fn fig6_1(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 6.1: minority module primitives ==");
    let _ = writeln!(s, "3-input minority truth table (x1 x2 x3 -> m):");
    for m in 0..8u32 {
        let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
        let _ = writeln!(
            s,
            "  {} {} {} -> {}",
            u8::from(bits[0]),
            u8::from(bits[1]),
            u8::from(bits[2]),
            u8::from(GateKind::Minority.eval(&bits))
        );
    }
    // Completeness: NAND2 and NOT from single modules.
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let nand = scal_minority::nand2_from_minority(&mut c, a, b);
    let inv = scal_minority::not_from_minority(&mut c, a);
    let maj = scal_minority::majority_from_minority(&mut c, &[a, b, a]);
    c.mark_output("nand", nand);
    c.mark_output("not", inv);
    c.mark_output("maj", maj);
    let ok = (0..4u32).all(|m| {
        let av = m & 1 == 1;
        let bv = m & 2 != 0;
        let out = c.eval(&[av, bv]);
        out[0] != (av && bv) && out[1] != av && out[2] == av
    });
    let _ = writeln!(
        s,
        "NAND = m3(a,b,0), NOT = m3(a,0,1), MAJ = m3(m3(X),m3(X),m3(X)): all verified: {ok}"
    );
    let _ = writeln!(
        s,
        "=> the minority module is a complete gate set (Theorem 6.1)"
    );
    s
}

/// Fig. 6.2 + Theorems 6.2/6.3 — NAND/NOR-to-minority conversion: the cost
/// triangle (NAND net / direct conversion / minimal realization) and the
/// self-checking property of converted networks.
#[must_use]
pub fn fig6_2(ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 6.2 / Thms 6.2-6.3: NAND->minority conversion ==");
    let fig = fig6_2_example();
    let rows = [
        (
            "Fig 6.2a NAND realization",
            fig.nand_net.cost().gates,
            fig.nand_net.cost().gate_inputs,
            "4 gates, 9 inputs",
        ),
        (
            "Fig 6.2b direct conversion",
            fig.direct.cost().threshold_modules,
            fig.direct.cost().gate_inputs,
            "4 modules, 14 inputs",
        ),
        (
            "Fig 6.2c minimal realization",
            fig.minimal.cost().threshold_modules,
            fig.minimal.cost().gate_inputs,
            "1 module, 3 inputs",
        ),
    ];
    let _ = writeln!(
        s,
        "{:<30} {:>6} {:>7}   paper",
        "realization", "units", "inputs"
    );
    for (name, units, inputs, paper) in rows {
        let _ = writeln!(s, "{name:<30} {units:>6} {inputs:>7}   {paper}");
    }

    // Theorem validation across arities on a NAND chain and a NOR net.
    let mut nand_chain = Circuit::new();
    let a = nand_chain.input("a");
    let b = nand_chain.input("b");
    let d = nand_chain.input("d");
    let g1 = nand_chain.nand(&[a, b]);
    let g2 = nand_chain.nand(&[g1, d]);
    let g3 = nand_chain.nand(&[g1, g2, a]);
    nand_chain.mark_output("f", g3);
    let alt = convert_to_alternating(&nand_chain).expect("NAND network converts");
    let results = Campaign::new(&alt)
        // Pin the pattern-major path: the tracer narrates per-fault cone
        // stats, which auto fault-packing would fold into lane batches.
        .fault_packing(false)
        .eval_mode(ctx.eval_mode())
        .observer(ctx)
        .run()
        .expect("alternating realization")
        .results;
    let secure = results
        .iter()
        .all(scal_faults::CampaignResult::fault_secure);
    let tested = results.iter().all(scal_faults::CampaignResult::tested);
    let _ = writeln!(
        s,
        "\nconverted NAND chain: {} minority modules; all outputs self-dual: {}; exhaustive campaign: fault-secure {}, all faults tested {}",
        alt.cost().threshold_modules,
        alt.output_tts().iter().all(scal_logic::Tt::is_self_dual),
        secure,
        tested
    );
    let _ = writeln!(
        s,
        "each N-input NAND costs one m(2N-1) with K = N-1 period-clock pads (Theorem 6.2); NOR pads with the complemented clock (Theorem 6.3)"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig6_1_verifies_primitives() {
        assert!(super::fig6_1(&crate::ExperimentCtx::default()).contains("all verified: true"));
    }

    #[test]
    fn fig6_2_matches_paper_costs() {
        let r = super::fig6_2(&crate::ExperimentCtx::default());
        assert!(r.contains("4 modules, 14 inputs"));
        assert!(r.contains("fault-secure true"));
    }
}
