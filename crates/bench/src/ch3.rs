//! Chapter 3 experiments: test derivation (Fig. 3.1), the multi-output
//! example (Figs. 3.4/3.5), its fault table (Fig. 3.6), and the fix
//! (Fig. 3.7).

use scal_analysis::{analyze, derive_tests};
use scal_core::paper::{self, vector_string};
use scal_faults::{classify_pair, response_pair, PairOutcome};
use scal_netlist::{Circuit, Site};
use std::fmt::Write;

/// Fig. 3.1 / §3.2 — Theorem 3.2 test derivation: prints the K-map-style
/// sets `G`, `F(X,G(X))`, `F(X,0)`, `A`, `B`, `E` and the derived stuck-at-0
/// tests, matching the paper's {1011, 0110, 0100, 1001} with pairs
/// (1011,0100) and (0110,1001).
#[must_use]
pub fn fig3_1(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 3.1 / Thm 3.2: stuck-at test derivation ==");
    let (c, g) = paper::fig3_1_example();
    let tts = scal_analysis::all_node_tts(&c);
    let funcs = scal_analysis::line_functions(&c, &tts, g);
    let fmt_set = |t: &scal_logic::Tt| -> String {
        let v: Vec<String> = t.minterms().map(|m| vector_string(m, 4)).collect();
        if v.is_empty() {
            "{}".to_owned()
        } else {
            format!("{{{}}}", v.join(", "))
        }
    };
    let a = &funcs.stuck0[0] ^ &funcs.normal[0];
    let b = a.flip_inputs();
    let e = &a & &b;
    let _ = writeln!(s, "G(X)        = {}", fmt_set(&funcs.g));
    let _ = writeln!(s, "F(X,G(X))   = {}", fmt_set(&funcs.normal[0]));
    let _ = writeln!(s, "F(X,0)      = {}", fmt_set(&funcs.stuck0[0]));
    let _ = writeln!(s, "A = F(X,0) xor F(X,G) = {}", fmt_set(&a));
    let _ = writeln!(s, "B = A(Xbar)           = {}", fmt_set(&b));
    let _ = writeln!(
        s,
        "E = A & B             = {}  (E = 0: testable)",
        fmt_set(&e)
    );
    let (t0, t1) = derive_tests(&c, g, 0);
    let tests: Vec<String> = t0.tests.iter().map(|&m| vector_string(m, 4)).collect();
    let pairs: Vec<String> = t0
        .pairs
        .iter()
        .map(|&(x, y)| format!("({}, {})", vector_string(x, 4), vector_string(y, 4)))
        .collect();
    let _ = writeln!(
        s,
        "s-a-0 tests: {}   [paper: 1011, 0110, 0100, 1001]",
        tests.join(", ")
    );
    let _ = writeln!(
        s,
        "test pairs : {}   [paper: (1011,0100), (0110,1001)]",
        pairs.join(", ")
    );
    let _ = writeln!(s, "s-a-1 testable (F = 0): {}", t1.e_zero);
    s
}

fn condition_table(c: &Circuit, labels: &[(Site, &str)]) -> String {
    let mut s = String::new();
    let report = analyze(c).expect("analyzable");
    let _ = writeln!(
        s,
        "{:<42} {:>8} {:>8} {:>8}  {:<10} verdict",
        "line", "F1", "F2", "F3", "Cor.3.2"
    );
    for line in &report.lines {
        let label = labels
            .iter()
            .find(|(site, _)| *site == line.site)
            .map(|(_, l)| (*l).to_owned())
            .unwrap_or_else(|| line.site.to_string());
        let mut cells = vec!["-".to_owned(); 3];
        for oc in &line.outputs {
            cells[oc.output] = oc.witness().to_string();
        }
        let multi = if line.needs_multi_output {
            if line.multi_output_ok {
                "rescued"
            } else {
                "VIOLATES"
            }
        } else {
            ""
        };
        let verdict = if line.self_checking() { "ok" } else { "NOT SC" };
        // Print only interesting lines (labelled, or failing) to match the
        // paper's narrative; inputs and trivially-certified lines summarize.
        let interesting = labels.iter().any(|(site, _)| *site == line.site)
            || !line.self_checking()
            || line.needs_multi_output;
        if interesting {
            let _ = writeln!(
                s,
                "{label:<42} {:>8} {:>8} {:>8}  {multi:<10} {verdict}",
                cells[0], cells[1], cells[2]
            );
        }
    }
    let _ = writeln!(
        s,
        "network self-checking: {}   offending lines: {}",
        report.self_checking,
        report.offending.len()
    );
    s
}

/// Figs. 3.4/3.5 — the reconstructed multi-output example: per-line
/// Algorithm 3.1 conditions (witness letter = first passing condition),
/// Corollary 3.2 rescues, and the self-checking verdict.
#[must_use]
pub fn fig3_4(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Figs 3.4/3.5: multi-output example (reconstruction) =="
    );
    let fig = paper::fig3_4();
    let _ = writeln!(
        s,
        "functions: F1 = MAJ(a',b,c), F2 = a^b^c, F3 = MAJ(a,b,c); sharing: line 9 (F2/F3), line 19 (F1/F3)"
    );
    s.push_str(&condition_table(&fig.circuit, &fig.labels));
    let _ = writeln!(
        s,
        "paper's result: line 9 rescued by the multiple-output condition; line 20 defeats self-checking"
    );
    s
}

/// Fig. 3.6 — the fault-simulation table: per labelled line and stuck
/// value, the output pair for each alternating input pair, annotated `X`
/// (non-alternating, detected) or `*` (incorrect alternating, undetected).
#[must_use]
pub fn fig3_6(ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 3.6: fault table of the example network ==");
    let fig = paper::fig3_4();
    let c = &fig.circuit;
    // Paper's pair order: first-period inputs ABC = 000, 001, 010, 011.
    let pair_minterms = [0b000u32, 0b100, 0b010, 0b110]; // a=bit0,b=bit1,c=bit2
    let header = ["(000,111)", "(001,110)", "(010,101)", "(011,100)"];
    let _ = writeln!(
        s,
        "{:<10} {:<6} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "line", "stuck", "output", header[0], header[1], header[2], header[3]
    );

    let normals: Vec<(Vec<bool>, Vec<bool>)> = pair_minterms
        .iter()
        .map(|&m| response_pair(c, &[], &scal_core::drive::minterm_to_inputs(m, 3)))
        .collect();
    // Normal rows.
    for (k, name) in ["F1", "F2", "F3"].iter().enumerate() {
        let mut row = format!("{:<10} {:<6} {:<6}", "-", "normal", name);
        for n in &normals {
            let _ = write!(
                row,
                " {:>10}",
                format!("{},{}", u8::from(n.0[k]), u8::from(n.1[k]))
            );
        }
        let _ = writeln!(s, "{row}");
    }
    // Faulty rows for the labelled lines.
    for &(site, label) in &fig.labels {
        let short = label.split_whitespace().next().unwrap_or("?");
        for stuck in [false, true] {
            let ov = [scal_netlist::Override { site, value: stuck }];
            for (k, name) in ["F1", "F2", "F3"].iter().enumerate() {
                let mut row = format!(
                    "{:<10} {:<6} {:<6}",
                    short,
                    if stuck { "s/1" } else { "s/0" },
                    name
                );
                let mut any_mark = false;
                for (pi, &m) in pair_minterms.iter().enumerate() {
                    let f = response_pair(c, &ov, &scal_core::drive::minterm_to_inputs(m, 3));
                    let (outcomes, _) = classify_pair(&normals[pi], &f);
                    let mark = match outcomes[k] {
                        PairOutcome::Correct => "",
                        PairOutcome::NonAlternating => "X",
                        PairOutcome::WrongAlternating => "*",
                    };
                    if !mark.is_empty() {
                        any_mark = true;
                    }
                    let cell = format!("{},{}{}", u8::from(f.0[k]), u8::from(f.1[k]), mark);
                    let _ = write!(row, " {:>10}", cell);
                }
                if any_mark {
                    let _ = writeln!(s, "{row}");
                }
            }
        }
    }
    let _ = writeln!(s, "X = non-alternating pair (detected); * = incorrect alternating pair (undetected on that output)");
    // Cross-check with the compiled engine: sweep *every* collapsed fault
    // (not just the labelled lines) through the unified Campaign builder,
    // forwarding the observability context.
    let campaign = scal_faults::Campaign::new(c)
        // Pin the pattern-major path: the tracer narrates per-fault cone
        // stats, which auto fault-packing would fold into lane batches.
        .fault_packing(false)
        .eval_mode(ctx.eval_mode())
        .observer(ctx)
        .run()
        .expect("fig 3.4 network is alternating");
    let violating = campaign
        .results
        .iter()
        .filter(|r| !r.fault_secure())
        .count();
    let _ = writeln!(
        s,
        "engine cross-check over all {} collapsed faults: {} fault-secure violations ({} pairs swept)",
        campaign.results.len(),
        violating,
        campaign.stats.pairs_evaluated
    );
    s
}

/// Fig. 3.7 — the fanout-splitting fix: Algorithm 3.1 passes every line and
/// the exhaustive campaign confirms full self-checking.
#[must_use]
pub fn fig3_7(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig 3.7: fixed network ==");
    let fixed = paper::fig3_7();
    s.push_str(&condition_table(&fixed.circuit, &fixed.labels));
    let v = scal_core::verify(&fixed.circuit).expect("verifies");
    let _ = writeln!(
        s,
        "exhaustive campaign: {} faults, fault-secure: {}, self-testing: {}",
        v.fault_count, v.fault_secure, v.self_testing
    );
    let before = paper::fig3_4().circuit.cost();
    let after = fixed.circuit.cost();
    let _ = writeln!(
        s,
        "cost of the fix: {} -> {} gates (+{})",
        before.gates,
        after.gates,
        after.gates - before.gates
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_1_reproduces_paper_tests() {
        let r = super::fig3_1(&crate::ExperimentCtx::default());
        for t in ["1011", "0110", "0100", "1001"] {
            assert!(r.contains(t), "missing test {t} in:\n{r}");
        }
    }

    #[test]
    fn fig3_4_flags_line_20() {
        let r = super::fig3_4(&crate::ExperimentCtx::default());
        assert!(r.contains("network self-checking: false"));
        assert!(r.contains("VIOLATES"));
        assert!(r.contains("rescued"));
    }

    #[test]
    fn fig3_6_has_both_annotations() {
        let r = super::fig3_6(&crate::ExperimentCtx::default());
        assert!(r.contains('*'), "needs an incorrect-alternating cell");
        assert!(r.contains('X'), "needs a detected cell");
    }

    #[test]
    fn fig3_7_is_clean() {
        let r = super::fig3_7(&crate::ExperimentCtx::default());
        assert!(r.contains("network self-checking: true"));
        assert!(r.contains("fault-secure: true"));
    }
}
