//! BENCH snapshot and regression reporting — the `scal_report` binary's
//! engine.
//!
//! [`run_suite`] executes the standard campaign suite (the Fig. 3.4 and
//! Fig. 3.7 networks, the 8-bit ripple adder in fault-dropping mode, the
//! Chapter-4 sequential designs, and the Chapter-7 CPU adder) with a
//! [`CoverageObserver`] and a [`Profiler`] attached, and folds the results
//! into a [`Snapshot`]: per-circuit coverage fraction, undetected fault
//! sites, per-phase timings and pair throughput, stamped with the date and
//! git revision. [`Snapshot::to_json`] writes the machine-readable
//! `BENCH_<date>.json` form; [`compare`] diffs a snapshot against a
//! committed baseline and reports coverage and throughput regressions.
//!
//! Everything here is dependency-free: JSON comes from `scal_obs::json`,
//! the date from epoch civil-calendar arithmetic, the revision from a
//! best-effort `git rev-parse`.

use scal_core::paper;
use scal_engine::{
    detected_cpu_features, resolve_word_width, resolved_threads, CompiledCircuit, EvalMode,
};
use scal_netlist::synth::{self, SynthKind};
use scal_obs::json::{escape, JsonObject, JsonValue};
use scal_obs::{CoverageMap, CoverageObserver, Profile, Profiler};
use scal_seq::kohavi::kohavi_0101;
use scal_seq::{code_conversion_machine, dual_ff_machine, SeqBackend};
use scal_system::campaign::{Campaign as CpuCampaign, CpuUnit};
use std::fmt::Write as _;

/// Throughput drop (fraction of the baseline rate) tolerated before a run
/// counts as a performance regression.
pub const DEFAULT_MAX_PERF_DROP: f64 = 0.20;

/// Accumulated evaluation time per suite entry before its throughput is
/// trusted: the suite circuits are small (microsecond sweeps), so each
/// campaign repeats until this much eval time is banked and the best rate
/// is kept.
const MIN_EVAL_MICROS: u64 = 100_000;

/// Repetition cap per suite entry (guards against a zero-time eval loop).
const MAX_REPS: usize = 500;

/// Bytes per mebibyte, for the render's compile-memory lines.
const MIB: f64 = 1024.0 * 1024.0;

/// Repeats `run` until [`MIN_EVAL_MICROS`] of eval time accumulates on
/// `prof`'s latest profiles, returning the aggregate pairs-per-second over
/// every rep. Aggregating (rather than taking one rep) averages away the
/// microsecond timer quantization the small suite circuits suffer.
fn aggregate_rate(prof: &Profiler, mut run: impl FnMut()) -> Option<f64> {
    let mut pairs = 0u64;
    let mut eval = 0u64;
    for _ in 0..MAX_REPS {
        run();
        let p = prof.latest().expect("profile after rep");
        pairs += p.pairs;
        eval += p.eval_micros().unwrap_or(p.micros);
        if eval >= MIN_EVAL_MICROS {
            break;
        }
    }
    (eval > 0 && pairs > 0).then(|| pairs as f64 * 1e6 / eval as f64)
}

/// One suite circuit's results inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct CircuitBench {
    /// Suite entry name (`"fig3_4"`, `"adder8_drop"`, …).
    pub name: String,
    /// Suite tier the row belongs to (`"standard"` or `"large"`).
    pub suite: String,
    /// Campaign flavour that produced it (`"pair"`, `"seq"`, `"cpu_adder"`,
    /// or `"compile"` for compile-only scaling rows).
    pub campaign: String,
    /// Faults simulated.
    pub faults: usize,
    /// Faults with at least one detection.
    pub detected: usize,
    /// Detected fraction (1.0 when `faults == 0`).
    pub coverage: f64,
    /// Labels of the undetected fault sites, in fault order.
    pub undetected: Vec<String>,
    /// Alternating pairs (or driven words / CPU periods-in-pairs) evaluated.
    pub pairs: u64,
    /// Pair throughput over the evaluation phase alone, when measurable.
    pub pairs_per_sec: Option<f64>,
    /// Per-phase wall times in microseconds, in emission order.
    pub phases: Vec<(String, u64)>,
    /// Compile-phase wall time in microseconds, when the campaign compiled
    /// through the engine.
    pub compile_micros: Option<u64>,
    /// Peak resident bytes of the compiled schedule (the engine's
    /// `compile_mem` span), when available.
    pub compile_bytes: Option<u64>,
    /// Evaluation word width in 64-bit sub-words, from the campaign's
    /// `lane_geometry` event (`0` when the campaign emitted none).
    pub word_width: u64,
    /// Distinct faults packed into the bit lanes of one evaluation word.
    pub fault_lanes: u64,
    /// Alternating pairs evaluated per wide sweep.
    pub pattern_lanes: u64,
    /// Lane-packing flavour (`"pattern"`, `"fault"`, `"seq"`, `"scalar"`,
    /// or empty).
    pub packing: String,
    /// Original faults handed to the compile-time fault-collapsing pass
    /// (0 when collapsing was off or the campaign has no collapse pass).
    pub collapse_faults: u64,
    /// Equivalence-class representatives the campaign actually simulated.
    pub collapse_representatives: u64,
    /// `collapse_faults / collapse_representatives`, when collapsing ran.
    pub collapse_ratio: Option<f64>,
}

impl CircuitBench {
    fn from_parts(name: &str, map: &CoverageMap, profile: &Profile, rate: Option<f64>) -> Self {
        CircuitBench {
            name: name.to_string(),
            suite: "standard".to_string(),
            campaign: map.campaign.clone(),
            faults: map.records.len(),
            detected: map.detected_count(),
            coverage: map.coverage_fraction(),
            undetected: map
                .undetected()
                .map(|r| {
                    if r.label.is_empty() {
                        format!("fault #{}", r.fault)
                    } else {
                        r.label.clone()
                    }
                })
                .collect(),
            pairs: profile.pairs,
            pairs_per_sec: rate.or_else(|| profile.pairs_per_sec()),
            phases: profile
                .phases
                .iter()
                .map(|p| (p.name.clone(), p.micros))
                .collect(),
            compile_micros: profile.phase_micros("compile"),
            compile_bytes: profile
                .spans
                .iter()
                .find(|s| s.name == "compile_mem")
                .map(|s| s.items),
            word_width: profile.word_width,
            fault_lanes: profile.fault_lanes,
            pattern_lanes: profile.pattern_lanes,
            packing: profile.packing.clone(),
            collapse_faults: profile.collapse_faults,
            collapse_representatives: profile.collapse_representatives,
            collapse_ratio: profile.collapse_ratio(),
        }
    }
}

/// Full-vs-cone throughput measurement on the adder8 full-fault campaign —
/// the headline number of the cone-restricted evaluation path.
#[derive(Debug, Clone)]
pub struct ConeSpeedup {
    /// Eval-phase pair throughput in [`EvalMode::Full`].
    pub full_pairs_per_sec: f64,
    /// Eval-phase pair throughput in [`EvalMode::Cone`].
    pub cone_pairs_per_sec: f64,
    /// `cone_pairs_per_sec / full_pairs_per_sec`.
    pub speedup: f64,
    /// Fraction of full-schedule op evaluations the cone path skipped —
    /// the profiler's attribution of where the speedup comes from.
    pub ops_skipped_fraction: f64,
}

/// Serve-path latency quantiles measured over an in-process campaign
/// service: a throwaway server on a loopback port runs a burst of demo
/// pair jobs and the scheduler's own telemetry histograms are read back
/// directly (no scrape). All values in microseconds.
#[derive(Debug, Clone)]
pub struct ServeLatency {
    /// Jobs in the burst.
    pub jobs: u64,
    /// Request-line read → `accepted` frame sent, p50.
    pub submit_accept_p50: u64,
    /// Request-line read → `accepted` frame sent, p99.
    pub submit_accept_p99: u64,
    /// Accepted → execution start, p50.
    pub queue_wait_p50: u64,
    /// Accepted → execution start, p99.
    pub queue_wait_p99: u64,
    /// Campaign wall time, p50.
    pub run_p50: u64,
    /// Campaign wall time, p99.
    pub run_p99: u64,
}

/// Scalar-vs-packed throughput measurement on the kohavi_codeconv
/// sequential campaign — the headline number of the fault-per-lane backend.
#[derive(Debug, Clone)]
pub struct SeqSpeedup {
    /// Eval-phase pair throughput on [`SeqBackend::Scalar`].
    pub scalar_pairs_per_sec: f64,
    /// Eval-phase pair throughput on [`SeqBackend::Packed`].
    pub packed_pairs_per_sec: f64,
    /// `packed_pairs_per_sec / scalar_pairs_per_sec`.
    pub speedup: f64,
}

/// A full BENCH snapshot: the suite results plus provenance.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// UTC date (`YYYY-MM-DD`) the suite ran.
    pub date: String,
    /// Short git revision, or `"unknown"` outside a repository.
    pub git_rev: String,
    /// Resolved engine worker-thread count the suite ran with (an `auto`
    /// request is resolved to the machine's parallelism before recording,
    /// so snapshots stay comparable across machines).
    pub threads: usize,
    /// Faulty-sweep evaluation strategy the engine entries ran with.
    pub eval_mode: String,
    /// Backend the sequential entries ran on (`"packed"`, `"scalar"`,
    /// `"graph"`).
    pub seq_backend: String,
    /// Resolved evaluation word width in 64-bit sub-words (a `0` request is
    /// resolved through `SCAL_WORD_WIDTH` and CPU-feature detection before
    /// recording, so snapshots document what actually ran).
    pub word_width: usize,
    /// Wide-word CPU features detected on the suite machine (`"avx2"`,
    /// `"avx512f"`); empty on other architectures.
    pub cpu_features: Vec<String>,
    /// Suite tier the snapshot ran (`"standard"` or `"large"`).
    pub suite: String,
    /// Per-circuit results, in suite order.
    pub circuits: Vec<CircuitBench>,
    /// Measured full-vs-cone throughput on the adder8 full-fault campaign.
    pub adder8_speedup: Option<ConeSpeedup>,
    /// Measured scalar-vs-packed throughput on the kohavi_codeconv
    /// sequential campaign.
    pub seq_speedup: Option<SeqSpeedup>,
    /// Serve-path latency quantiles from an in-process service burst.
    pub serve_latency: Option<ServeLatency>,
}

impl Snapshot {
    /// Serializes the snapshot as one JSON object (the `BENCH_<date>.json`
    /// schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("schema", "scal-bench-snapshot-v1");
        o.str("date", &self.date);
        o.str("git_rev", &self.git_rev);
        o.num("threads", self.threads as u64);
        o.str("eval_mode", &self.eval_mode);
        o.str("seq_backend", &self.seq_backend);
        o.num("word_width", self.word_width as u64);
        let features: Vec<String> = self
            .cpu_features
            .iter()
            .map(|f| format!("\"{}\"", escape(f)))
            .collect();
        o.raw("cpu_features", &format!("[{}]", features.join(",")));
        o.str("suite", &self.suite);
        let mut circuits = String::from("[");
        for (i, c) in self.circuits.iter().enumerate() {
            if i > 0 {
                circuits.push(',');
            }
            let mut co = JsonObject::new();
            co.str("name", &c.name);
            co.str("suite", &c.suite);
            co.str("campaign", &c.campaign);
            co.num("faults", c.faults as u64);
            co.num("detected", c.detected as u64);
            co.float("coverage", c.coverage);
            let undetected: Vec<String> = c
                .undetected
                .iter()
                .map(|l| format!("\"{}\"", escape(l)))
                .collect();
            co.raw("undetected", &format!("[{}]", undetected.join(",")));
            co.num("pairs", c.pairs);
            if let Some(r) = c.pairs_per_sec {
                co.float("pairs_per_sec", r);
            }
            if let Some(us) = c.compile_micros {
                co.num("compile_micros", us);
            }
            if let Some(bytes) = c.compile_bytes {
                co.num("compile_bytes", bytes);
            }
            if c.word_width > 0 {
                co.num("word_width", c.word_width);
                co.num("fault_lanes", c.fault_lanes);
                co.num("pattern_lanes", c.pattern_lanes);
                co.str("packing", &c.packing);
            }
            if let Some(r) = c.collapse_ratio {
                co.num("collapse_faults", c.collapse_faults);
                co.num("collapse_representatives", c.collapse_representatives);
                co.float("collapse_ratio", r);
            }
            let mut po = JsonObject::new();
            for (name, micros) in &c.phases {
                po.num(name, *micros);
            }
            co.raw("phases", &po.finish());
            circuits.push_str(&co.finish());
        }
        circuits.push(']');
        o.raw("circuits", &circuits);
        if let Some(s) = &self.adder8_speedup {
            let mut so = JsonObject::new();
            so.float("full_pairs_per_sec", s.full_pairs_per_sec);
            so.float("cone_pairs_per_sec", s.cone_pairs_per_sec);
            so.float("speedup", s.speedup);
            so.float("ops_skipped_fraction", s.ops_skipped_fraction);
            o.raw("adder8_speedup", &so.finish());
        }
        if let Some(s) = &self.seq_speedup {
            let mut so = JsonObject::new();
            so.float("scalar_pairs_per_sec", s.scalar_pairs_per_sec);
            so.float("packed_pairs_per_sec", s.packed_pairs_per_sec);
            so.float("speedup", s.speedup);
            o.raw("seq_speedup", &so.finish());
        }
        if let Some(s) = &self.serve_latency {
            let mut so = JsonObject::new();
            so.num("jobs", s.jobs);
            so.num("submit_accept_p50_micros", s.submit_accept_p50);
            so.num("submit_accept_p99_micros", s.submit_accept_p99);
            so.num("queue_wait_p50_micros", s.queue_wait_p50);
            so.num("queue_wait_p99_micros", s.queue_wait_p99);
            so.num("run_p50_micros", s.run_p50);
            so.num("run_p99_micros", s.run_p99);
            o.raw("serve_latency", &so.finish());
        }
        o.finish()
    }

    /// Renders the human-readable suite summary, including the
    /// undetected-fault lists.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BENCH snapshot {} @ {} ({} suite, threads {}, {} eval, {} seq backend, \
             W={} [{}])",
            self.date,
            self.git_rev,
            self.suite,
            self.threads,
            self.eval_mode,
            self.seq_backend,
            self.word_width,
            if self.cpu_features.is_empty() {
                "no wide-word features".to_string()
            } else {
                self.cpu_features.join(",")
            }
        );
        for c in &self.circuits {
            let rate = match c.pairs_per_sec {
                Some(r) => format!("{r:.0} pairs/s"),
                None => "n/a".to_string(),
            };
            let lanes = if c.word_width > 0 {
                format!(", W={} {}", c.word_width, c.packing)
            } else {
                String::new()
            };
            let collapse = match c.collapse_ratio {
                Some(r) => format!(", collapse {r:.2}x ({} reps)", c.collapse_representatives),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:<16} [{:<10}] coverage {:>5.1}% ({}/{}), {} pairs, {rate}{lanes}{collapse}",
                c.name,
                c.campaign,
                100.0 * c.coverage,
                c.detected,
                c.faults,
                c.pairs
            );
            if let Some(us) = c.compile_micros {
                let bytes = c
                    .compile_bytes
                    .map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / MIB));
                let _ = writeln!(out, "      compile: {:.1} ms, {bytes}", us as f64 / 1e3);
            }
            for label in &c.undetected {
                let _ = writeln!(out, "      undetected: {label}");
            }
        }
        if let Some(s) = &self.adder8_speedup {
            let _ = writeln!(
                out,
                "  adder8 full-fault eval: {:.0} pairs/s full -> {:.0} pairs/s cone \
                 ({:.1}x, {:.1}% of full-schedule op evals skipped)",
                s.full_pairs_per_sec,
                s.cone_pairs_per_sec,
                s.speedup,
                100.0 * s.ops_skipped_fraction
            );
        }
        if let Some(s) = &self.seq_speedup {
            let _ = writeln!(
                out,
                "  kohavi_codeconv seq eval: {:.0} pairs/s scalar -> {:.0} pairs/s packed \
                 ({:.1}x)",
                s.scalar_pairs_per_sec, s.packed_pairs_per_sec, s.speedup
            );
        }
        if let Some(s) = &self.serve_latency {
            let _ = writeln!(
                out,
                "  serve path ({} jobs): submit->accept {}/{} µs, queue wait {}/{} µs, \
                 run {}/{} µs (p50/p99)",
                s.jobs,
                s.submit_accept_p50,
                s.submit_accept_p99,
                s.queue_wait_p50,
                s.queue_wait_p99,
                s.run_p50,
                s.run_p99
            );
        }
        out
    }
}

/// A regression [`compare`] found against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Suite circuit name.
    pub circuit: String,
    /// `true` for a coverage regression (blocking), `false` for a
    /// throughput regression (warning-grade).
    pub coverage: bool,
    /// Human-readable description.
    pub detail: String,
}

/// Measures eval-phase throughput of the adder8 full-fault campaign (no
/// dropping) in both eval modes, plus the cone run's skipped-op fraction.
fn measure_adder8_speedup(threads: usize) -> Option<ConeSpeedup> {
    let circuit = paper::ripple_adder(8);
    let mut rates = [0.0f64; 2];
    let mut skipped = 0.0f64;
    for (i, mode) in [EvalMode::Full, EvalMode::Cone].into_iter().enumerate() {
        let prof = Profiler::new();
        let rate = aggregate_rate(&prof, || {
            let _ = scal_faults::Campaign::new(&circuit)
                .threads(threads)
                .eval_mode(mode)
                .observer(&prof)
                .run()
                .expect("adder8 is engine-compatible");
        })?;
        rates[i] = rate;
        if mode == EvalMode::Cone {
            skipped = prof
                .latest()
                .and_then(|p| p.ops_skipped_fraction())
                .unwrap_or(0.0);
        }
    }
    (rates[0] > 0.0).then(|| ConeSpeedup {
        full_pairs_per_sec: rates[0],
        cone_pairs_per_sec: rates[1],
        speedup: rates[1] / rates[0],
        ops_skipped_fraction: skipped,
    })
}

/// Measures eval-phase throughput of the kohavi_codeconv sequential
/// campaign on the per-fault scalar backend and the fault-per-lane packed
/// backend, under the suite's standard drive.
fn measure_seq_speedup(threads: usize) -> Option<SeqSpeedup> {
    let m = kohavi_0101();
    let machine = code_conversion_machine(&m);
    let words = suite_words();
    let mut rates = [0.0f64; 2];
    for (i, backend) in [SeqBackend::Scalar, SeqBackend::Packed]
        .into_iter()
        .enumerate()
    {
        let prof = Profiler::new();
        rates[i] = aggregate_rate(&prof, || {
            scal_seq::Campaign::new(&machine, &words)
                .threads(threads)
                .backend(backend)
                .observer(&prof)
                .run()
                .expect("suite machines are engine-compatible");
        })?;
    }
    (rates[0] > 0.0).then(|| SeqSpeedup {
        scalar_pairs_per_sec: rates[0],
        packed_pairs_per_sec: rates[1],
        speedup: rates[1] / rates[0],
    })
}

/// Jobs in the serve-latency burst: enough samples for a meaningful p99
/// on small loopback latencies without stretching the suite run.
const SERVE_LATENCY_JOBS: usize = 32;

/// Measures serve-path latency quantiles: starts an in-process campaign
/// service on a loopback port, fires [`SERVE_LATENCY_JOBS`] concurrent
/// demo pair jobs through real TCP submissions, and reads the scheduler's
/// own telemetry histograms back through [`scal_serve::ServerHandle::telemetry`]
/// (no HTTP scrape involved). `None` when the loopback bind fails (e.g. a
/// sandbox without sockets).
fn measure_serve_latency() -> Option<ServeLatency> {
    use scal_serve::client::demo;
    let server = scal_serve::serve(scal_serve::ServeConfig::default()).ok()?;
    let client = scal_serve::Client::new(server.addr().to_string());
    if !client.wait_ready(std::time::Duration::from_secs(5)) {
        server.shutdown_and_join();
        return None;
    }
    let handles: Vec<_> = (0..SERVE_LATENCY_JOBS)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || {
                let Ok(stream) = client.submit(&demo::pair_spec(4, false)) else {
                    return false;
                };
                stream
                    .filter_map(Result::ok)
                    .any(|f| f.get("frame").and_then(JsonValue::as_str) == Some("result"))
            })
        })
        .collect();
    let completed = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(false))
        .filter(|&ok| ok)
        .count();
    let metrics = std::sync::Arc::clone(server.telemetry());
    server.shutdown_and_join();
    if completed == 0 {
        return None;
    }
    let m = metrics.metrics();
    let q = |name: &str| {
        let snap = m.histogram(name).snapshot();
        (snap.quantile(0.5), snap.quantile(0.99))
    };
    let (sa50, sa99) = q("scal_serve_submit_accept_micros");
    let (qw50, qw99) = q("scal_serve_queue_wait_micros");
    let (run50, run99) = q("scal_serve_run_micros");
    Some(ServeLatency {
        jobs: completed as u64,
        submit_accept_p50: sa50,
        submit_accept_p99: sa99,
        queue_wait_p50: qw50,
        queue_wait_p99: qw99,
        run_p50: run50,
        run_p99: run99,
    })
}

/// The fixed drive the sequential suite entries (and the seq speedup
/// measurement) replay.
fn suite_words() -> Vec<Vec<bool>> {
    [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]
        .iter()
        .map(|&s| vec![s == 1])
        .collect()
}

/// Runs the standard suite and returns the stamped snapshot.
///
/// `threads` is the engine worker count (`0` = auto, resolved before
/// recording); the CPU entry is unaffected by it. `eval_mode` selects the
/// faulty-sweep strategy of the engine entries and `seq_backend` the
/// sequential-campaign backend; the adder8 full-vs-cone and the seq
/// scalar-vs-packed speedups are measured in both respective configurations
/// regardless. `word_width` is the evaluation word width in 64-bit
/// sub-words (`0` = resolve through `SCAL_WORD_WIDTH` and CPU-feature
/// detection); the small Ch. 3 networks additionally enable fault-per-lane
/// packing, which is where wide words pay off on short pattern spaces.
///
/// # Panics
///
/// Panics if a suite circuit fails to compile or simulate — the suite is
/// fixed and known-good, so that is a build break, not a report outcome —
/// or if `word_width` (or `SCAL_WORD_WIDTH`) names an unusable width.
#[must_use]
pub fn run_suite(
    threads: usize,
    eval_mode: EvalMode,
    seq_backend: SeqBackend,
    word_width: usize,
) -> Snapshot {
    let mut circuits = Vec::new();

    // Combinational pair campaigns (Ch. 3 networks + the ripple adder in
    // classic fault-dropping mode). The Ch. 3 networks pack faults into
    // lanes: their 4-pair pattern spaces leave wide words idle otherwise.
    let pair_suite = [
        ("fig3_4", paper::fig3_4().circuit, false, true),
        ("fig3_7", paper::fig3_7().circuit, false, true),
        ("adder8_drop", paper::ripple_adder(8), true, false),
    ];
    for (name, circuit, drop, pack) in pair_suite {
        let cov = CoverageObserver::new();
        let prof = Profiler::new();
        let rate = aggregate_rate(&prof, || {
            let _ = scal_faults::Campaign::new(&circuit)
                .threads(threads)
                .drop_after_detection(drop)
                .eval_mode(eval_mode)
                .word_width(word_width)
                .fault_packing(pack)
                .observer(&prof)
                .coverage(&cov)
                .run()
                .expect("suite circuits are engine-compatible");
        });
        let map = cov.latest().expect("coverage map");
        let profile = prof.latest().expect("profile");
        circuits.push(CircuitBench::from_parts(name, &map, &profile, rate));
    }

    // Chapter-4 sequential designs under a fixed drive.
    let m = kohavi_0101();
    let words = suite_words();
    let seq_suite = [
        ("kohavi_dualff", dual_ff_machine(&m)),
        ("kohavi_codeconv", code_conversion_machine(&m)),
    ];
    for (name, machine) in seq_suite {
        let cov = CoverageObserver::new();
        let prof = Profiler::new();
        let rate = aggregate_rate(&prof, || {
            scal_seq::Campaign::new(&machine, &words)
                .threads(threads)
                .backend(seq_backend)
                .eval_mode(eval_mode)
                .word_width(word_width)
                .observer(&prof)
                .coverage(&cov)
                .run()
                .expect("suite machines are engine-compatible");
        });
        let map = cov.latest().expect("coverage map");
        let profile = prof.latest().expect("profile");
        circuits.push(CircuitBench::from_parts(name, &map, &profile, rate));
    }

    // Chapter-7 CPU datapath campaign (adder unit, default workloads). A
    // single run banks plenty of eval time, so no repetition here.
    let cov = CoverageObserver::new();
    let prof = Profiler::new();
    let rate = aggregate_rate(&prof, || {
        let _ = CpuCampaign::new(CpuUnit::Adder)
            .observer(&prof)
            .coverage(&cov)
            .run();
    });
    let map = cov.latest().expect("coverage map");
    let profile = prof.latest().expect("profile");
    circuits.push(CircuitBench::from_parts("cpu_adder", &map, &profile, rate));

    Snapshot {
        date: today_utc(),
        git_rev: git_rev(),
        threads: resolved_threads(threads),
        eval_mode: eval_mode.name().to_string(),
        seq_backend: seq_backend.name().to_string(),
        word_width: resolve_word_width(word_width).expect("suite word width is usable"),
        cpu_features: detected_cpu_features()
            .iter()
            .map(ToString::to_string)
            .collect(),
        suite: "standard".to_string(),
        circuits,
        adder8_speedup: measure_adder8_speedup(threads),
        seq_speedup: measure_seq_speedup(threads),
        serve_latency: measure_serve_latency(),
    }
}

/// Fault budget of the large suite's campaign row: enough faults to pin the
/// engine's scaling behaviour without sweeping the full 100k+ site list.
const LARGE_SUITE_FAULTS: usize = 256;

/// Deterministic seed of the large suite's generated circuits.
const LARGE_SUITE_SEED: u64 = 42;

/// A compile-only scaling row: generates the circuit, compiles it through
/// the engine with stage timing, and records schedule size and footprint
/// (coverage fields are vacuous — no faults are simulated).
fn compile_only_row(name: &str, kind: SynthKind, target_gates: usize) -> CircuitBench {
    let circuit = synth::generate(kind, target_gates, LARGE_SUITE_SEED);
    let t = std::time::Instant::now();
    let (cc, _spans) =
        CompiledCircuit::try_compile_timed(&circuit).expect("generated circuits are engine-clean");
    let compile_micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
    CircuitBench {
        name: name.to_string(),
        suite: "large".to_string(),
        campaign: "compile".to_string(),
        faults: 0,
        detected: 0,
        coverage: 1.0,
        undetected: Vec::new(),
        pairs: 0,
        pairs_per_sec: None,
        phases: vec![("compile".to_string(), compile_micros)],
        compile_micros: Some(compile_micros),
        compile_bytes: Some(cc.memory_bytes()),
        word_width: 0,
        fault_lanes: 0,
        pattern_lanes: 0,
        packing: String::new(),
        collapse_faults: 0,
        collapse_representatives: 0,
        collapse_ratio: None,
    }
}

/// Runs the synthetic large-circuit suite and returns the stamped snapshot.
///
/// `target_gates` sizes every generated design (gate counts land within a
/// constructive rounding of the target). One row — the self-dualized random
/// network, whose 13 inputs keep the pair sweep tractable — runs a real
/// engine campaign over the first [`LARGE_SUITE_FAULTS`] collapsed faults;
/// the remaining generators produce compile-only scaling rows (compile wall
/// time + schedule footprint), since their input counts exceed the engine's
/// exhaustive-sweep domain.
///
/// # Panics
///
/// Panics if a generated circuit fails to compile or simulate — the
/// generators are deterministic and tested, so that is a build break — or
/// if `word_width` (or `SCAL_WORD_WIDTH`) names an unusable width.
#[must_use]
pub fn run_large_suite(
    threads: usize,
    eval_mode: EvalMode,
    target_gates: usize,
    word_width: usize,
) -> Snapshot {
    let mut circuits = Vec::new();

    // Campaign row: truncated fault sweep on the self-dualized random DAG.
    let selfdual = synth::generate(SynthKind::RandomSelfDual, target_gates, LARGE_SUITE_SEED);
    let faults: Vec<_> = scal_faults::enumerate_faults(&selfdual)
        .into_iter()
        .take(LARGE_SUITE_FAULTS)
        .collect();
    let cov = CoverageObserver::new();
    let prof = Profiler::new();
    let _ = scal_faults::Campaign::new(&selfdual)
        .faults(faults)
        .threads(threads)
        .eval_mode(eval_mode)
        .word_width(word_width)
        .observer(&prof)
        .coverage(&cov)
        .run()
        .expect("self-dual generator emits engine-compatible circuits");
    let map = cov.latest().expect("coverage map");
    let profile = prof.latest().expect("profile");
    let mut row = CircuitBench::from_parts("synth_selfdual", &map, &profile, None);
    row.suite = "large".to_string();
    circuits.push(row);

    // Compile-only scaling rows over the wide arithmetic generators.
    for (name, kind) in [
        ("synth_ripple", SynthKind::RippleAdder),
        ("synth_csel", SynthKind::CarrySelect),
        ("synth_mult", SynthKind::MultiplierTree),
        ("synth_chain", SynthKind::ChainedMachines),
    ] {
        circuits.push(compile_only_row(name, kind, target_gates));
    }

    Snapshot {
        date: today_utc(),
        git_rev: git_rev(),
        threads: resolved_threads(threads),
        eval_mode: eval_mode.name().to_string(),
        seq_backend: "n/a".to_string(),
        word_width: resolve_word_width(word_width).expect("suite word width is usable"),
        cpu_features: detected_cpu_features()
            .iter()
            .map(ToString::to_string)
            .collect(),
        suite: "large".to_string(),
        circuits,
        adder8_speedup: None,
        seq_speedup: None,
        serve_latency: None,
    }
}

/// Diffs `current` against a parsed baseline `BENCH_*.json`, reporting
/// coverage regressions (blocking) and throughput drops beyond
/// `max_perf_drop` (e.g. `0.20` = 20%).
#[must_use]
pub fn compare(current: &Snapshot, baseline: &JsonValue, max_perf_drop: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    let Some(base_circuits) = baseline.get("circuits").and_then(JsonValue::as_array) else {
        out.push(Regression {
            circuit: "<baseline>".to_string(),
            coverage: true,
            detail: "baseline has no circuits array".to_string(),
        });
        return out;
    };
    for base in base_circuits {
        let Some(name) = base.get("name").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some(cur) = current.circuits.iter().find(|c| c.name == name) else {
            out.push(Regression {
                circuit: name.to_string(),
                coverage: true,
                detail: "circuit missing from current run".to_string(),
            });
            continue;
        };
        if let Some(base_cov) = base.get("coverage").and_then(JsonValue::as_f64) {
            if cur.coverage < base_cov - 1e-9 {
                out.push(Regression {
                    circuit: name.to_string(),
                    coverage: true,
                    detail: format!(
                        "coverage {:.4} below baseline {:.4}",
                        cur.coverage, base_cov
                    ),
                });
            }
        }
        if let (Some(base_rate), Some(cur_rate)) = (
            base.get("pairs_per_sec").and_then(JsonValue::as_f64),
            cur.pairs_per_sec,
        ) {
            if base_rate > 0.0 && cur_rate < base_rate * (1.0 - max_perf_drop) {
                out.push(Regression {
                    circuit: name.to_string(),
                    coverage: false,
                    detail: format!(
                        "throughput {cur_rate:.0} pairs/s is {:.0}% below baseline {base_rate:.0}",
                        100.0 * (1.0 - cur_rate / base_rate)
                    ),
                });
            }
        }
    }
    out
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
#[must_use]
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Proleptic-Gregorian civil date from days since 1970-01-01 (Hinnant's
/// `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Best-effort short git revision of the working tree; `"unknown"` when git
/// or the repository is unavailable.
#[must_use]
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_obs::json::{parse, validate_jsonl};

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(365), (1971, 1, 1));
        // 2000-02-29 is day 11016.
        assert_eq!(civil_from_days(11_016), (2000, 2, 29));
        // Pre-epoch dates work through euclidean division.
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn suite_snapshot_is_complete_and_json_valid() {
        let snap = run_suite(1, EvalMode::Cone, SeqBackend::Packed, 1);
        assert_eq!(snap.threads, 1);
        assert_eq!(snap.seq_backend, "packed");
        assert_eq!(snap.word_width, 1);
        let names: Vec<&str> = snap.circuits.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "fig3_4",
                "fig3_7",
                "adder8_drop",
                "kohavi_dualff",
                "kohavi_codeconv",
                "cpu_adder"
            ]
        );
        for c in &snap.circuits {
            assert!(c.faults > 0, "{}", c.name);
            assert!(!c.phases.is_empty(), "{}", c.name);
        }
        // Fig. 3.4 is the paper's *flawed* network: its fanned-out XOR stem
        // ("line 20") slips wrong-but-alternating code words, so the report
        // names it among the undetected sites.
        let fig3_4 = &snap.circuits[0];
        assert!(fig3_4.coverage < 1.0);
        assert!(fig3_4.undetected.iter().any(|l| l.contains("line20")));
        // The Fig. 3.7 fix and the adder are fully tested.
        for c in &snap.circuits[1..3] {
            assert!((c.coverage - 1.0).abs() < 1e-12, "{}", c.name);
            assert!(c.undetected.is_empty(), "{}", c.name);
        }
        // The Ch. 3 rows pack faults into lanes; the seq rows ran packed.
        assert_eq!(snap.circuits[0].packing, "fault");
        assert_eq!(snap.circuits[0].word_width, 1);
        assert_eq!(snap.circuits[3].packing, "seq");
        let json = snap.to_json();
        assert_eq!(validate_jsonl(&json), Ok(1));
        let v = parse(&json).expect("snapshot parses");
        assert_eq!(v.get("eval_mode").and_then(JsonValue::as_str), Some("cone"));
        assert_eq!(
            v.get("seq_backend").and_then(JsonValue::as_str),
            Some("packed")
        );
        assert_eq!(v.get("word_width").and_then(JsonValue::as_f64), Some(1.0));
        assert!(
            v.get("cpu_features")
                .and_then(JsonValue::as_array)
                .is_some(),
            "{json}"
        );
        let speedup = snap.adder8_speedup.as_ref().expect("adder8 measurement");
        assert!(speedup.full_pairs_per_sec > 0.0);
        assert!(speedup.ops_skipped_fraction > 0.0);
        assert!(
            v.get("adder8_speedup")
                .and_then(|s| s.get("speedup"))
                .and_then(JsonValue::as_f64)
                .is_some(),
            "{json}"
        );
        let serve = snap.serve_latency.as_ref().expect("serve latency burst");
        assert_eq!(serve.jobs, 32);
        assert!(serve.run_p50 > 0, "{serve:?}");
        assert!(
            serve.submit_accept_p99 >= serve.submit_accept_p50,
            "{serve:?}"
        );
        assert!(serve.queue_wait_p99 >= serve.queue_wait_p50, "{serve:?}");
        assert!(
            v.get("serve_latency")
                .and_then(|s| s.get("run_p50_micros"))
                .and_then(JsonValue::as_f64)
                .is_some(),
            "{json}"
        );
        let seq = snap.seq_speedup.as_ref().expect("seq speedup measurement");
        assert!(seq.scalar_pairs_per_sec > 0.0);
        assert!(seq.packed_pairs_per_sec > 0.0);
        assert!(
            v.get("seq_speedup")
                .and_then(|s| s.get("speedup"))
                .and_then(JsonValue::as_f64)
                .is_some(),
            "{json}"
        );
        let circuits = v.get("circuits").and_then(JsonValue::as_array).unwrap();
        assert_eq!(circuits.len(), snap.circuits.len());
        let parsed_cov = circuits[0]
            .get("coverage")
            .and_then(JsonValue::as_f64)
            .expect("fig3_4 coverage");
        assert!((parsed_cov - fig3_4.coverage).abs() < 1e-9);
        // A snapshot never regresses against itself.
        assert!(compare(&snap, &v, DEFAULT_MAX_PERF_DROP).is_empty());
        // The render names every circuit.
        let text = snap.render();
        for c in &snap.circuits {
            assert!(text.contains(&c.name), "{text}");
        }
    }

    #[test]
    fn large_suite_snapshot_records_compile_scaling() {
        let snap = run_large_suite(1, EvalMode::Cone, 4_000, 1);
        assert_eq!(snap.suite, "large");
        let names: Vec<&str> = snap.circuits.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "synth_selfdual",
                "synth_ripple",
                "synth_csel",
                "synth_mult",
                "synth_chain"
            ]
        );
        // The campaign row really swept faults; every row pins compile cost.
        let selfdual = &snap.circuits[0];
        assert_eq!(selfdual.faults, LARGE_SUITE_FAULTS);
        assert!(selfdual.pairs > 0);
        for c in &snap.circuits {
            assert_eq!(c.suite, "large", "{}", c.name);
            assert!(c.compile_micros.is_some(), "{}", c.name);
            assert!(c.compile_bytes.unwrap_or(0) > 0, "{}", c.name);
        }
        let json = snap.to_json();
        assert_eq!(validate_jsonl(&json), Ok(1));
        let v = parse(&json).expect("snapshot parses");
        assert_eq!(v.get("suite").and_then(JsonValue::as_str), Some("large"));
        let rows = v.get("circuits").and_then(JsonValue::as_array).unwrap();
        assert!(rows.iter().all(|r| {
            r.get("suite").and_then(JsonValue::as_str) == Some("large")
                && r.get("compile_bytes").and_then(JsonValue::as_f64).is_some()
        }));
        // The render surfaces the compile lines.
        assert!(snap.render().contains("compile:"));
    }

    #[test]
    fn doctored_baselines_trigger_regressions() {
        let snap = run_suite(1, EvalMode::Cone, SeqBackend::Packed, 1);
        // A baseline claiming impossible coverage and throughput.
        let baseline = parse(
            r#"{"circuits": [
                {"name": "fig3_4", "coverage": 2.0, "pairs_per_sec": 1e18},
                {"name": "no_such_circuit", "coverage": 1.0}
            ]}"#,
        )
        .expect("baseline parses");
        let regs = compare(&snap, &baseline, DEFAULT_MAX_PERF_DROP);
        assert_eq!(regs.len(), 3, "{regs:?}");
        assert!(regs.iter().any(|r| r.coverage && r.circuit == "fig3_4"));
        assert!(regs.iter().any(|r| !r.coverage && r.circuit == "fig3_4"));
        assert!(regs
            .iter()
            .any(|r| r.coverage && r.circuit == "no_such_circuit"));
        // A garbage baseline is itself a blocking finding.
        let bad = parse(r#"{"date": "2024-01-01"}"#).unwrap();
        assert!(compare(&snap, &bad, DEFAULT_MAX_PERF_DROP)[0].coverage);
    }
}
