//! Chapter 5 experiments: checker designs, Table 5.1, and the hardcore.

use scal_checkers::hardcore::{
    clock_disable_module, dangerous_inputs, dormant_faults, hardcore_failure_probability,
    replicated_clock_disable,
};
use scal_checkers::mixed::{dual_rail_only_cost, mixed_cost, partition};
use scal_checkers::two_rail::reynolds_checker;
use scal_checkers::xor_tree::xor_checker_circuit;
use scal_netlist::Sim;
use std::fmt::Write;

/// Figs. 5.1/5.2 — dual-rail vs XOR checkers: hardware costs across line
/// counts and the checkers' own fault coverage.
#[must_use]
pub fn fig5_1(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Figs 5.1/5.2: checker families ==");
    let _ = writeln!(
        s,
        "{:>5} {:>22} {:>22} {:>14}",
        "lines", "dual-rail (gates/FF)", "XOR tree (gates/FF)", "XOR untestable"
    );
    for n in [2usize, 4, 8, 16] {
        let dr = reynolds_checker(n);
        let drc = dr.cost();
        let xc = xor_checker_circuit(n);
        let xcc = xc.cost();
        let untestable = scal_checkers::xor_tree::untestable_checker_faults(&xc);
        let _ = writeln!(
            s,
            "{n:>5} {:>17}/{:<4} {:>17}/{:<4} {untestable:>14}",
            drc.gates, drc.flip_flops, xcc.gates, xcc.flip_flops
        );
    }
    let _ = writeln!(
        s,
        "dual-rail cost = 6(n-1) gates + n flip-flops; XOR tree = ~(n-1)/2 gates, 0 flip-flops, all own faults testable"
    );
    s
}

/// Figs. 5.3/5.4 — the mixed checker on the paper's nine-output example:
/// the Algorithm 5.1 partition and the ~2x hardware saving.
#[must_use]
pub fn fig5_3(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Figs 5.3/5.4: mixed checker design (9-output example) =="
    );
    // Paper's example: outputs 1..9; share groups (4,5,6), (6,7), (8,9);
    // outputs 5 and 8 can alternate incorrectly.
    let share = vec![vec![3, 4, 5], vec![5, 6], vec![7, 8]];
    let p = partition(9, &share, &[4, 7]);
    let show = |v: &[usize]| -> String {
        v.iter()
            .map(|i| (i + 1).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(s, "partition A = {{{}}}   [paper: 1,2,3,4,9]", show(&p.a));
    for (i, b) in p.b.iter().enumerate() {
        let _ = writeln!(s, "partition B{} = {{{}}}", i + 1, show(b));
    }
    let dr = dual_rail_only_cost(9);
    let mx = mixed_cost(&p);
    let _ = writeln!(
        s,
        "dual-rail only: {} two-input gates + {} flip-flops   [paper: 48 gates, 9 FF]",
        dr.two_input_gates, dr.flip_flops
    );
    let _ = writeln!(
        s,
        "mixed checker : {} two-input gates + {} XOR gates + {} flip-flops   [paper option (2): 24 + 2 XOR + 4 FF]",
        mx.two_input_gates, mx.xor_gates, mx.flip_flops
    );
    let _ = writeln!(
        s,
        "saving: ~{:.0}% of the dual-rail gate cost — 'about one-half'",
        100.0 * (1.0 - mx.two_input_gates as f64 / dr.two_input_gates as f64)
    );
    s
}

/// Table 5.1 — when the XOR checker suffices: enumerate fault scenarios on
/// a 4-line XOR checker (lines stuck vs lines alternating incorrectly) and
/// regenerate the Yes/No column by simulation.
#[must_use]
pub fn tab5_1(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table 5.1: conditions where the XOR checker suffices =="
    );
    let n = 4usize;
    let c = xor_checker_circuit(n);
    let _ = writeln!(
        s,
        "{:>6} {:>10} {:>14} {:>9}  note",
        "stuck", "incorrect", "detected", "proper"
    );
    for total in 0..=3usize {
        for stuck in 0..=total {
            let incorrect = total - stuck;
            // Simulate: lines 0..stuck hold their period-1 value; lines
            // stuck..stuck+incorrect alternate with the wrong phase (which
            // an XOR checker cannot distinguish from correct alternation).
            let word = 0b0101u32;
            let mut p1: Vec<bool> = (0..n).map(|i| (word >> i) & 1 == 1).collect();
            p1.push(false); // phi
            let mut p2: Vec<bool> = p1.iter().map(|&b| !b).collect();
            p2[..stuck].copy_from_slice(&p1[..stuck]);
            for k in stuck..stuck + incorrect {
                // wrong phase: flip period 1 instead (value wrong, still
                // alternating).
                p1[k] = !p1[k];
                p2[k] = !p1[k];
            }
            let o1 = c.eval(&p1)[0];
            let o2 = c.eval(&p2)[0];
            let detected = o1 == o2;
            // "Checker operation proper": the checker may miss incorrect
            // alternation (a self-checking network never emits it without a
            // non-alternating companion) but must catch odd stuck counts.
            let note = match (stuck, incorrect) {
                (0, 0) => "proper operation",
                (0, _) => "not detected* (cannot occur alone in a SCAL network)",
                (k, _) if k % 2 == 1 => "detected",
                _ => "NOT detected - even stuck count defeats parity",
            };
            let proper_str = match (stuck, detected) {
                (0, _) => "Yes",
                (k, true) if k % 2 == 1 => "Yes",
                (k, false) if k % 2 == 0 => "No",
                _ => "?",
            };
            let _ = writeln!(
                s,
                "{stuck:>6} {incorrect:>10} {:>14} {proper_str:>9}  {note}",
                if detected { "yes" } else { "no" }
            );
        }
    }
    s
}

/// Table 5.2 / Figs. 5.5–5.7 — the hardcore: clock-disable truth table, the
/// Theorem 5.2 witness (an undetectable-but-dangerous fault), replication
/// probabilities, and the latching checker output.
#[must_use]
pub fn tab5_2(_ctx: &crate::ExperimentCtx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Table 5.2 / Fig 5.5: hardcore clock disable ==");
    let m = clock_disable_module();
    let _ = writeln!(
        s,
        "{:>8} {:>3} {:>3} {:>10}",
        "clock in", "f", "g", "clock out"
    );
    for i in 0..8u32 {
        let clk = i & 4 != 0;
        let f = i & 2 != 0;
        let g = i & 1 != 0;
        let out = m.eval(&[clk, f, g])[0];
        let _ = writeln!(
            s,
            "{:>8} {:>3} {:>3} {:>10}",
            u8::from(clk),
            u8::from(f),
            u8::from(g),
            u8::from(out)
        );
    }
    let dormant = dormant_faults(&m);
    let _ = writeln!(
        s,
        "\nTheorem 5.2 witness: {} fault(s) invisible during code operation:",
        dormant.len()
    );
    for fault in &dormant {
        let danger = dangerous_inputs(&m, *fault);
        let _ = writeln!(
            s,
            "  {fault} - lets {} non-code word(s) through the clock gate",
            danger.len()
        );
    }
    let _ = writeln!(s, "\nFig 5.5b replication (all modules must fail):");
    for n in [1u32, 2, 3, 5] {
        let _ = writeln!(
            s,
            "  n={n}: residual hardcore failure probability p^n at p=0.01 -> {:.2e}",
            hardcore_failure_probability(0.01, n)
        );
    }
    let m3 = replicated_clock_disable(3);
    let covered = dormant_faults(&m3)
        .iter()
        .all(|f| dangerous_inputs(&m3, *f).is_empty());
    let _ = writeln!(
        s,
        "triple replication: every single dormant fault is out-gated by the other stages: {covered}"
    );

    // Fig 5.7 latching behaviour.
    let latch = scal_checkers::hardcore::latching_checker_output();
    let mut sim = Sim::new(&latch);
    sim.step(&[true, false]);
    sim.step(&[true, true]); // fault word arrives
    let held = (0..4).all(|_| {
        let o = sim.step(&[true, false]);
        o[0] == o[1]
    });
    let _ = writeln!(
        s,
        "Fig 5.7: first non-code word latches permanently: {held}"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_1_has_zero_untestable_xor_faults() {
        let r = super::fig5_1(&crate::ExperimentCtx::default());
        for line in r
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
        {
            let last = line.split_whitespace().last().unwrap();
            assert_eq!(last, "0", "line: {line}");
        }
    }

    #[test]
    fn fig5_3_matches_paper_partition() {
        let r = super::fig5_3(&crate::ExperimentCtx::default());
        assert!(r.contains("A = {1,2,3,4,9}"));
        assert!(r.contains("48"));
    }

    #[test]
    fn tab5_1_detects_odd_misses_even() {
        let r = super::tab5_1(&crate::ExperimentCtx::default());
        assert!(r.contains("NOT detected"));
        assert!(r.contains("proper operation"));
    }

    #[test]
    fn tab5_2_has_the_witness() {
        let r = super::tab5_2(&crate::ExperimentCtx::default());
        assert!(r.contains("s-a-1"));
        assert!(r.contains("latches permanently: true"));
        assert!(r.contains("out-gated by the other stages: true"));
    }
}
