//! Experiment regenerators for every table and figure of the paper's
//! evaluation content (see DESIGN.md's per-experiment index).
//!
//! Each `report()` function recomputes its artifact from the library stack
//! and renders the same rows/series the paper presents, with paper-reported
//! values shown alongside where they exist. The `experiments` binary prints
//! them (`cargo run -p scal-bench --bin experiments -- all`).
//!
//! Every experiment receives an [`ExperimentCtx`] — the observability
//! context. Experiments that run fault campaigns attach it as a
//! [`CampaignObserver`], so `experiments -- <id> --trace out.jsonl` captures
//! the per-phase / per-fault event stream and `--metrics` aggregates
//! counters and wall-time histograms across every sweep the run performs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scal_obs::{CampaignEvent, CampaignObserver, JsonlTrace, Metrics};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::Path;

pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod ch7;
pub mod cost;
pub mod ext;

/// Observability context threaded through every experiment.
///
/// Holds the optional sinks selected on the command line: a JSON-lines
/// trace file (`--trace FILE`) and a metrics registry (`--metrics`). The
/// context itself is a [`CampaignObserver`] that fans events out to
/// whichever sinks are present; with neither sink it reports
/// `enabled() == false`, so campaigns skip event construction entirely.
#[derive(Debug, Default)]
pub struct ExperimentCtx {
    trace: Option<JsonlTrace<BufWriter<File>>>,
    metrics: Option<Metrics>,
}

impl ExperimentCtx {
    /// A context with no sinks attached (observability off).
    #[must_use]
    pub fn new() -> Self {
        ExperimentCtx::default()
    }

    /// Attaches a JSON-lines trace sink writing to `path` (truncating).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn set_trace<P: AsRef<Path>>(&mut self, path: P) -> io::Result<()> {
        self.trace = Some(JsonlTrace::create(path)?);
        Ok(())
    }

    /// Attaches a metrics registry.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(Metrics::new());
    }

    /// The metrics registry, when `--metrics` is on.
    #[must_use]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Trace lines written so far (0 without a trace sink).
    #[must_use]
    pub fn trace_lines(&self) -> u64 {
        self.trace.as_ref().map_or(0, JsonlTrace::lines)
    }

    /// Flushes the trace sink, surfacing any latched write error.
    ///
    /// # Errors
    ///
    /// Returns the first trace write error hit during the run.
    pub fn finish(&self) -> io::Result<()> {
        match &self.trace {
            Some(t) => t.flush(),
            None => Ok(()),
        }
    }
}

impl CampaignObserver for ExperimentCtx {
    fn on_event(&self, event: &CampaignEvent) {
        if let Some(t) = &self.trace {
            t.on_event(event);
        }
        if let Some(m) = &self.metrics {
            m.on_event(event);
        }
    }

    fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }
}

/// An experiment id paired with its report generator.
pub type Experiment = (&'static str, fn(&ExperimentCtx) -> String);

/// All experiment ids, in chapter order.
pub const EXPERIMENTS: &[Experiment] = &[
    ("fig2_2", ch2::fig2_2),
    ("fig3_1", ch3::fig3_1),
    ("fig3_4", ch3::fig3_4),
    ("fig3_6", ch3::fig3_6),
    ("fig3_7", ch3::fig3_7),
    ("fig4_2", ch4::fig4_2),
    ("fig4_4", ch4::fig4_4),
    ("tab4_1", ch4::tab4_1),
    ("fig5_1", ch5::fig5_1),
    ("fig5_3", ch5::fig5_3),
    ("tab5_1", ch5::tab5_1),
    ("tab5_2", ch5::tab5_2),
    ("fig6_1", ch6::fig6_1),
    ("fig6_2", ch6::fig6_2),
    ("fig7_2", ch7::fig7_2),
    ("fig7_3", ch7::fig7_3),
    ("fig7_5", ch7::fig7_5),
    ("cost1_8", cost::cost1_8),
    ("ext_testgen", ext::ext_testgen),
    ("ext_repair", ext::ext_repair),
    ("ext_checked_system", ext::ext_checked_system),
    ("ext_adr_retry", ext::ext_adr_retry),
    ("ext_engine", ext::ext_engine),
];

/// Runs one experiment by id, forwarding `ctx` to its campaigns.
///
/// # Errors
///
/// Returns `Err` with the list of known ids if `id` is unknown.
pub fn run(id: &str, ctx: &ExperimentCtx) -> Result<String, String> {
    EXPERIMENTS
        .iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f(ctx))
        .ok_or_else(|| {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            format!("unknown experiment {id:?}; known: {}", known.join(", "))
        })
}
