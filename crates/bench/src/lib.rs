//! Experiment regenerators for every table and figure of the paper's
//! evaluation content (see DESIGN.md's per-experiment index).
//!
//! Each `report()` function recomputes its artifact from the library stack
//! and renders the same rows/series the paper presents, with paper-reported
//! values shown alongside where they exist. The `experiments` binary prints
//! them (`cargo run -p scal-bench --bin experiments -- all`).
//!
//! Every experiment receives an [`ExperimentCtx`] — the observability
//! context. Experiments that run fault campaigns attach it as a
//! [`CampaignObserver`], so `experiments -- <id> --trace out.jsonl` captures
//! the per-phase / per-fault event stream and `--metrics` aggregates
//! counters and wall-time histograms across every sweep the run performs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scal_engine::EvalMode;
use scal_obs::{CampaignEvent, CampaignObserver, CoverageObserver, JsonlTrace, Metrics, Profiler};
use scal_seq::SeqBackend;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod ch7;
pub mod cost;
pub mod ext;
pub mod report;

/// Observability context threaded through every experiment.
///
/// Holds the optional sinks selected on the command line: a JSON-lines
/// trace file (`--trace FILE`), a metrics registry (`--metrics`), a
/// per-fault coverage-map collector (`--coverage-out FILE`) and a phase
/// profiler (`--profile`). The context itself is a [`CampaignObserver`]
/// that fans events out to whichever sinks are present; with no sink it
/// reports `enabled() == false`, so campaigns skip event construction
/// entirely.
#[derive(Debug, Default)]
pub struct ExperimentCtx {
    trace: Option<JsonlTrace<BufWriter<File>>>,
    metrics: Option<Metrics>,
    coverage: Option<(PathBuf, CoverageObserver)>,
    profiler: Option<Profiler>,
    eval_mode: EvalMode,
    seq_backend: SeqBackend,
}

impl ExperimentCtx {
    /// A context with no sinks attached (observability off).
    #[must_use]
    pub fn new() -> Self {
        ExperimentCtx::default()
    }

    /// Attaches a JSON-lines trace sink writing to `path` (truncating).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn set_trace<P: AsRef<Path>>(&mut self, path: P) -> io::Result<()> {
        self.trace = Some(JsonlTrace::create(path)?);
        Ok(())
    }

    /// Attaches a metrics registry.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(Metrics::new());
    }

    /// Attaches a coverage-map collector whose maps are written to `path`
    /// (one JSON object per campaign) by [`ExperimentCtx::write_coverage`].
    /// Labels stay index-based here: experiments attach the context as a
    /// plain observer, so the typed `.coverage()` label hookup does not
    /// apply.
    pub fn set_coverage_out<P: Into<PathBuf>>(&mut self, path: P) {
        self.coverage = Some((path.into(), CoverageObserver::new()));
    }

    /// Attaches a phase profiler.
    pub fn enable_profile(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// Selects the engine faulty-sweep strategy (`--eval-mode`) experiments
    /// forward to their campaigns.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.eval_mode = mode;
    }

    /// The engine faulty-sweep strategy experiments should run with.
    #[must_use]
    pub fn eval_mode(&self) -> EvalMode {
        self.eval_mode
    }

    /// Selects the sequential-campaign backend (`--seq-backend`) experiments
    /// forward to their `scal_seq::Campaign` runs.
    pub fn set_seq_backend(&mut self, backend: SeqBackend) {
        self.seq_backend = backend;
    }

    /// The sequential-campaign backend experiments should run with.
    #[must_use]
    pub fn seq_backend(&self) -> SeqBackend {
        self.seq_backend
    }

    /// The metrics registry, when `--metrics` is on.
    #[must_use]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// The phase profiler, when `--profile` is on.
    #[must_use]
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Writes every collected coverage map as JSON lines to the
    /// `--coverage-out` path; returns the map count, or `None` when the
    /// sink is off.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn write_coverage(&self) -> io::Result<Option<(PathBuf, usize)>> {
        let Some((path, cov)) = &self.coverage else {
            return Ok(None);
        };
        let maps = cov.maps();
        let mut out = String::new();
        for map in &maps {
            out.push_str(&map.to_json());
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(Some((path.clone(), maps.len())))
    }

    /// Trace lines written so far (0 without a trace sink).
    #[must_use]
    pub fn trace_lines(&self) -> u64 {
        self.trace.as_ref().map_or(0, JsonlTrace::lines)
    }

    /// Flushes the trace sink, surfacing any latched write error.
    ///
    /// # Errors
    ///
    /// Returns the first trace write error hit during the run.
    pub fn finish(&self) -> io::Result<()> {
        match &self.trace {
            Some(t) => t.flush(),
            None => Ok(()),
        }
    }
}

impl CampaignObserver for ExperimentCtx {
    fn on_event(&self, event: &CampaignEvent) {
        if let Some(t) = &self.trace {
            t.on_event(event);
        }
        if let Some(m) = &self.metrics {
            m.on_event(event);
        }
        if let Some((_, c)) = &self.coverage {
            c.on_event(event);
        }
        if let Some(p) = &self.profiler {
            p.on_event(event);
        }
    }

    fn enabled(&self) -> bool {
        self.trace.is_some()
            || self.metrics.is_some()
            || self.coverage.is_some()
            || self.profiler.is_some()
    }
}

/// An experiment id paired with its report generator.
pub type Experiment = (&'static str, fn(&ExperimentCtx) -> String);

/// All experiment ids, in chapter order.
pub const EXPERIMENTS: &[Experiment] = &[
    ("fig2_2", ch2::fig2_2),
    ("fig3_1", ch3::fig3_1),
    ("fig3_4", ch3::fig3_4),
    ("fig3_6", ch3::fig3_6),
    ("fig3_7", ch3::fig3_7),
    ("fig4_2", ch4::fig4_2),
    ("fig4_4", ch4::fig4_4),
    ("tab4_1", ch4::tab4_1),
    ("fig5_1", ch5::fig5_1),
    ("fig5_3", ch5::fig5_3),
    ("tab5_1", ch5::tab5_1),
    ("tab5_2", ch5::tab5_2),
    ("fig6_1", ch6::fig6_1),
    ("fig6_2", ch6::fig6_2),
    ("fig7_2", ch7::fig7_2),
    ("fig7_3", ch7::fig7_3),
    ("fig7_5", ch7::fig7_5),
    ("cost1_8", cost::cost1_8),
    ("ext_testgen", ext::ext_testgen),
    ("ext_repair", ext::ext_repair),
    ("ext_checked_system", ext::ext_checked_system),
    ("ext_adr_retry", ext::ext_adr_retry),
    ("ext_engine", ext::ext_engine),
];

/// Runs one experiment by id, forwarding `ctx` to its campaigns.
///
/// # Errors
///
/// Returns `Err` with the list of known ids if `id` is unknown.
pub fn run(id: &str, ctx: &ExperimentCtx) -> Result<String, String> {
    EXPERIMENTS
        .iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f(ctx))
        .ok_or_else(|| {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            format!("unknown experiment {id:?}; known: {}", known.join(", "))
        })
}
