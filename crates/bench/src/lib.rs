//! Experiment regenerators for every table and figure of the paper's
//! evaluation content (see DESIGN.md's per-experiment index).
//!
//! Each `report()` function recomputes its artifact from the library stack
//! and renders the same rows/series the paper presents, with paper-reported
//! values shown alongside where they exist. The `experiments` binary prints
//! them (`cargo run -p scal-bench --bin experiments -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod ch7;
pub mod cost;
pub mod ext;

/// An experiment id paired with its report generator.
pub type Experiment = (&'static str, fn() -> String);

/// All experiment ids, in chapter order.
pub const EXPERIMENTS: &[Experiment] = &[
    ("fig2_2", ch2::fig2_2),
    ("fig3_1", ch3::fig3_1),
    ("fig3_4", ch3::fig3_4),
    ("fig3_6", ch3::fig3_6),
    ("fig3_7", ch3::fig3_7),
    ("fig4_2", ch4::fig4_2),
    ("fig4_4", ch4::fig4_4),
    ("tab4_1", ch4::tab4_1),
    ("fig5_1", ch5::fig5_1),
    ("fig5_3", ch5::fig5_3),
    ("tab5_1", ch5::tab5_1),
    ("tab5_2", ch5::tab5_2),
    ("fig6_1", ch6::fig6_1),
    ("fig6_2", ch6::fig6_2),
    ("fig7_2", ch7::fig7_2),
    ("fig7_3", ch7::fig7_3),
    ("fig7_5", ch7::fig7_5),
    ("cost1_8", cost::cost1_8),
    ("ext_testgen", ext::ext_testgen),
    ("ext_repair", ext::ext_repair),
    ("ext_checked_system", ext::ext_checked_system),
    ("ext_adr_retry", ext::ext_adr_retry),
    ("ext_engine", ext::ext_engine),
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns `Err` with the list of known ids if `id` is unknown.
pub fn run(id: &str) -> Result<String, String> {
    EXPERIMENTS
        .iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f())
        .ok_or_else(|| {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
            format!("unknown experiment {id:?}; known: {}", known.join(", "))
        })
}
