//! Minority-module conversion and verification throughput (Chapter 6).

use criterion::{criterion_group, criterion_main, Criterion};
use scal_faults::Campaign;
use scal_minority::convert_to_alternating;
use scal_netlist::Circuit;

fn nand_net(width: usize) -> Circuit {
    // A chain of NAND layers over `width` inputs.
    let mut c = Circuit::new();
    let inputs: Vec<_> = (0..width).map(|i| c.input(format!("x{i}"))).collect();
    let mut layer = inputs;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                c.nand(&[pair[0], pair[1]])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    c.mark_output("f", layer[0]);
    c
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("minority");
    for width in [4usize, 8] {
        let net = nand_net(width);
        group.bench_function(format!("convert_{width}"), |b| {
            b.iter(|| convert_to_alternating(&net).unwrap());
        });
        let alt = convert_to_alternating(&net).unwrap();
        group.bench_function(format!("verify_converted_{width}"), |b| {
            b.iter(|| Campaign::new(&alt).run().unwrap());
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
