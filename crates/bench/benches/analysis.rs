//! Algorithm 3.1 analytic analysis vs exhaustive simulation — the paper's
//! claim that "for larger networks considerable calculation can be saved by
//! using the analytic approach".

use criterion::{criterion_group, criterion_main, Criterion};
use scal_analysis::analyze;
use scal_core::paper::{fig3_4, fig3_7, ripple_adder};
use scal_faults::Campaign;

fn bench(c: &mut Criterion) {
    let examples = [
        ("fig3_4", fig3_4().circuit),
        ("fig3_7", fig3_7().circuit),
        ("adder3", ripple_adder(3)),
    ];
    let mut group = c.benchmark_group("analysis");
    for (name, circuit) in &examples {
        group.bench_function(format!("algorithm31_{name}"), |b| {
            b.iter(|| analyze(circuit).unwrap());
        });
        group.bench_function(format!("exhaustive_{name}"), |b| {
            b.iter(|| Campaign::new(circuit).run().unwrap());
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
