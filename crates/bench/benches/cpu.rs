//! CPU throughput: normal vs alternating mode (the paper's "twice as much
//! time" trade, measured), plus the redundant configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use scal_system::adr::{run_pair, sum_program};
use scal_system::tmr::run_tmr;
use scal_system::{Cpu, CpuMode};

fn bench(c: &mut Criterion) {
    let program = sum_program(12);
    let mut group = c.benchmark_group("cpu");
    group.bench_function("normal_mode", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuMode::Normal);
            cpu.run(&program, 100_000).unwrap()
        });
    });
    group.bench_function("alternating_mode", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuMode::Alternating);
            cpu.run(&program, 100_000).unwrap()
        });
    });
    group.bench_function("fig7_5_pair", |b| {
        b.iter(|| run_pair(&program, None));
    });
    group.bench_function("tmr", |b| {
        b.iter(|| run_tmr(&program, None));
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
