//! Full-schedule vs cone-restricted faulty-sweep evaluation (this PR's
//! tentpole): the same exhaustive pair campaigns, differing only in
//! `EvalMode`. The gap is the cost of re-evaluating ops outside each
//! fault's fanout cone plus the per-batch full-output classification the
//! cone path avoids.

use criterion::{criterion_group, criterion_main, Criterion};
use scal_core::paper::{fig3_4, ripple_adder};
use scal_engine::EvalMode;
use scal_faults::Campaign;
use scal_netlist::Circuit;

fn run(circuit: &Circuit, mode: EvalMode) -> usize {
    Campaign::new(circuit)
        .threads(1)
        .eval_mode(mode)
        .run()
        .unwrap()
        .results
        .len()
}

/// The full-fault adder8 campaign (2^16 canonical pairs per fault) — the
/// BENCH headline measurement, so threads are pinned to 1 for stable
/// numbers.
fn bench_adder8(c: &mut Criterion) {
    let adder = ripple_adder(8);
    let mut group = c.benchmark_group("eval_mode_adder8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.bench_function("full", |b| b.iter(|| run(&adder, EvalMode::Full)));
    group.bench_function("cone", |b| b.iter(|| run(&adder, EvalMode::Cone)));
    group.finish();
}

/// The paper's Fig. 3.4 network — small and shallow, so this bounds the
/// cone path's bookkeeping overhead where cones cover most of the circuit.
fn bench_fig3_4(c: &mut Criterion) {
    let fig = fig3_4();
    let mut group = c.benchmark_group("eval_mode_fig3_4");
    group.bench_function("full", |b| b.iter(|| run(&fig.circuit, EvalMode::Full)));
    group.bench_function("cone", |b| b.iter(|| run(&fig.circuit, EvalMode::Cone)));
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_adder8, bench_fig3_4
}
criterion_main!(benches);
