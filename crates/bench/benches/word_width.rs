//! Wide-word sweep: pair-campaign throughput at evaluation word widths
//! W ∈ {1, 4, 8}, on the 8-bit ripple adder (drop mode, pattern-lane
//! parallelism) and a 100k-gate self-dualized synthetic (truncated fault
//! list). The adder additionally runs with fault-per-lane packing, the 2-D
//! configuration (63 fault lanes × W pattern lanes per sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use scal_core::paper;
use scal_faults::Campaign;
use scal_netlist::synth::{self, SynthKind};

/// Faults swept on the synthetic circuit — enough to exercise the wide
/// path without sweeping the full 100k+ site list per sample.
const SYNTH_FAULTS: usize = 64;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_width");
    let adder = paper::ripple_adder(8);
    for width in [1usize, 4, 8] {
        group.bench_function(format!("adder8_drop_w{width}"), |b| {
            b.iter(|| {
                Campaign::new(&adder)
                    .threads(1)
                    .drop_after_detection(true)
                    .word_width(width)
                    .run()
                    .expect("adder is engine-compatible")
            });
        });
        group.bench_function(format!("adder8_drop_packed_w{width}"), |b| {
            b.iter(|| {
                Campaign::new(&adder)
                    .threads(1)
                    .drop_after_detection(true)
                    .word_width(width)
                    .fault_packing(true)
                    .run()
                    .expect("adder is engine-compatible")
            });
        });
    }

    let selfdual = synth::generate(SynthKind::RandomSelfDual, 100_000, 42);
    let faults: Vec<_> = scal_faults::enumerate_faults(&selfdual)
        .into_iter()
        .take(SYNTH_FAULTS)
        .collect();
    for width in [1usize, 4, 8] {
        group.bench_function(format!("selfdual100k_w{width}"), |b| {
            b.iter(|| {
                Campaign::new(&selfdual)
                    .faults(faults.clone())
                    .threads(1)
                    .word_width(width)
                    .run()
                    .expect("self-dual generator emits engine-compatible circuits")
            });
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
