//! Checker evaluation throughput: dual-rail trees vs XOR trees across line
//! counts (the hardware trade of Chapter 5, in time).

use criterion::{criterion_group, criterion_main, Criterion};
use scal_checkers::two_rail::reynolds_checker;
use scal_checkers::xor_tree::xor_checker_circuit;
use scal_netlist::Sim;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    for n in [4usize, 16] {
        let dr = reynolds_checker(n);
        group.bench_function(format!("dual_rail_{n}_lines"), |b| {
            let word: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let flipped: Vec<bool> = word.iter().map(|&x| !x).collect();
            b.iter(|| {
                let mut sim = Sim::new(&dr);
                sim.step(&word);
                sim.step(&flipped)
            });
        });
        let xc = xor_checker_circuit(n);
        group.bench_function(format!("xor_tree_{n}_lines"), |b| {
            let mut word: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            if xc.inputs().len() == n + 1 {
                word.push(false);
            }
            let flipped: Vec<bool> = word.iter().map(|&x| !x).collect();
            b.iter(|| (xc.eval(&word), xc.eval(&flipped)));
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
