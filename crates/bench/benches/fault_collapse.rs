//! Compile-time fault collapsing as a campaign multiplier: end-to-end
//! campaigns with collapsing on vs off (8-bit ripple adder pair sweep, the
//! interpreted CPU adder campaign), plus the collapsing pass itself on a
//! 100k-gate random self-dual network to show the analysis stays a
//! negligible fraction of compile time at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use scal_core::paper::ripple_adder;
use scal_engine::{collapse_overrides, CompiledCircuit, EngineConfig};
use scal_faults::{enumerate_faults, Campaign};
use scal_netlist::synth::{self, SynthKind};
use scal_system::campaign::Campaign as CpuCampaign;
use scal_system::CpuUnit;

fn bench_adder8(c: &mut Criterion) {
    let adder = ripple_adder(8);
    let config = EngineConfig {
        drop_after_detection: true,
        ..EngineConfig::default()
    };

    let mut group = c.benchmark_group("fault_collapse");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, collapse) in [("adder8_collapse_on", true), ("adder8_collapse_off", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Campaign::new(&adder)
                    .config(config.clone())
                    .fault_collapse(collapse)
                    .run()
                    .unwrap()
            });
        });
    }
    for (name, collapse) in [
        ("cpu_adder_collapse_on", true),
        ("cpu_adder_collapse_off", false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                CpuCampaign::new(CpuUnit::Adder)
                    .fault_collapse(collapse)
                    .run()
            });
        });
    }
    group.finish();
}

fn bench_selfdual100k(c: &mut Criterion) {
    // Generated and compiled once; only the collapsing pass itself is timed.
    let circuit = synth::generate(SynthKind::RandomSelfDual, 100_000, 42);
    let compiled = CompiledCircuit::try_compile(&circuit).expect("combinational synth circuit");
    let overrides: Vec<_> = enumerate_faults(&circuit)
        .iter()
        .map(|f| f.to_override())
        .collect();

    let mut group = c.benchmark_group("fault_collapse");
    group.sample_size(10);
    group.bench_function("selfdual100k_collapse_pass", |b| {
        b.iter(|| collapse_overrides(&compiled, &overrides));
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_adder8, bench_selfdual100k
}
criterion_main!(benches);
