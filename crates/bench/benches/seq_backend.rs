//! Sequential fault-campaign backends: per-fault scalar replay vs the
//! fault-per-lane packed backend, on both Chapter-4 Kohavi machines.

use criterion::{criterion_group, criterion_main, Criterion};
use scal_seq::kohavi::kohavi_0101;
use scal_seq::{code_conversion_machine, dual_ff_machine, Campaign, SeqBackend};

fn words() -> Vec<Vec<bool>> {
    [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]
        .iter()
        .map(|&s| vec![s == 1])
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_backend");
    let m = kohavi_0101();
    let words = words();
    for (name, machine) in [
        ("dualff", dual_ff_machine(&m)),
        ("codeconv", code_conversion_machine(&m)),
    ] {
        for backend in [SeqBackend::Scalar, SeqBackend::Packed] {
            group.bench_function(format!("{name}_{backend}"), |b| {
                b.iter(|| {
                    Campaign::new(&machine, &words)
                        .threads(1)
                        .backend(backend)
                        .run()
                        .expect("kohavi machines simulate")
                });
            });
        }
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
