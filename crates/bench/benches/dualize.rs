//! Self-dualization throughput: structural Yamamoto vs re-synthesis (the
//! two conversion routes of `scal-core`).

use criterion::{criterion_group, criterion_main, Criterion};
use scal_core::{dualize, dualize_synthesized};
use scal_netlist::Circuit;

fn sample_circuit() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input("a");
    let b = c.input("b");
    let d = c.input("c");
    let e = c.input("d");
    let g1 = c.and(&[a, b]);
    let g2 = c.or(&[g1, d]);
    let g3 = c.xor(&[g2, e]);
    let g4 = c.nand(&[g1, e, d]);
    c.mark_output("f1", g3);
    c.mark_output("f2", g4);
    c
}

fn bench(c: &mut Criterion) {
    let circuit = sample_circuit();
    let mut group = c.benchmark_group("dualize");
    group.bench_function("structural", |b| {
        b.iter(|| dualize(&circuit));
    });
    group.bench_function("synthesized", |b| {
        b.iter(|| dualize_synthesized(&circuit));
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
