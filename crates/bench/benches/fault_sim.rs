//! Exhaustive fault-simulation throughput (the engine behind Figs. 3.6/3.7
//! and the verification of every SCAL network in the repo): the compiled
//! `scal-engine` campaign against the seed's scalar paths, on the paper's
//! combinational networks (8-bit ripple adder), the Kohavi machine, and the
//! Reynolds two-rail checker.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scal_core::paper::{fig3_7, ripple_adder};
use scal_engine::{CompiledCircuit, CompiledSim, EngineConfig};
use scal_faults::{enumerate_faults, Campaign, Fault};
use scal_netlist::{Circuit, Sim};
use scal_seq::kohavi::kohavi_0101;
use scal_seq::{dual_ff_machine, Campaign as SeqCampaignBuilder};

fn scalar_campaign(circuit: &Circuit, faults: &[Fault]) -> usize {
    // Seed reference: one scalar `eval_with` graph walk per (fault, period).
    let n = circuit.inputs().len();
    let mut detected = 0usize;
    for fault in faults {
        let ov = [fault.to_override()];
        for m in 0..(1u32 << n) {
            let m2 = !m & ((1u32 << n) - 1);
            if m > m2 {
                continue;
            }
            let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let y: Vec<bool> = x.iter().map(|&b| !b).collect();
            let f1 = circuit.eval_with(&x, &ov);
            let f2 = circuit.eval_with(&y, &ov);
            if f1.iter().zip(&f2).any(|(a, b)| a == b) {
                detected += 1;
                break;
            }
        }
    }
    detected
}

fn bench(c: &mut Criterion) {
    let fig = fig3_7();
    let adder = ripple_adder(4);

    let mut group = c.benchmark_group("fault_sim");
    group.bench_function("fig3_7_engine", |b| {
        b.iter_batched(
            || fig.circuit.clone(),
            |c| Campaign::new(&c).run().unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("fig3_7_scalar_reference", |b| {
        let faults = enumerate_faults(&fig.circuit);
        b.iter(|| scalar_campaign(&fig.circuit, &faults));
    });
    group.bench_function("adder4_engine", |b| {
        b.iter(|| Campaign::new(&adder).run().unwrap());
    });
    group.finish();
}

/// Engine vs seed scalar on the 8-bit ripple adder (17 inputs, 2^16
/// canonical pairs). The scalar paths are restricted to a fault subset to
/// keep wall time sane; the engine is also timed on the full universe.
fn bench_adder8(c: &mut Criterion) {
    let adder = ripple_adder(8);
    let faults = enumerate_faults(&adder);
    let subset: Vec<Fault> = faults.iter().copied().take(8).collect();

    let mut group = c.benchmark_group("adder8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("engine_8faults", |b| {
        b.iter(|| Campaign::new(&adder).faults(subset.clone()).run().unwrap());
    });
    group.bench_function("engine_8faults_drop", |b| {
        let config = EngineConfig {
            drop_after_detection: true,
            ..EngineConfig::default()
        };
        b.iter(|| {
            Campaign::new(&adder)
                .faults(subset.clone())
                .config(config.clone())
                .run()
                .unwrap()
        });
    });
    group.bench_function("scalar_8faults", |b| {
        b.iter(|| {
            Campaign::new(&adder)
                .faults(subset.clone())
                .scalar()
                .run()
                .unwrap()
        });
    });
    group.bench_function("engine_full_562faults_drop", |b| {
        let config = EngineConfig {
            drop_after_detection: true,
            ..EngineConfig::default()
        };
        b.iter(|| {
            Campaign::new(&adder)
                .faults(faults.clone())
                .config(config.clone())
                .run()
                .unwrap()
        });
    });
    group.finish();
}

/// Engine vs scalar sequential campaign on the Kohavi 0101 machine.
fn bench_kohavi(c: &mut Criterion) {
    let machine = dual_ff_machine(&kohavi_0101());
    let words: Vec<Vec<bool>> = (0..16u32).map(|i| vec![i % 3 == 1]).collect();

    let mut group = c.benchmark_group("kohavi");
    group.bench_function("engine_seq_campaign", |b| {
        b.iter(|| SeqCampaignBuilder::new(&machine, &words).run().unwrap());
    });
    group.bench_function("scalar_seq_campaign", |b| {
        b.iter(|| {
            SeqCampaignBuilder::new(&machine, &words)
                .scalar()
                .run()
                .unwrap()
        });
    });
    group.finish();
}

/// Compiled vs graph simulation of the sequential Reynolds two-rail checker
/// (`checker_8`), stepped under every collapsed fault.
fn bench_checker8(c: &mut Criterion) {
    let checker = scal_checkers::two_rail::reynolds_checker(8);
    let faults = enumerate_faults(&checker);
    let n = checker.inputs().len();
    let drive: Vec<Vec<bool>> = (0..32u32)
        .map(|s| (0..n).map(|i| (s + i as u32) % 3 != 0).collect())
        .collect();

    let mut group = c.benchmark_group("checker8");
    group.bench_function("engine_compiled_sim", |b| {
        let compiled = CompiledCircuit::compile(&checker);
        b.iter(|| {
            let mut live = 0usize;
            for fault in &faults {
                let mut sim = CompiledSim::new(&compiled);
                sim.attach(&[fault.to_override()]);
                for ins in &drive {
                    live += usize::from(sim.step(ins)[0]);
                }
            }
            live
        });
    });
    group.bench_function("scalar_graph_sim", |b| {
        b.iter(|| {
            let mut live = 0usize;
            for fault in &faults {
                let mut sim = Sim::new(&checker);
                sim.attach(fault.to_override());
                for ins in &drive {
                    live += usize::from(sim.step(ins)[0]);
                }
            }
            live
        });
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench, bench_adder8, bench_kohavi, bench_checker8
}
criterion_main!(benches);
