//! Exhaustive fault-simulation throughput (the engine behind Figs. 3.6/3.7
//! and the verification of every SCAL network in the repo), including the
//! bit-parallel vs scalar ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scal_core::paper::{fig3_7, ripple_adder};
use scal_faults::{enumerate_faults, run_campaign};
use scal_netlist::Circuit;

fn scalar_campaign(circuit: &Circuit) -> usize {
    // Reference implementation: scalar evaluation per (fault, pair).
    let n = circuit.inputs().len();
    let faults = enumerate_faults(circuit);
    let mut detected = 0usize;
    for fault in &faults {
        let ov = [fault.to_override()];
        for m in 0..(1u32 << n) {
            let m2 = !m & ((1u32 << n) - 1);
            if m > m2 {
                continue;
            }
            let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let y: Vec<bool> = x.iter().map(|&b| !b).collect();
            let f1 = circuit.eval_with(&x, &ov);
            let f2 = circuit.eval_with(&y, &ov);
            if f1.iter().zip(&f2).any(|(a, b)| a == b) {
                detected += 1;
                break;
            }
        }
    }
    detected
}

fn bench(c: &mut Criterion) {
    let fig = fig3_7();
    let adder = ripple_adder(4);

    let mut group = c.benchmark_group("fault_sim");
    group.bench_function("fig3_7_bitparallel", |b| {
        b.iter_batched(
            || fig.circuit.clone(),
            |c| run_campaign(&c),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("fig3_7_scalar_reference", |b| {
        b.iter(|| scalar_campaign(&fig.circuit));
    });
    group.bench_function("adder4_bitparallel", |b| {
        b.iter(|| run_campaign(&adder));
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
