//! Sequential SCAL machine throughput: baseline vs dual flip-flop vs code
//! conversion on the Kohavi detector — the time face of Table 4.1.

use criterion::{criterion_group, criterion_main, Criterion};
use scal_netlist::Sim;
use scal_seq::dual_ff::AltSeqDriver;
use scal_seq::kohavi::{kohavi_circuit, reynolds_circuit, translator_circuit};

const WORDS: usize = 64;

fn word(i: usize) -> bool {
    (i * 7 + 3) % 5 < 2
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential");
    let base = kohavi_circuit();
    group.bench_function("kohavi_baseline", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&base);
            let mut acc = 0u32;
            for i in 0..WORDS {
                acc += u32::from(sim.step(&[word(i)])[0]);
            }
            acc
        });
    });
    for (name, machine) in [
        ("dual_ff", reynolds_circuit()),
        ("code_conversion", translator_circuit()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut drv = AltSeqDriver::new(&machine);
                let mut acc = 0u32;
                for i in 0..WORDS {
                    let (o1, _) = drv.apply(&[word(i)]);
                    acc += u32::from(o1[0]);
                }
                acc
            });
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench
}
criterion_main!(benches);
