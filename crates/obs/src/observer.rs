//! The observer trait and structural sinks.

use crate::event::CampaignEvent;
use std::sync::Mutex;

/// A sink for [`CampaignEvent`]s.
///
/// Implementations must be `Sync`: the engine calls [`CampaignObserver::on_event`]
/// from its worker threads (live [`CampaignEvent::Progress`] ticks) as well as
/// from the coordinating thread (everything else, in deterministic order).
///
/// Observers must never influence campaign results — they receive shared
/// references to immutable event data and the engine ignores them entirely
/// when making simulation decisions.
pub trait CampaignObserver: Sync {
    /// Receives one event.
    fn on_event(&self, event: &CampaignEvent);

    /// `false` lets emitters skip event construction entirely (the
    /// [`NullObserver`] fast path). Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards every event; [`CampaignObserver::enabled`] is `false`, so
/// emitters skip event buffering altogether.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {
    fn on_event(&self, _event: &CampaignEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Fans every event out to a list of observers, in order.
#[derive(Default)]
pub struct MultiObserver<'a> {
    sinks: Vec<&'a dyn CampaignObserver>,
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty fan-out.
    #[must_use]
    pub fn new() -> Self {
        MultiObserver { sinks: Vec::new() }
    }

    /// Adds a sink (builder style).
    #[must_use]
    pub fn with(mut self, sink: &'a dyn CampaignObserver) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink in place.
    pub fn push(&mut self, sink: &'a dyn CampaignObserver) {
        self.sinks.push(sink);
    }
}

impl CampaignObserver for MultiObserver<'_> {
    fn on_event(&self, event: &CampaignEvent) {
        for s in &self.sinks {
            s.on_event(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

/// Collects every event into memory — the test sink.
#[derive(Debug, Default)]
pub struct CollectObserver {
    events: Mutex<Vec<CampaignEvent>>,
}

impl CollectObserver {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        CollectObserver::default()
    }

    /// Snapshot of the events received so far.
    ///
    /// # Panics
    ///
    /// Panics if an observer callback panicked while holding the lock.
    #[must_use]
    pub fn events(&self) -> Vec<CampaignEvent> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Number of events received so far.
    ///
    /// # Panics
    ///
    /// Panics if an observer callback panicked while holding the lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("collector lock").len()
    }

    /// `true` iff no events were received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CampaignObserver for CollectObserver {
    fn on_event(&self, event: &CampaignEvent) {
        self.events
            .lock()
            .expect("collector lock")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
        NullObserver.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
    }

    #[test]
    fn multi_observer_fans_out_and_reports_enabled() {
        let a = CollectObserver::new();
        let b = CollectObserver::new();
        let multi = MultiObserver::new().with(&a).with(&b);
        assert!(multi.enabled());
        multi.on_event(&CampaignEvent::Progress { done: 1, total: 4 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!MultiObserver::new().with(&NullObserver).enabled());
    }

    #[test]
    fn collector_snapshots_in_order() {
        let c = CollectObserver::new();
        assert!(c.is_empty());
        for done in 0..3 {
            c.on_event(&CampaignEvent::Progress { done, total: 3 });
        }
        let evs = c.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[2], CampaignEvent::Progress { done: 2, total: 3 });
    }
}
