//! The JSON-lines trace sink.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Writes one JSON object per event to any [`io::Write`] target.
///
/// The writer is locked per event, so a single trace can be shared by the
/// engine's worker threads; event order within the file matches observer
/// call order. I/O errors are latched (first error wins) and reported by
/// [`JsonlTrace::take_error`] rather than panicking mid-campaign.
#[derive(Debug)]
pub struct JsonlTrace<W: Write + Send> {
    inner: Mutex<TraceState<W>>,
}

#[derive(Debug)]
struct TraceState<W> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlTrace<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlTrace::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlTrace<W> {
    /// Wraps a writer.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlTrace {
            inner: Mutex::new(TraceState {
                writer,
                lines: 0,
                error: None,
            }),
        }
    }

    /// Lines written so far.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.inner.lock().expect("trace lock").lines
    }

    /// Takes the first I/O error hit while writing, if any.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    pub fn take_error(&self) -> Option<io::Error> {
        self.inner.lock().expect("trace lock").error.take()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    #[must_use]
    pub fn into_inner(self) -> W {
        let mut state = self.inner.into_inner().expect("trace lock");
        let _ = state.writer.flush();
        state.writer
    }

    /// Flushes the underlying writer, reporting any latched or new error.
    ///
    /// # Errors
    ///
    /// Returns the first write error hit during the campaign, or a flush
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    pub fn flush(&self) -> io::Result<()> {
        let mut state = self.inner.lock().expect("trace lock");
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        state.writer.flush()
    }
}

impl<W: Write + Send> CampaignObserver for JsonlTrace<W> {
    fn on_event(&self, event: &CampaignEvent) {
        let mut state = self.inner.lock().expect("trace lock");
        if state.error.is_some() {
            return;
        }
        let line = event.to_json();
        match state
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| state.writer.write_all(b"\n"))
        {
            Ok(()) => state.lines += 1,
            Err(e) => state.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_jsonl;
    use crate::Phase;

    #[test]
    fn writes_one_valid_line_per_event() {
        let trace = JsonlTrace::new(Vec::new());
        trace.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        });
        trace.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
        assert_eq!(trace.lines(), 2);
        let bytes = trace.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(validate_jsonl(&text), Ok(2));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let trace = JsonlTrace::new(Broken);
        trace.on_event(&CampaignEvent::Progress { done: 0, total: 1 });
        trace.on_event(&CampaignEvent::Progress { done: 1, total: 1 });
        assert_eq!(trace.lines(), 0);
        assert!(trace.take_error().is_some());
        assert!(trace.take_error().is_none(), "first error wins, then clear");
    }
}
