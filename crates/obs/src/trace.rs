//! The JSON-lines trace sink.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Writes one JSON object per event to any [`io::Write`] target.
///
/// The writer is locked per event, so a single trace can be shared by the
/// engine's worker threads; event order within the file matches observer
/// call order. I/O errors are latched (first error wins) and reported by
/// [`JsonlTrace::take_error`] rather than panicking mid-campaign. Dropping a
/// trace flushes it, so buffered lines survive early returns and panics in
/// the surrounding campaign code.
#[derive(Debug)]
pub struct JsonlTrace<W: Write + Send> {
    inner: Mutex<TraceState<W>>,
}

#[derive(Debug)]
struct TraceState<W> {
    /// `None` only after [`JsonlTrace::into_inner`] reclaimed the writer.
    writer: Option<W>,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlTrace<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlTrace::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlTrace<W> {
    /// Wraps a writer.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlTrace {
            inner: Mutex::new(TraceState {
                writer: Some(writer),
                lines: 0,
                error: None,
            }),
        }
    }

    /// Lines written so far.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.inner.lock().expect("trace lock").lines
    }

    /// Takes the first I/O error hit while writing, if any.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    pub fn take_error(&self) -> Option<io::Error> {
        self.inner.lock().expect("trace lock").error.take()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    #[must_use]
    pub fn into_inner(self) -> W {
        let mut state = self.inner.lock().expect("trace lock");
        let mut writer = state.writer.take().expect("writer present");
        drop(state);
        let _ = writer.flush();
        writer
    }

    /// Flushes the underlying writer, reporting any latched or new error.
    ///
    /// # Errors
    ///
    /// Returns the first write error hit during the campaign, or a flush
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock was poisoned.
    pub fn flush(&self) -> io::Result<()> {
        let mut state = self.inner.lock().expect("trace lock");
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        match state.writer.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> CampaignObserver for JsonlTrace<W> {
    fn on_event(&self, event: &CampaignEvent) {
        let mut state = self.inner.lock().expect("trace lock");
        if state.error.is_some() {
            return;
        }
        let Some(writer) = state.writer.as_mut() else {
            return;
        };
        let line = event.to_json();
        match writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
        {
            Ok(()) => state.lines += 1,
            Err(e) => state.error = Some(e),
        }
    }
}

impl<W: Write + Send> Drop for JsonlTrace<W> {
    fn drop(&mut self) {
        // Best-effort: buffered lines must reach the file even when the
        // trace is dropped without an explicit flush (early return, panic
        // unwind, or simply going out of scope at the end of a run).
        if let Ok(state) = self.inner.get_mut() {
            if let Some(w) = state.writer.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_jsonl;
    use crate::Phase;
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn writes_one_valid_line_per_event() {
        let trace = JsonlTrace::new(Vec::new());
        trace.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        });
        trace.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
        assert_eq!(trace.lines(), 2);
        let bytes = trace.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(validate_jsonl(&text), Ok(2));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let trace = JsonlTrace::new(Broken);
        trace.on_event(&CampaignEvent::Progress { done: 0, total: 1 });
        trace.on_event(&CampaignEvent::Progress { done: 1, total: 1 });
        assert_eq!(trace.lines(), 0);
        assert!(trace.take_error().is_some());
        assert!(trace.take_error().is_none(), "first error wins, then clear");
    }

    /// A writer that buffers internally and only publishes on flush — the
    /// stand-in for a `BufWriter<File>` whose bytes are invisible until
    /// flushed.
    struct FlushGated {
        pending: Vec<u8>,
        published: Arc<StdMutex<Vec<u8>>>,
    }

    impl Write for FlushGated {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.published
                .lock()
                .expect("published lock")
                .extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let published = Arc::new(StdMutex::new(Vec::new()));
        {
            let trace = JsonlTrace::new(FlushGated {
                pending: Vec::new(),
                published: Arc::clone(&published),
            });
            trace.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
            assert!(
                published.lock().expect("lock").is_empty(),
                "nothing published before drop"
            );
        }
        let text = String::from_utf8(published.lock().expect("lock").clone()).expect("utf8");
        assert_eq!(validate_jsonl(&text), Ok(1), "drop flushed the line");
    }

    #[test]
    fn pathological_gate_names_stay_one_line() {
        // C0, DEL, C1 and U+2028 in a label must not break the one-event-
        // one-line invariant of the stream.
        let trace = JsonlTrace::new(Vec::new());
        trace.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: 1,
            inputs: 1,
            outputs: 1,
            threads: 1,
        });
        let evil = "nand\u{1}\u{7f}\u{9b}\u{2028}out";
        let mut o = crate::json::JsonObject::new();
        o.str("gate", evil);
        let line = o.finish();
        assert_eq!(line.lines().count(), 1);
        let text = String::from_utf8(trace.into_inner()).expect("utf8");
        assert_eq!(validate_jsonl(&text), Ok(1));
    }
}
