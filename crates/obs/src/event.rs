//! The typed event vocabulary campaigns emit.

use crate::json::JsonObject;

/// A campaign phase, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Circuit compilation into the flat schedule.
    Compile,
    /// Fault-free (golden) sweep and alternation check.
    Golden,
    /// Per-fault simulation across the worker pool.
    FaultSim,
    /// Deterministic aggregation of worker results in fault order.
    Merge,
}

impl Phase {
    /// Stable snake_case name used in traces and metric keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compile => "compile",
            Phase::Golden => "golden",
            Phase::FaultSim => "fault_sim",
            Phase::Merge => "merge",
        }
    }
}

/// One observable campaign occurrence.
///
/// Durations are carried as integer microseconds (`micros`) so events are
/// `Eq`-comparable and serialize without float noise. Fault indices refer to
/// the caller's fault-list order; `worker` attributes the event to the pool
/// thread that produced it (`0` for the inline single-threaded path).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignEvent {
    /// A campaign began.
    CampaignStart {
        /// Campaign flavour: `"pair"`, `"scalar"`, `"seq"`, `"cpu"`, …
        campaign: &'static str,
        /// Faults queued for simulation.
        faults: usize,
        /// Primary-input count of the circuit under test (0 if not
        /// applicable).
        inputs: usize,
        /// Primary-output count (0 if not applicable).
        outputs: usize,
        /// Worker threads the run will use (1 = inline).
        threads: usize,
    },
    /// Which faulty-sweep evaluation strategy the campaign uses. Emitted
    /// right after [`CampaignEvent::CampaignStart`] by engines that support
    /// mode selection; scalar reference backends do not emit it.
    EvalMode {
        /// Stable lowercase mode name: `"full"` or `"cone"`.
        mode: &'static str,
    },
    /// The lane geometry of the run's packed evaluation words: how the
    /// engine maps patterns and faults onto the `64 × width` bit lanes of
    /// one wide word. Emitted right after [`CampaignEvent::EvalMode`] by
    /// pair campaigns and after [`CampaignEvent::CampaignStart`] by packed
    /// sequential campaigns.
    LaneGeometry {
        /// Word width `W`: 64-lane sub-words per evaluation word (1, 4
        /// or 8).
        width: usize,
        /// Distinct faults packed into the bit lanes of one evaluation word
        /// (0 = one fault per sweep).
        fault_lanes: usize,
        /// Pattern lanes evaluated per sweep (0 = sequential replay; the
        /// lanes carry faults, not patterns).
        pattern_lanes: usize,
        /// Packing scheme: `"pattern"` (pattern-major pair sweep),
        /// `"fault"` (fault-packed pair sweep) or `"seq"` (fault-per-lane
        /// sequential replay).
        packing: &'static str,
    },
    /// A phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// A phase completed.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Wall time of the phase in microseconds.
        micros: u64,
    },
    /// A completed (possibly aggregated) sub-phase span — the engine's
    /// profiler vocabulary. Spans nest under a phase (or another span) by
    /// `parent` name: `levelize` and `pack` under `compile`, `eval_batch`
    /// under `fault_sim`. Aggregated spans carry how many times the span ran
    /// (`count`) and how many work items it processed (`items`: pairs for
    /// `eval_batch`, ops for compile spans).
    Span {
        /// Stable snake_case span name.
        name: &'static str,
        /// Name of the enclosing phase or span.
        parent: &'static str,
        /// Total wall time across all executions, in microseconds. For
        /// worker-parallel spans this is summed *worker* time, which can
        /// exceed the enclosing phase's wall clock.
        micros: u64,
        /// Number of executions aggregated into this span.
        count: u64,
        /// Work items processed (span-specific unit).
        items: u64,
    },
    /// Gate population of one level of the compiled schedule (level 0 =
    /// gates fed only by sources). Emitted once per level after compilation;
    /// multiplying by evaluated words gives per-level gate-evaluation
    /// counts.
    LevelGates {
        /// Level ordinal, from 0.
        level: usize,
        /// Gates scheduled at this level.
        gates: usize,
    },
    /// Summary of the compile-phase fault-collapsing pass: how many faults
    /// the campaign was given, how many structural-equivalence
    /// representatives actually simulate, and how many dominance edges were
    /// found between the collapsed classes (annotation only — dominance is
    /// never used to skip simulation). Emitted once after the compile-phase
    /// spans when collapsing is enabled.
    FaultCollapse {
        /// Original faults queued for the campaign.
        faults: usize,
        /// Equivalence-class representatives that will actually simulate.
        representatives: usize,
        /// Structural dominance edges between distinct collapsed classes.
        dominance_edges: usize,
        /// Wall time of the collapsing pass in microseconds.
        micros: u64,
    },
    /// Class-membership annotation for one fault in a collapsed class of
    /// size > 1, emitted during the merge replay between the fault's
    /// [`CampaignEvent::FaultStart`] and its [`CampaignEvent::FaultFinish`].
    /// The representative's verdict was simulated once and expanded over
    /// every member.
    FaultClass {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Fault-list index of the class representative (equals `fault` for
        /// the representative itself).
        representative: usize,
        /// Total members of the class present in the fault list.
        size: usize,
    },
    /// A fault's sweep began.
    FaultStart {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Worker thread that ran the sweep.
        worker: usize,
    },
    /// One 64-pair batch of a fault's sweep completed.
    BatchDone {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Worker thread that ran the batch.
        worker: usize,
        /// Batch ordinal within the fault's sweep, from 0.
        batch: usize,
        /// Alternating pairs evaluated in the batch.
        pairs: u64,
    },
    /// One fault-per-lane batch of a packed sequential campaign completed:
    /// up to 63 faults replayed the driven word sequence together in the
    /// lanes of one word (lane 0 golden). Emitted before the batch's
    /// per-fault events during the merge replay.
    LaneBatch {
        /// Batch ordinal within the campaign's fault list, from 0.
        batch: usize,
        /// Worker thread that ran the batch.
        worker: usize,
        /// Fault lanes occupied (the golden lane not included).
        lanes: usize,
        /// Driven words replayed before every lane retired (or the sequence
        /// ended).
        words: u64,
        /// Lanes classified (detected or violation) before the drive ended
        /// — retired lanes drop out of the batch's early-exit frontier.
        retired: usize,
    },
    /// A fault's sweep was cut short by fault dropping.
    FaultDropped {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Worker thread that ran the sweep.
        worker: usize,
        /// Batch ordinal at which the sweep stopped.
        batch: usize,
    },
    /// Cone-restricted evaluation statistics for one fault's sweep, emitted
    /// between the fault's `eval_batch` span and its
    /// [`CampaignEvent::FaultFinish`] when the engine runs in cone mode.
    ConeStats {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Worker thread that ran the sweep.
        worker: usize,
        /// Ops in the fault's transitive fanout cone (per sweep).
        cone_ops: u64,
        /// Cone ops actually evaluated across the whole sweep (frontier
        /// death can stop a batch before the cone is exhausted).
        ops_evaluated: u64,
        /// Op evaluations a full-schedule sweep would have run but the cone
        /// path skipped (`schedule_ops × words − ops_evaluated`).
        ops_skipped: u64,
        /// Shallowest schedule level at which the faulty frontier converged
        /// back to golden, across all batches (`None` if every batch ran the
        /// cone to completion).
        frontier_died_at_level: Option<u32>,
    },
    /// A fault's sweep completed (possibly dropped early).
    FaultFinish {
        /// Index into the campaign's fault list.
        fault: usize,
        /// Worker thread that ran the sweep.
        worker: usize,
        /// Pairs at which the fault was detected (non-code word).
        detected: usize,
        /// Pairs at which the fault slipped a wrong code word.
        violations: usize,
        /// Whether the fault changed any output at all.
        observable: bool,
        /// Whether fault dropping cut the sweep short.
        dropped: bool,
        /// Pairs evaluated for this fault.
        pairs: u64,
        /// Ordinal of the first detecting pair in sweep order (`None` if the
        /// fault was never detected). Campaigns sweep canonical pairs in
        /// ascending minterm order, so `first_detected + 1` is the
        /// time-to-detection in pairs; sequential and CPU campaigns report
        /// the first detecting word / workload index instead.
        first_detected: Option<u32>,
    },
    /// Live progress tick: `done` of `total` faults finished. Emitted from
    /// worker threads as faults complete; ordering across workers is not
    /// deterministic (counts are monotonic).
    Progress {
        /// Faults finished so far.
        done: usize,
        /// Faults queued in total.
        total: usize,
    },
    /// The campaign was cancelled; `completed` leading faults survive as the
    /// deterministic fault-ordered prefix.
    Cancelled {
        /// Length of the surviving fault-ordered prefix.
        completed: usize,
    },
    /// The campaign finished (normally or via cancellation).
    CampaignEnd {
        /// Faults with results (prefix length if cancelled).
        faults: usize,
        /// Faults whose sweep was dropped early.
        dropped: usize,
        /// Alternating pairs evaluated across all faults.
        pairs: u64,
        /// 64-lane words evaluated, golden sweeps included.
        words: u64,
        /// Total campaign wall time in microseconds.
        micros: u64,
        /// Whether the run was cancelled.
        cancelled: bool,
    },
}

impl CampaignEvent {
    /// Stable snake_case event name (the `"ev"` field of the JSON form).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CampaignEvent::CampaignStart { .. } => "campaign_start",
            CampaignEvent::EvalMode { .. } => "eval_mode",
            CampaignEvent::LaneGeometry { .. } => "lane_geometry",
            CampaignEvent::ConeStats { .. } => "cone_stats",
            CampaignEvent::PhaseStart { .. } => "phase_start",
            CampaignEvent::PhaseEnd { .. } => "phase_end",
            CampaignEvent::Span { .. } => "span",
            CampaignEvent::LevelGates { .. } => "level_gates",
            CampaignEvent::FaultCollapse { .. } => "fault_collapse",
            CampaignEvent::FaultClass { .. } => "fault_class",
            CampaignEvent::FaultStart { .. } => "fault_start",
            CampaignEvent::BatchDone { .. } => "batch_done",
            CampaignEvent::LaneBatch { .. } => "lane_batch",
            CampaignEvent::FaultDropped { .. } => "fault_dropped",
            CampaignEvent::FaultFinish { .. } => "fault_finish",
            CampaignEvent::Progress { .. } => "progress",
            CampaignEvent::Cancelled { .. } => "cancelled",
            CampaignEvent::CampaignEnd { .. } => "campaign_end",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("ev", self.name());
        match *self {
            CampaignEvent::CampaignStart {
                campaign,
                faults,
                inputs,
                outputs,
                threads,
            } => {
                o.str("campaign", campaign);
                o.num("faults", faults as u64);
                o.num("inputs", inputs as u64);
                o.num("outputs", outputs as u64);
                o.num("threads", threads as u64);
            }
            CampaignEvent::EvalMode { mode } => {
                o.str("mode", mode);
            }
            CampaignEvent::LaneGeometry {
                width,
                fault_lanes,
                pattern_lanes,
                packing,
            } => {
                o.num("width", width as u64);
                o.num("fault_lanes", fault_lanes as u64);
                o.num("pattern_lanes", pattern_lanes as u64);
                o.str("packing", packing);
            }
            CampaignEvent::ConeStats {
                fault,
                worker,
                cone_ops,
                ops_evaluated,
                ops_skipped,
                frontier_died_at_level,
            } => {
                o.num("fault", fault as u64);
                o.num("worker", worker as u64);
                o.num("cone_ops", cone_ops);
                o.num("ops_evaluated", ops_evaluated);
                o.num("ops_skipped", ops_skipped);
                if let Some(l) = frontier_died_at_level {
                    o.num("frontier_died_at_level", u64::from(l));
                }
            }
            CampaignEvent::PhaseStart { phase } => {
                o.str("phase", phase.name());
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                o.str("phase", phase.name());
                o.num("micros", micros);
            }
            CampaignEvent::Span {
                name,
                parent,
                micros,
                count,
                items,
            } => {
                o.str("name", name);
                o.str("parent", parent);
                o.num("micros", micros);
                o.num("count", count);
                o.num("items", items);
            }
            CampaignEvent::LevelGates { level, gates } => {
                o.num("level", level as u64);
                o.num("gates", gates as u64);
            }
            CampaignEvent::FaultCollapse {
                faults,
                representatives,
                dominance_edges,
                micros,
            } => {
                o.num("faults", faults as u64);
                o.num("representatives", representatives as u64);
                o.num("dominance_edges", dominance_edges as u64);
                o.num("micros", micros);
            }
            CampaignEvent::FaultClass {
                fault,
                representative,
                size,
            } => {
                o.num("fault", fault as u64);
                o.num("representative", representative as u64);
                o.num("size", size as u64);
            }
            CampaignEvent::FaultStart { fault, worker } => {
                o.num("fault", fault as u64);
                o.num("worker", worker as u64);
            }
            CampaignEvent::BatchDone {
                fault,
                worker,
                batch,
                pairs,
            } => {
                o.num("fault", fault as u64);
                o.num("worker", worker as u64);
                o.num("batch", batch as u64);
                o.num("pairs", pairs);
            }
            CampaignEvent::LaneBatch {
                batch,
                worker,
                lanes,
                words,
                retired,
            } => {
                o.num("batch", batch as u64);
                o.num("worker", worker as u64);
                o.num("lanes", lanes as u64);
                o.num("words", words);
                o.num("retired", retired as u64);
            }
            CampaignEvent::FaultDropped {
                fault,
                worker,
                batch,
            } => {
                o.num("fault", fault as u64);
                o.num("worker", worker as u64);
                o.num("batch", batch as u64);
            }
            CampaignEvent::FaultFinish {
                fault,
                worker,
                detected,
                violations,
                observable,
                dropped,
                pairs,
                first_detected,
            } => {
                o.num("fault", fault as u64);
                o.num("worker", worker as u64);
                o.num("detected", detected as u64);
                o.num("violations", violations as u64);
                o.bool("observable", observable);
                o.bool("dropped", dropped);
                o.num("pairs", pairs);
                if let Some(p) = first_detected {
                    o.num("first_detected", u64::from(p));
                }
            }
            CampaignEvent::Progress { done, total } => {
                o.num("done", done as u64);
                o.num("total", total as u64);
            }
            CampaignEvent::Cancelled { completed } => {
                o.num("completed", completed as u64);
            }
            CampaignEvent::CampaignEnd {
                faults,
                dropped,
                pairs,
                words,
                micros,
                cancelled,
            } => {
                o.num("faults", faults as u64);
                o.num("dropped", dropped as u64);
                o.num("pairs", pairs);
                o.num("words", words);
                o.num("micros", micros);
                o.bool("cancelled", cancelled);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Compile.name(), "compile");
        assert_eq!(Phase::FaultSim.name(), "fault_sim");
    }

    #[test]
    fn events_serialize_to_valid_json() {
        let events = [
            CampaignEvent::CampaignStart {
                campaign: "pair",
                faults: 12,
                inputs: 3,
                outputs: 1,
                threads: 1,
            },
            CampaignEvent::PhaseEnd {
                phase: Phase::Golden,
                micros: 42,
            },
            CampaignEvent::FaultFinish {
                fault: 3,
                worker: 0,
                detected: 4,
                violations: 0,
                observable: true,
                dropped: false,
                pairs: 4,
                first_detected: Some(1),
            },
            CampaignEvent::Span {
                name: "levelize",
                parent: "compile",
                micros: 7,
                count: 1,
                items: 12,
            },
            CampaignEvent::LevelGates { level: 2, gates: 5 },
            CampaignEvent::LaneBatch {
                batch: 1,
                worker: 0,
                lanes: 63,
                words: 16,
                retired: 40,
            },
            CampaignEvent::Cancelled { completed: 2 },
            CampaignEvent::EvalMode { mode: "cone" },
            CampaignEvent::FaultCollapse {
                faults: 14,
                representatives: 8,
                dominance_edges: 3,
                micros: 1,
            },
            CampaignEvent::FaultClass {
                fault: 5,
                representative: 2,
                size: 3,
            },
            CampaignEvent::LaneGeometry {
                width: 8,
                fault_lanes: 63,
                pattern_lanes: 8,
                packing: "fault",
            },
            CampaignEvent::ConeStats {
                fault: 3,
                worker: 0,
                cone_ops: 9,
                ops_evaluated: 40,
                ops_skipped: 88,
                frontier_died_at_level: Some(2),
            },
        ];
        for e in &events {
            let j = e.to_json();
            crate::json::validate_jsonl(&j).expect("valid JSON");
            assert!(j.contains(&format!("\"ev\":\"{}\"", e.name())));
        }
    }

    #[test]
    fn undetected_faults_omit_first_detected() {
        let e = CampaignEvent::FaultFinish {
            fault: 0,
            worker: 0,
            detected: 0,
            violations: 2,
            observable: true,
            dropped: false,
            pairs: 4,
            first_detected: None,
        };
        let j = e.to_json();
        assert!(!j.contains("first_detected"));
        let d = CampaignEvent::FaultFinish {
            fault: 0,
            worker: 0,
            detected: 1,
            violations: 0,
            observable: true,
            dropped: false,
            pairs: 4,
            first_detected: Some(3),
        };
        assert!(d.to_json().contains("\"first_detected\":3"));
    }

    #[test]
    fn undying_frontiers_omit_death_level() {
        let e = CampaignEvent::ConeStats {
            fault: 0,
            worker: 0,
            cone_ops: 4,
            ops_evaluated: 8,
            ops_skipped: 0,
            frontier_died_at_level: None,
        };
        assert!(!e.to_json().contains("frontier_died_at_level"));
    }
}
