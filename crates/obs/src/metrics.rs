//! A tiny metrics registry: named (and optionally labeled) counters,
//! gauges, and log-linear wall-time histograms with quantile estimates,
//! all lock-free on the hot path, plus Prometheus text exposition.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, workers busy, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (relative bucket error ≤ 1/4).
const SUB: usize = 4;
/// log₂ of [`SUB`].
const SUB_BITS: u32 = 2;
/// Highest octave tracked exactly: values below `2^(MAX_OCTAVE+1)` µs
/// land in a real bucket, larger ones clamp into the overflow bucket.
/// `2^40` µs ≈ 12.7 days — far beyond any span this workspace times.
const MAX_OCTAVE: usize = 39;
/// Total bucket count: `SUB` linear buckets for values `0..SUB`, then
/// `SUB` sub-buckets per octave `SUB_BITS..=MAX_OCTAVE`.
const BUCKETS: usize = SUB + (MAX_OCTAVE - SUB_BITS as usize + 1) * SUB;

/// Bucket index for a microsecond value under the log-linear layout.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = (63 - v.leading_zeros()) as usize;
    let sub = ((v >> (octave as u32 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (SUB + (octave - SUB_BITS as usize) * SUB + sub).min(BUCKETS - 1)
}

/// Exclusive upper bound (µs) of bucket `idx`.
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64 + 1;
    }
    let octave = (idx - SUB) / SUB + SUB_BITS as usize;
    let sub = ((idx - SUB) % SUB) as u64;
    let width = 1u64 << (octave as u32 - SUB_BITS);
    (1u64 << octave) + (sub + 1) * width
}

/// Inclusive lower bound (µs) of bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        bucket_bound(idx - 1)
    }
}

/// A log-linear bucketed histogram of microsecond durations.
///
/// Each power-of-two octave is split into four sub-buckets, so any
/// quantile estimate is within 25% of the true sample value; values
/// `0..4` µs get exact unit buckets. Recording is a few relaxed
/// atomics — safe to call from every worker thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample in microseconds (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound (exclusive, in microseconds) of the highest non-empty
    /// bucket — a cheap worst-case estimate.
    #[must_use]
    pub fn max_bucket_bound(&self) -> u64 {
        for b in (0..BUCKETS).rev() {
            if self.buckets[b].load(Ordering::Relaxed) != 0 {
                return bucket_bound(b);
            }
        }
        0
    }

    /// Estimated `q`-quantile in microseconds (see
    /// [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the bucket contents, suitable for merging
    /// with other snapshots and for quantile queries.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s buckets.
///
/// Snapshots from different histograms (e.g. one per worker) merge into
/// a single distribution; bucket layouts are identical by construction.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in microseconds.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample in microseconds (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimated `q`-quantile in microseconds.
    ///
    /// `q` is clamped to `[0, 1]`; an empty snapshot reports 0. The
    /// estimate interpolates linearly inside the target bucket, so it is
    /// within one sub-bucket width (≤ 25% relative) of the true sample.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile falls on.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lower = bucket_lower(idx) as f64;
                let upper = bucket_bound(idx) as f64;
                let into = (target - cum) as f64 / n as f64;
                return (lower + (upper - lower) * into).round() as u64;
            }
            cum += n;
        }
        self.max_bound()
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    fn max_bound(&self) -> u64 {
        for b in (0..BUCKETS).rev() {
            if self.buckets[b] != 0 {
                return bucket_bound(b);
            }
        }
        0
    }

    /// Non-empty `(upper_bound_micros, cumulative_count)` pairs in
    /// ascending bound order — the Prometheus `le` series.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                cum += n;
                out.push((bucket_bound(idx), cum));
            }
        }
        out
    }
}

/// A series key: metric name plus sorted `(label, value)` pairs.
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut pairs: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    pairs.sort();
    (name.to_owned(), pairs)
}

/// A registry of named [`Counter`]s, [`Gauge`]s, and [`Histogram`]s,
/// each optionally carrying `(key, value)` labels.
///
/// Lookup takes a lock; the returned handles are `Arc`s whose updates are
/// plain atomics, so emitters resolve a handle once and update it freely.
/// `Metrics` is itself a [`CampaignObserver`]: attached to a campaign it
/// accumulates the standard counters (`campaign.faults`, `campaign.pairs`,
/// `campaign.dropped`, `campaign.cancelled`) and per-phase wall-time
/// histograms (`phase.compile_micros`, `phase.fault_sim_micros`, …).
///
/// [`Metrics::render_prometheus`] serializes the whole registry in
/// Prometheus text exposition format v0.0.4.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The unlabeled counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock");
        map.entry(series_key(name, labels)).or_default().clone()
    }

    /// The unlabeled gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics lock");
        map.entry(series_key(name, labels)).or_default().clone()
    }

    /// The unlabeled histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        map.entry(series_key(name, labels)).or_default().clone()
    }

    /// Attaches a `# HELP` line to metric family `name` for
    /// [`Metrics::render_prometheus`].
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .expect("metrics lock")
            .insert(name.to_owned(), help.to_owned());
    }

    /// Renders every metric as sorted `name value` lines (counters and
    /// gauges) and `name count=N sum=S mean=M` lines (histograms), with
    /// `{k=v,…}` label suffixes on labeled series.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn render(&self) -> String {
        let plain = |key: &SeriesKey| {
            let (name, labels) = key;
            if labels.is_empty() {
                name.clone()
            } else {
                let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{name}{{{}}}", body.join(","))
            }
        };
        let mut s = String::new();
        for (key, c) in self.counters.lock().expect("metrics lock").iter() {
            let _ = writeln!(s, "{} {}", plain(key), c.get());
        }
        for (key, g) in self.gauges.lock().expect("metrics lock").iter() {
            let _ = writeln!(s, "{} {}", plain(key), g.get());
        }
        for (key, h) in self.histograms.lock().expect("metrics lock").iter() {
            let _ = writeln!(
                s,
                "{} count={} sum={}us mean={}us max<{}us",
                plain(key),
                h.count(),
                h.sum(),
                h.mean(),
                h.max_bucket_bound()
            );
        }
        s
    }

    /// Renders the registry in Prometheus text exposition format v0.0.4.
    ///
    /// Metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
    /// underscores), label values are escaped per the spec, and each
    /// histogram expands into `_bucket{le=…}` / `_sum` / `_count` series
    /// with cumulative counts over its non-empty buckets.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let help = self.help.lock().expect("metrics lock").clone();
        let mut s = String::new();
        let mut seen_type: Vec<String> = Vec::new();
        let mut header = |s: &mut String, name: &str, kind: &str| {
            if seen_type.iter().any(|n| n == name) {
                return;
            }
            seen_type.push(name.to_owned());
            if let Some(h) = help.get(name).or_else(|| {
                // Help may be registered under the unsanitized name.
                help.iter()
                    .find(|(k, _)| sanitize_name(k) == name)
                    .map(|(_, v)| v)
            }) {
                let _ = writeln!(s, "# HELP {name} {}", escape_help(h));
            }
            let _ = writeln!(s, "# TYPE {name} {kind}");
        };

        for (key, c) in self.counters.lock().expect("metrics lock").iter() {
            let name = sanitize_name(&key.0);
            header(&mut s, &name, "counter");
            let _ = writeln!(s, "{}{} {}", name, render_labels(&key.1, &[]), c.get());
        }
        for (key, g) in self.gauges.lock().expect("metrics lock").iter() {
            let name = sanitize_name(&key.0);
            header(&mut s, &name, "gauge");
            let _ = writeln!(s, "{}{} {}", name, render_labels(&key.1, &[]), g.get());
        }
        for (key, h) in self.histograms.lock().expect("metrics lock").iter() {
            let name = sanitize_name(&key.0);
            header(&mut s, &name, "histogram");
            let snap = h.snapshot();
            for (bound, cum) in snap.cumulative_buckets() {
                let le = (("le".to_owned()), bound.to_string());
                let _ = writeln!(
                    s,
                    "{name}_bucket{} {cum}",
                    render_labels(&key.1, std::slice::from_ref(&le))
                );
            }
            let inf = ("le".to_owned(), "+Inf".to_owned());
            let _ = writeln!(
                s,
                "{name}_bucket{} {}",
                render_labels(&key.1, std::slice::from_ref(&inf)),
                snap.count()
            );
            let _ = writeln!(s, "{name}_sum{} {}", render_labels(&key.1, &[]), snap.sum());
            let _ = writeln!(
                s,
                "{name}_count{} {}",
                render_labels(&key.1, &[]),
                snap.count()
            );
        }
        s
    }
}

/// Maps a registry name to a legal Prometheus metric name.
fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition spec (`\` `"` and newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` text (`\` and newline).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",…}` from base labels plus extras (empty string when
/// there are none).
fn render_labels(labels: &[(String, String)], extra: &[(String, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .chain(extra.iter())
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl CampaignObserver for Metrics {
    fn on_event(&self, event: &CampaignEvent) {
        match *event {
            CampaignEvent::CampaignStart { .. } => {
                self.counter("campaign.runs").inc();
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                self.histogram(&format!("phase.{}_micros", phase.name()))
                    .record(micros);
            }
            CampaignEvent::FaultFinish { dropped, pairs, .. } => {
                self.counter("campaign.faults").inc();
                self.counter("campaign.pairs").add(pairs);
                if dropped {
                    self.counter("campaign.dropped").inc();
                }
            }
            CampaignEvent::Cancelled { .. } => {
                self.counter("campaign.cancelled").inc();
            }
            CampaignEvent::CampaignEnd { micros, .. } => {
                self.histogram("campaign.total_micros").record(micros);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        let c = m.counter("x");
        c.inc();
        m.counter("x").add(4);
        assert_eq!(c.get(), 5);
        assert!(m.render().contains("x 5"));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let m = Metrics::new();
        m.counter_with("jobs", &[("state", "done")]).add(3);
        m.counter_with("jobs", &[("state", "failed")]).inc();
        assert_eq!(m.counter_with("jobs", &[("state", "done")]).get(), 3);
        assert_eq!(m.counter_with("jobs", &[("state", "failed")]).get(), 1);
        assert_eq!(m.counter_with("jobs", &[]).get(), 0);
        let text = m.render();
        assert!(text.contains("jobs{state=done} 3"), "{text}");
    }

    #[test]
    fn label_order_does_not_matter() {
        let m = Metrics::new();
        m.counter_with("c", &[("a", "1"), ("b", "2")]).inc();
        m.counter_with("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(m.counter_with("c", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    fn gauges_move_both_ways() {
        let m = Metrics::new();
        let g = m.gauge("depth");
        g.set(5);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 2);
        m.gauge_with("depth", &[("priority", "9")]).inc();
        assert_eq!(m.gauge_with("depth", &[("priority", "9")]).get(), 1);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(0);
        h.record(7);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.mean(), 335);
        assert_eq!(h.max_bucket_bound(), 1024);
    }

    #[test]
    fn bucket_layout_is_log_linear_and_total() {
        // Every value maps into a bucket whose [lower, upper) range
        // contains it, and bounds are strictly increasing.
        for v in (0..4096u64).chain([1 << 20, (1 << 30) + 17, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(v >= bucket_lower(idx) || idx == BUCKETS - 1, "{v}");
            assert!(v < bucket_bound(idx) || idx == BUCKETS - 1, "{v}");
        }
        for idx in 1..BUCKETS {
            assert!(bucket_bound(idx) > bucket_bound(idx - 1));
            assert_eq!(bucket_lower(idx), bucket_bound(idx - 1));
        }
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().quantile(0.99), 0);
    }

    #[test]
    fn quantile_single_bucket_interpolates_within_bounds() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(100);
        }
        // 100 µs lands in [96, 112); every quantile must stay inside.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!((96..=112).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn quantile_orders_distinct_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((10..=12).contains(&p50), "p50={p50}");
        assert!((10_000..=12_500).contains(&p99), "p99={p99}");
        assert!(h.quantile(0.0) <= p50 && p50 <= p99);
    }

    #[test]
    fn snapshots_merge_into_combined_distribution() {
        let a = Histogram::default();
        let b = Histogram::default();
        for _ in 0..50 {
            a.record(8);
        }
        for _ in 0..50 {
            b.record(2048);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.sum(), 50 * 8 + 50 * 2048);
        let p25 = merged.quantile(0.25);
        let p90 = merged.quantile(0.9);
        assert!(p25 <= 10, "p25={p25}");
        assert!((2048..=2560).contains(&p90), "p90={p90}");
        // Merging an empty snapshot is the identity.
        let before = merged.quantile(0.5);
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.quantile(0.5), before);
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let m = Metrics::new();
        m.describe("campaign.runs", "Campaigns started");
        m.counter("campaign.runs").add(2);
        m.gauge_with("queue_depth", &[("priority", "3")]).set(7);
        let h = m.histogram("queue_wait_micros");
        h.record(5);
        h.record(5);
        h.record(900);
        let text = m.render_prometheus();
        assert!(text.contains("# HELP campaign_runs Campaigns started"));
        assert!(text.contains("# TYPE campaign_runs counter"));
        assert!(text.contains("campaign_runs 2"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth{priority=\"3\"} 7"));
        assert!(text.contains("# TYPE queue_wait_micros histogram"));
        assert!(text.contains("queue_wait_micros_bucket{le=\"6\"} 2"));
        assert!(text.contains("queue_wait_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("queue_wait_micros_sum 910"));
        assert!(text.contains("queue_wait_micros_count 3"));
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE campaign_runs").count(), 1);
    }

    #[test]
    fn prometheus_escapes_label_values_and_names() {
        let m = Metrics::new();
        m.counter_with("odd.name", &[("path", "a\\b\"c\nd")]).inc();
        let text = m.render_prometheus();
        assert!(
            text.contains("odd_name{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn observer_records_standard_metrics() {
        let m = Metrics::new();
        m.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: 2,
            inputs: 3,
            outputs: 1,
            threads: 1,
        });
        m.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Compile,
            micros: 12,
        });
        m.on_event(&CampaignEvent::FaultFinish {
            fault: 0,
            worker: 0,
            detected: 1,
            violations: 0,
            observable: true,
            dropped: true,
            pairs: 64,
            first_detected: Some(0),
        });
        assert_eq!(m.counter("campaign.runs").get(), 1);
        assert_eq!(m.counter("campaign.pairs").get(), 64);
        assert_eq!(m.counter("campaign.dropped").get(), 1);
        assert_eq!(m.histogram("phase.compile_micros").count(), 1);
    }
}
