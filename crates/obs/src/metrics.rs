//! A tiny metrics registry: named counters and log-scale wall-time
//! histograms, all lock-free on the hot path.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also catches 0).
const BUCKETS: usize = 40;

/// A log₂-bucketed histogram of microsecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration in microseconds.
    pub fn record(&self, micros: u64) {
        let b = (63 - u64::leading_zeros(micros.max(1)) as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample in microseconds (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound (exclusive, in microseconds) of the highest non-empty
    /// bucket — a cheap worst-case estimate.
    #[must_use]
    pub fn max_bucket_bound(&self) -> u64 {
        for b in (0..BUCKETS).rev() {
            if self.buckets[b].load(Ordering::Relaxed) != 0 {
                return 1u64 << (b + 1);
            }
        }
        0
    }
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Lookup takes a lock; the returned handles are `Arc`s whose updates are
/// plain atomics, so emitters resolve a handle once and update it freely.
/// `Metrics` is itself a [`CampaignObserver`]: attached to a campaign it
/// accumulates the standard counters (`campaign.faults`, `campaign.pairs`,
/// `campaign.dropped`, `campaign.cancelled`) and per-phase wall-time
/// histograms (`phase.compile_micros`, `phase.fault_sim_micros`, …).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics lock");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Renders every metric as sorted `name value` lines (counters), and
    /// `name count=N sum=S mean=M` lines (histograms).
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            let _ = writeln!(s, "{name} {}", c.get());
        }
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            let _ = writeln!(
                s,
                "{name} count={} sum={}us mean={}us max<{}us",
                h.count(),
                h.sum(),
                h.mean(),
                h.max_bucket_bound()
            );
        }
        s
    }
}

impl CampaignObserver for Metrics {
    fn on_event(&self, event: &CampaignEvent) {
        match *event {
            CampaignEvent::CampaignStart { .. } => {
                self.counter("campaign.runs").inc();
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                self.histogram(&format!("phase.{}_micros", phase.name()))
                    .record(micros);
            }
            CampaignEvent::FaultFinish { dropped, pairs, .. } => {
                self.counter("campaign.faults").inc();
                self.counter("campaign.pairs").add(pairs);
                if dropped {
                    self.counter("campaign.dropped").inc();
                }
            }
            CampaignEvent::Cancelled { .. } => {
                self.counter("campaign.cancelled").inc();
            }
            CampaignEvent::CampaignEnd { micros, .. } => {
                self.histogram("campaign.total_micros").record(micros);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        let c = m.counter("x");
        c.inc();
        m.counter("x").add(4);
        assert_eq!(c.get(), 5);
        assert!(m.render().contains("x 5"));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(0);
        h.record(7);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.mean(), 335);
        assert_eq!(h.max_bucket_bound(), 1024);
    }

    #[test]
    fn observer_records_standard_metrics() {
        let m = Metrics::new();
        m.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: 2,
            inputs: 3,
            outputs: 1,
            threads: 1,
        });
        m.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Compile,
            micros: 12,
        });
        m.on_event(&CampaignEvent::FaultFinish {
            fault: 0,
            worker: 0,
            detected: 1,
            violations: 0,
            observable: true,
            dropped: true,
            pairs: 64,
            first_detected: Some(0),
        });
        assert_eq!(m.counter("campaign.runs").get(), 1);
        assert_eq!(m.counter("campaign.pairs").get(), 64);
        assert_eq!(m.counter("campaign.dropped").get(), 1);
        assert_eq!(m.histogram("phase.compile_micros").count(), 1);
    }
}
