//! The span-based phase profiler.
//!
//! A [`Profiler`] listens to [`CampaignEvent::PhaseEnd`],
//! [`CampaignEvent::Span`] and [`CampaignEvent::LevelGates`] events and
//! aggregates them into a [`Profile`]: a small tree of phase wall times with
//! engine sub-phase spans (levelize/pack under compile, eval-batch under
//! fault-sim) nested beneath, plus the per-level gate population of the
//! compiled schedule. The profile answers the ROADMAP's "where does engine
//! time go" question: wall time and share per phase, pair throughput over
//! the eval phase alone, and estimated gate-evaluations from the level
//! populations.

use crate::event::CampaignEvent;
use crate::json::JsonObject;
use crate::observer::CampaignObserver;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Wall time of one campaign phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (`"compile"`, `"golden"`, `"fault_sim"`, `"merge"`).
    pub name: String,
    /// Wall time in microseconds.
    pub micros: u64,
}

/// An aggregated engine sub-phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTiming {
    /// Span name (`"levelize"`, `"pack"`, `"eval_batch"`, …).
    pub name: String,
    /// Enclosing phase or span name.
    pub parent: String,
    /// Summed time across executions, in microseconds. For worker-parallel
    /// spans this is summed *worker* time and can exceed the parent phase's
    /// wall clock.
    pub micros: u64,
    /// Executions aggregated.
    pub count: u64,
    /// Work items processed (span-specific unit).
    pub items: u64,
}

/// The aggregated timing picture of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Campaign flavour.
    pub campaign: String,
    /// Phase wall times, in emission order.
    pub phases: Vec<PhaseTiming>,
    /// Aggregated spans (same name+parent summed), in first-seen order.
    pub spans: Vec<SpanTiming>,
    /// Gates per schedule level (level 0 first); empty if the campaign's
    /// backend does not levelize.
    pub levels: Vec<usize>,
    /// Alternating pairs evaluated across all faults.
    pub pairs: u64,
    /// 64-lane words evaluated, golden sweeps included.
    pub words: u64,
    /// Total campaign wall time in microseconds.
    pub micros: u64,
    /// Faulty-sweep evaluation strategy (`"full"` / `"cone"`), or empty if
    /// the backend never announced one (scalar oracles).
    pub eval_mode: String,
    /// Faults that reported cone statistics.
    pub cone_faults: u64,
    /// Cone ops actually evaluated, summed across those faults.
    pub cone_ops_evaluated: u64,
    /// Op evaluations the cone path skipped relative to full-schedule
    /// sweeps, summed across those faults — where a cone-mode speedup comes
    /// from.
    pub cone_ops_skipped: u64,
    /// Fault-per-lane batches a packed sequential campaign ran.
    pub lane_batches: u64,
    /// Fault lanes packed across those batches (63 faults share one word's
    /// worth of sweeps per batch — where a packed-mode speedup comes from).
    pub lanes_packed: u64,
    /// Lanes classified before their batch's drive ended (retired lanes
    /// drop out of the batch's early-exit frontier).
    pub lanes_retired: u64,
    /// Driven words replayed, summed across batches.
    pub lane_words: u64,
    /// Wide-word width `W` (64-lane sub-words per evaluation word), or 0 if
    /// the backend never announced its lane geometry.
    pub word_width: u64,
    /// Distinct faults packed per evaluation word (0 = one fault per sweep).
    pub fault_lanes: u64,
    /// Pattern lanes evaluated per sweep (0 = sequential replay).
    pub pattern_lanes: u64,
    /// Lane-packing scheme (`"pattern"` / `"fault"` / `"seq"` / `"scalar"`),
    /// or empty if never announced.
    pub packing: String,
    /// Original faults the campaign was given, as reported by the
    /// fault-collapsing pass (0 when collapsing was off or never announced).
    pub collapse_faults: u64,
    /// Structural-equivalence representatives actually simulated (0 when
    /// collapsing was off).
    pub collapse_representatives: u64,
    /// Structural dominance edges found between collapsed classes
    /// (annotation only — never used to skip simulation).
    pub collapse_dominance_edges: u64,
}

impl Profile {
    /// Wall time of the named phase, if it ran.
    #[must_use]
    pub fn phase_micros(&self, name: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.micros)
    }

    /// Wall time of the evaluation phase (`fault_sim`) — the denominator
    /// for apples-to-apples throughput comparisons that exclude compile and
    /// merge overhead.
    #[must_use]
    pub fn eval_micros(&self) -> Option<u64> {
        self.phase_micros("fault_sim")
    }

    /// Pairs per second over the evaluation phase alone (`None` if the
    /// phase is missing or took zero measurable time).
    #[must_use]
    pub fn pairs_per_sec(&self) -> Option<f64> {
        match self.eval_micros() {
            Some(us) if us > 0 => Some(self.pairs as f64 * 1e6 / us as f64),
            _ => None,
        }
    }

    /// Estimated gate evaluations: schedule gate count × words evaluated.
    #[must_use]
    pub fn gate_evals(&self) -> u64 {
        self.levels.iter().map(|&g| g as u64).sum::<u64>() * self.words
    }

    /// Ratio of original faults to simulated representatives (`None` when
    /// fault collapsing was off or never announced). 1.0 means no fault
    /// collapsed; 2.0 means half the fault list simulated.
    #[must_use]
    pub fn collapse_ratio(&self) -> Option<f64> {
        if self.collapse_representatives > 0 {
            Some(self.collapse_faults as f64 / self.collapse_representatives as f64)
        } else {
            None
        }
    }

    /// Fraction of full-schedule op evaluations the cone path skipped
    /// (`None` when no cone statistics were reported).
    #[must_use]
    pub fn ops_skipped_fraction(&self) -> Option<f64> {
        let total = self.cone_ops_evaluated + self.cone_ops_skipped;
        if self.cone_faults > 0 && total > 0 {
            Some(self.cone_ops_skipped as f64 / total as f64)
        } else {
            None
        }
    }

    /// Renders the profile tree: phases with share of wall time, spans
    /// nested under their parent, then the level histogram.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let throughput = match self.pairs_per_sec() {
            Some(r) => format!(", {} pairs/s over eval", fmt_rate(r)),
            None => String::new(),
        };
        let mode = if self.eval_mode.is_empty() {
            String::new()
        } else {
            format!(", {} eval", self.eval_mode)
        };
        let _ = writeln!(
            out,
            "profile [{}]: {} us wall, {} pairs, {} words{mode}{throughput}",
            self.campaign, self.micros, self.pairs, self.words
        );
        if self.word_width > 0 {
            let _ = writeln!(
                out,
                "  word: W={} ({} packing, {} fault lane(s), {} pattern lane(s) per sweep)",
                self.word_width, self.packing, self.fault_lanes, self.pattern_lanes
            );
        }
        if let Some(f) = self.ops_skipped_fraction() {
            let _ = writeln!(
                out,
                "  cone: {} fault(s), {} op-evals run, {} skipped ({:.1}% of full schedule)",
                self.cone_faults,
                self.cone_ops_evaluated,
                self.cone_ops_skipped,
                100.0 * f
            );
        }
        if self.lane_batches > 0 {
            let _ = writeln!(
                out,
                "  lanes: {} batch(es), {} fault lane(s) packed, {} retired early, {} driven word(s)",
                self.lane_batches, self.lanes_packed, self.lanes_retired, self.lane_words
            );
        }
        if let Some(r) = self.collapse_ratio() {
            let _ = writeln!(
                out,
                "  collapse: {} fault(s) -> {} representative(s) ({r:.2}x), {} dominance edge(s)",
                self.collapse_faults, self.collapse_representatives, self.collapse_dominance_edges
            );
        }
        for p in &self.phases {
            let share = if self.micros > 0 {
                format!(" ({:.1}%)", 100.0 * p.micros as f64 / self.micros as f64)
            } else {
                String::new()
            };
            let _ = writeln!(out, "  {}: {} us{share}", p.name, p.micros);
            self.render_spans(&mut out, &p.name, 2);
        }
        if !self.levels.is_empty() {
            let gates: usize = self.levels.iter().sum();
            let _ = writeln!(
                out,
                "  schedule: {} level(s), {} gate(s), ~{} gate-evals",
                self.levels.len(),
                gates,
                self.gate_evals()
            );
            let _ = writeln!(
                out,
                "    gates/level: {}",
                self.levels
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        out
    }

    fn render_spans(&self, out: &mut String, parent: &str, depth: usize) {
        for s in self.spans.iter().filter(|s| s.parent == parent) {
            let _ = writeln!(
                out,
                "{}{}: {} us ({} run(s), {} item(s))",
                "  ".repeat(depth),
                s.name,
                s.micros,
                s.count,
                s.items
            );
            self.render_spans(out, &s.name, depth + 1);
        }
    }

    /// Serializes the profile as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("campaign", &self.campaign);
        o.num("micros", self.micros);
        o.num("pairs", self.pairs);
        o.num("words", self.words);
        if !self.eval_mode.is_empty() {
            o.str("eval_mode", &self.eval_mode);
        }
        if self.word_width > 0 {
            o.num("word_width", self.word_width);
            o.num("fault_lanes", self.fault_lanes);
            o.num("pattern_lanes", self.pattern_lanes);
            o.str("packing", &self.packing);
        }
        if self.cone_faults > 0 {
            o.num("cone_faults", self.cone_faults);
            o.num("cone_ops_evaluated", self.cone_ops_evaluated);
            o.num("cone_ops_skipped", self.cone_ops_skipped);
        }
        if let Some(f) = self.ops_skipped_fraction() {
            o.float("ops_skipped_fraction", f);
        }
        if self.lane_batches > 0 {
            o.num("lane_batches", self.lane_batches);
            o.num("lanes_packed", self.lanes_packed);
            o.num("lanes_retired", self.lanes_retired);
            o.num("lane_words", self.lane_words);
        }
        if let Some(r) = self.collapse_ratio() {
            o.num("collapse_faults", self.collapse_faults);
            o.num("collapse_representatives", self.collapse_representatives);
            o.num("collapse_dominance_edges", self.collapse_dominance_edges);
            o.float("collapse_ratio", r);
        }
        if let Some(r) = self.pairs_per_sec() {
            o.float("pairs_per_sec", r);
        }
        let mut phases = String::from("[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let mut po = JsonObject::new();
            po.str("name", &p.name);
            po.num("micros", p.micros);
            phases.push_str(&po.finish());
        }
        phases.push(']');
        o.raw("phases", &phases);
        let mut spans = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            let mut so = JsonObject::new();
            so.str("name", &s.name);
            so.str("parent", &s.parent);
            so.num("micros", s.micros);
            so.num("count", s.count);
            so.num("items", s.items);
            spans.push_str(&so.finish());
        }
        spans.push(']');
        o.raw("spans", &spans);
        let levels = format!(
            "[{}]",
            self.levels
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        o.raw("levels", &levels);
        o.num("gate_evals", self.gate_evals());
        o.finish()
    }
}

/// Builds [`Profile`]s from a campaign event stream.
///
/// Like [`crate::CoverageObserver`], a profiler survives several campaigns:
/// each `CampaignStart` archives the profile under construction and
/// [`Profiler::profiles`] returns all finished profiles in run order.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Mutex<ProfilerState>,
}

#[derive(Debug, Default)]
struct ProfilerState {
    current: Option<Profile>,
    finished: Vec<Profile>,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// The most recently finished profile, if any campaign has ended.
    ///
    /// # Panics
    ///
    /// Panics if the profiler lock was poisoned.
    #[must_use]
    pub fn latest(&self) -> Option<Profile> {
        self.inner
            .lock()
            .expect("profiler lock")
            .finished
            .last()
            .cloned()
    }

    /// All finished profiles, in campaign order.
    ///
    /// # Panics
    ///
    /// Panics if the profiler lock was poisoned.
    #[must_use]
    pub fn profiles(&self) -> Vec<Profile> {
        self.inner.lock().expect("profiler lock").finished.clone()
    }
}

impl CampaignObserver for Profiler {
    fn on_event(&self, event: &CampaignEvent) {
        let mut state = self.inner.lock().expect("profiler lock");
        match *event {
            CampaignEvent::CampaignStart { campaign, .. } => {
                if let Some(p) = state.current.take() {
                    state.finished.push(p);
                }
                state.current = Some(Profile {
                    campaign: campaign.to_string(),
                    ..Profile::default()
                });
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                if let Some(p) = state.current.as_mut() {
                    p.phases.push(PhaseTiming {
                        name: phase.name().to_string(),
                        micros,
                    });
                }
            }
            CampaignEvent::Span {
                name,
                parent,
                micros,
                count,
                items,
            } => {
                if let Some(p) = state.current.as_mut() {
                    if let Some(s) = p
                        .spans
                        .iter_mut()
                        .find(|s| s.name == name && s.parent == parent)
                    {
                        s.micros += micros;
                        s.count += count;
                        s.items += items;
                    } else {
                        p.spans.push(SpanTiming {
                            name: name.to_string(),
                            parent: parent.to_string(),
                            micros,
                            count,
                            items,
                        });
                    }
                }
            }
            CampaignEvent::EvalMode { mode } => {
                if let Some(p) = state.current.as_mut() {
                    p.eval_mode = mode.to_string();
                }
            }
            CampaignEvent::LaneGeometry {
                width,
                fault_lanes,
                pattern_lanes,
                packing,
            } => {
                if let Some(p) = state.current.as_mut() {
                    p.word_width = width as u64;
                    p.fault_lanes = fault_lanes as u64;
                    p.pattern_lanes = pattern_lanes as u64;
                    p.packing = packing.to_string();
                }
            }
            CampaignEvent::ConeStats {
                ops_evaluated,
                ops_skipped,
                ..
            } => {
                if let Some(p) = state.current.as_mut() {
                    p.cone_faults += 1;
                    p.cone_ops_evaluated += ops_evaluated;
                    p.cone_ops_skipped += ops_skipped;
                }
            }
            CampaignEvent::LaneBatch {
                lanes,
                words,
                retired,
                ..
            } => {
                if let Some(p) = state.current.as_mut() {
                    p.lane_batches += 1;
                    p.lanes_packed += lanes as u64;
                    p.lanes_retired += retired as u64;
                    p.lane_words += words;
                }
            }
            CampaignEvent::FaultCollapse {
                faults,
                representatives,
                dominance_edges,
                ..
            } => {
                if let Some(p) = state.current.as_mut() {
                    p.collapse_faults = faults as u64;
                    p.collapse_representatives = representatives as u64;
                    p.collapse_dominance_edges = dominance_edges as u64;
                }
            }
            CampaignEvent::LevelGates { level, gates } => {
                if let Some(p) = state.current.as_mut() {
                    if p.levels.len() <= level {
                        p.levels.resize(level + 1, 0);
                    }
                    p.levels[level] = gates;
                }
            }
            CampaignEvent::CampaignEnd {
                pairs,
                words,
                micros,
                ..
            } => {
                if let Some(mut p) = state.current.take() {
                    p.pairs = pairs;
                    p.words = words;
                    p.micros = micros;
                    state.finished.push(p);
                }
            }
            _ => {}
        }
    }
}

/// Formats a rate compactly: `950`, `3.2k`, `1.8M`.
fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, validate_jsonl, JsonValue};
    use crate::Phase;

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::CampaignStart {
                campaign: "pair",
                faults: 2,
                inputs: 2,
                outputs: 1,
                threads: 1,
            },
            CampaignEvent::EvalMode { mode: "cone" },
            CampaignEvent::LaneGeometry {
                width: 4,
                fault_lanes: 0,
                pattern_lanes: 256,
                packing: "pattern",
            },
            CampaignEvent::PhaseEnd {
                phase: Phase::Compile,
                micros: 50,
            },
            CampaignEvent::Span {
                name: "levelize",
                parent: "compile",
                micros: 30,
                count: 1,
                items: 12,
            },
            CampaignEvent::Span {
                name: "pack",
                parent: "compile",
                micros: 15,
                count: 1,
                items: 12,
            },
            CampaignEvent::LevelGates { level: 0, gates: 4 },
            CampaignEvent::LevelGates { level: 1, gates: 3 },
            CampaignEvent::PhaseEnd {
                phase: Phase::Golden,
                micros: 5,
            },
            CampaignEvent::Span {
                name: "eval_batch",
                parent: "fault_sim",
                micros: 60,
                count: 1,
                items: 4,
            },
            CampaignEvent::Span {
                name: "eval_batch",
                parent: "fault_sim",
                micros: 40,
                count: 1,
                items: 4,
            },
            CampaignEvent::ConeStats {
                fault: 0,
                worker: 0,
                cone_ops: 5,
                ops_evaluated: 10,
                ops_skipped: 18,
                frontier_died_at_level: Some(1),
            },
            CampaignEvent::ConeStats {
                fault: 1,
                worker: 0,
                cone_ops: 7,
                ops_evaluated: 14,
                ops_skipped: 14,
                frontier_died_at_level: None,
            },
            CampaignEvent::PhaseEnd {
                phase: Phase::FaultSim,
                micros: 120,
            },
            CampaignEvent::PhaseEnd {
                phase: Phase::Merge,
                micros: 3,
            },
            CampaignEvent::CampaignEnd {
                faults: 2,
                dropped: 0,
                pairs: 8,
                words: 12,
                micros: 200,
                cancelled: false,
            },
        ]
    }

    #[test]
    fn aggregates_phases_spans_and_levels() {
        let prof = Profiler::new();
        for e in sample_events() {
            prof.on_event(&e);
        }
        let p = prof.latest().expect("profile");
        assert_eq!(p.phase_micros("compile"), Some(50));
        assert_eq!(p.eval_micros(), Some(120));
        // Two eval_batch spans merged into one.
        let eb = p
            .spans
            .iter()
            .find(|s| s.name == "eval_batch")
            .expect("merged span");
        assert_eq!((eb.micros, eb.count, eb.items), (100, 2, 8));
        assert_eq!(p.levels, vec![4, 3]);
        assert_eq!(p.gate_evals(), 7 * 12);
        let rate = p.pairs_per_sec().expect("rate");
        assert!((rate - 8.0 * 1e6 / 120.0).abs() < 1e-6);
        assert_eq!(p.eval_mode, "cone");
        assert_eq!(
            (
                p.word_width,
                p.fault_lanes,
                p.pattern_lanes,
                p.packing.as_str()
            ),
            (4, 0, 256, "pattern")
        );
        assert_eq!(
            (p.cone_faults, p.cone_ops_evaluated, p.cone_ops_skipped),
            (2, 24, 32)
        );
        let frac = p.ops_skipped_fraction().expect("fraction");
        assert!((frac - 32.0 / 56.0).abs() < 1e-9);
    }

    #[test]
    fn render_nests_spans_under_phases() {
        let prof = Profiler::new();
        for e in sample_events() {
            prof.on_event(&e);
        }
        let text = prof.latest().expect("profile").render();
        let compile_at = text.find("  compile: 50 us").expect("compile line");
        let levelize_at = text.find("    levelize: 30 us").expect("nested levelize");
        let golden_at = text.find("  golden: 5 us").expect("golden line");
        assert!(
            compile_at < levelize_at && levelize_at < golden_at,
            "{text}"
        );
        assert!(text.contains("gates/level: 4, 3"), "{text}");
        assert!(text.contains("cone eval"), "{text}");
        assert!(text.contains("word: W=4 (pattern packing"), "{text}");
        assert!(
            text.contains("cone: 2 fault(s), 24 op-evals run, 32 skipped"),
            "{text}"
        );
    }

    #[test]
    fn json_form_is_valid() {
        let prof = Profiler::new();
        for e in sample_events() {
            prof.on_event(&e);
        }
        let json = prof.latest().expect("profile").to_json();
        assert_eq!(validate_jsonl(&json), Ok(1));
        let v = parse(&json).expect("parses");
        assert_eq!(
            v.get("phases")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(4)
        );
        assert_eq!(v.get("gate_evals").and_then(JsonValue::as_f64), Some(84.0));
        assert_eq!(v.get("eval_mode").and_then(JsonValue::as_str), Some("cone"));
        assert_eq!(v.get("word_width").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(
            v.get("packing").and_then(JsonValue::as_str),
            Some("pattern")
        );
        assert_eq!(
            v.get("cone_ops_skipped").and_then(JsonValue::as_f64),
            Some(32.0)
        );
    }

    #[test]
    fn lane_batches_aggregate_and_render() {
        let prof = Profiler::new();
        prof.on_event(&CampaignEvent::CampaignStart {
            campaign: "seq",
            faults: 100,
            inputs: 2,
            outputs: 4,
            threads: 1,
        });
        for (batch, lanes, retired) in [(0usize, 63usize, 50usize), (1, 37, 30)] {
            prof.on_event(&CampaignEvent::LaneBatch {
                batch,
                worker: 0,
                lanes,
                words: 16,
                retired,
            });
        }
        prof.on_event(&CampaignEvent::CampaignEnd {
            faults: 100,
            dropped: 0,
            pairs: 700,
            words: 64,
            micros: 90,
            cancelled: false,
        });
        let p = prof.latest().expect("profile");
        assert_eq!(
            (
                p.lane_batches,
                p.lanes_packed,
                p.lanes_retired,
                p.lane_words
            ),
            (2, 100, 80, 32)
        );
        assert!(
            p.render()
                .contains("lanes: 2 batch(es), 100 fault lane(s) packed, 80 retired early"),
            "{}",
            p.render()
        );
        assert!(p.to_json().contains("\"lanes_packed\":100"));
    }

    #[test]
    fn collapse_counters_aggregate_and_render() {
        let prof = Profiler::new();
        prof.on_event(&CampaignEvent::CampaignStart {
            campaign: "pair",
            faults: 14,
            inputs: 3,
            outputs: 1,
            threads: 1,
        });
        prof.on_event(&CampaignEvent::FaultCollapse {
            faults: 14,
            representatives: 7,
            dominance_edges: 4,
            micros: 2,
        });
        prof.on_event(&CampaignEvent::CampaignEnd {
            faults: 14,
            dropped: 0,
            pairs: 56,
            words: 28,
            micros: 50,
            cancelled: false,
        });
        let p = prof.latest().expect("profile");
        assert_eq!(
            (
                p.collapse_faults,
                p.collapse_representatives,
                p.collapse_dominance_edges
            ),
            (14, 7, 4)
        );
        assert_eq!(p.collapse_ratio(), Some(2.0));
        assert!(
            p.render().contains(
                "collapse: 14 fault(s) -> 7 representative(s) (2.00x), 4 dominance edge(s)"
            ),
            "{}",
            p.render()
        );
        assert!(p.to_json().contains("\"collapse_ratio\":2"));
    }

    #[test]
    fn profiles_archive_per_campaign() {
        let prof = Profiler::new();
        for _ in 0..2 {
            for e in sample_events() {
                prof.on_event(&e);
            }
        }
        assert_eq!(prof.profiles().len(), 2);
    }

    #[test]
    fn rate_formats_compactly() {
        assert_eq!(fmt_rate(950.0), "950");
        assert_eq!(fmt_rate(3200.0), "3.2k");
        assert_eq!(fmt_rate(1_800_000.0), "1.8M");
    }
}
