//! # scal-obs — campaign observability
//!
//! Long-running fault campaigns were black boxes: a sweep reported nothing
//! until it finished and could not be stopped. This crate is the
//! dependency-free observability layer every campaign in the workspace
//! reports through:
//!
//! * **Events** ([`CampaignEvent`]): a typed vocabulary for everything a
//!   campaign does — phase spans (compile / golden / fault-sim / merge),
//!   per-fault start/finish/drop with worker attribution, per-batch pair
//!   counts, live progress ticks, cancellation, and the final summary.
//! * **Observers** ([`CampaignObserver`]): a `Sync` sink trait the engine
//!   calls from its worker threads. Implementations here: the
//!   [`JsonlTrace`] JSON-lines writer, the [`ProgressMeter`] human stderr
//!   summary (throughput-EWMA ETA included), the [`Metrics`] registry
//!   (counters + wall-time histograms), plus [`NullObserver`],
//!   [`MultiObserver`] and the test-oriented [`CollectObserver`].
//! * **Coverage maps** ([`CoverageObserver`] → [`CoverageMap`]): one
//!   [`FaultRecord`] per fault site — detected or not, first detecting
//!   pair / time-to-detection, violation counts, dropped-at batch — with
//!   JSON output and a human-readable undetected-fault report
//!   cross-referencing netlist line names.
//! * **Profiles** ([`Profiler`] → [`Profile`]): phase wall times with
//!   engine sub-phase [`CampaignEvent::Span`]s (levelize/pack/eval-batch)
//!   nested beneath, per-level gate populations, and eval-phase pair
//!   throughput.
//! * **Cancellation** ([`CancelToken`]): a cloneable flag campaigns check at
//!   batch boundaries; a cancelled campaign returns partial, deterministic,
//!   fault-ordered results instead of aborting.
//!
//! Observation never perturbs results: observers only *read* event data, and
//! worker-side fault events are buffered and merged in fault order before
//! emission, so a trace of a single-threaded run is byte-stable (modulo wall
//! times) and multi-threaded runs produce the same merged fault record.
//!
//! The JSON event schema is documented in DESIGN.md ("Observability") and
//! checked by [`json::validate_jsonl`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod coverage;
mod event;
pub mod json;
mod metrics;
mod observer;
mod profile;
mod progress;
mod trace;

pub use cancel::{CancelToken, DeadlineGuard};
pub use coverage::{CoverageMap, CoverageObserver, FaultRecord};
pub use event::{CampaignEvent, Phase};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics};
pub use observer::{CampaignObserver, CollectObserver, MultiObserver, NullObserver};
pub use profile::{PhaseTiming, Profile, Profiler, SpanTiming};
pub use progress::ProgressMeter;
pub use trace::JsonlTrace;
