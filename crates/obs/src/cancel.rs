//! Cooperative cancellation for long-running campaigns.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag.
///
/// Campaigns check the token at batch boundaries; once cancelled, workers
/// stop claiming faults, abandon the fault currently in flight, and the
/// campaign returns the longest contiguous fault-ordered prefix of completed
/// results — bit-identical to the same prefix of an uncancelled run.
///
/// Cancellation is sticky: there is no way to un-cancel a token. Clones share
/// the flag, so a token handed to an observer (or another thread) can stop a
/// campaign from outside.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone of this token has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn works_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().expect("join");
        assert!(t.is_cancelled());
    }
}
