//! Cooperative cancellation for long-running campaigns.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A cloneable cancellation flag.
///
/// Campaigns check the token at batch boundaries; once cancelled, workers
/// stop claiming faults, abandon the fault currently in flight, and the
/// campaign returns the longest contiguous fault-ordered prefix of completed
/// results — bit-identical to the same prefix of an uncancelled run.
///
/// Cancellation is sticky: there is no way to un-cancel a token. Clones share
/// the flag, so a token handed to an observer (or another thread) can stop a
/// campaign from outside.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone of this token has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Arms a deadline: unless the returned [`DeadlineGuard`] is dropped
    /// first, the token is cancelled once `after` has elapsed.
    ///
    /// A timer thread carries the deadline; dropping the guard disarms it
    /// and joins the thread, so a request that finishes before its timeout
    /// leaves no timer behind. The guard may also be [`DeadlineGuard::leak`]ed
    /// for fire-and-forget CLI use. Cancellation remains sticky — a token
    /// cancelled by a deadline behaves exactly like one cancelled by hand.
    #[must_use]
    pub fn cancel_after(&self, after: Duration) -> DeadlineGuard {
        let token = self.clone();
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let fired = Arc::new(AtomicBool::new(false));
        let timer_state = Arc::clone(&state);
        let timer_fired = Arc::clone(&fired);
        let timer = std::thread::spawn(move || {
            let (lock, cvar) = &*timer_state;
            let mut disarmed = lock.lock().expect("deadline lock");
            let mut remaining = after;
            let start = std::time::Instant::now();
            while !*disarmed {
                let (guard, timeout) = cvar
                    .wait_timeout(disarmed, remaining)
                    .expect("deadline lock");
                disarmed = guard;
                if timeout.timed_out() {
                    break;
                }
                // Spurious wakeup: keep waiting out the original deadline.
                remaining = after.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    break;
                }
            }
            if !*disarmed {
                timer_fired.store(true, Ordering::SeqCst);
                token.cancel();
            }
        });
        DeadlineGuard {
            state,
            fired,
            timer: Some(timer),
            leaked: false,
        }
    }
}

/// Disarms a [`CancelToken::cancel_after`] deadline when dropped.
///
/// Dropping the guard before the deadline fires disarms the timer and joins
/// its thread; dropping it afterwards just reaps the (already finished)
/// thread. Either way no timer thread outlives the guard.
#[derive(Debug)]
pub struct DeadlineGuard {
    state: Arc<(Mutex<bool>, Condvar)>,
    fired: Arc<AtomicBool>,
    timer: Option<std::thread::JoinHandle<()>>,
    leaked: bool,
}

impl DeadlineGuard {
    /// Detaches the timer thread, letting the deadline stand even after the
    /// guard goes out of scope (fire-and-forget). The thread exits when the
    /// deadline fires.
    pub fn leak(mut self) {
        self.leaked = true;
        self.timer = None;
    }

    /// `true` once *this* deadline cancelled the token — distinguishing a
    /// timeout from an explicit [`CancelToken::cancel`] on a token with
    /// both in play.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if self.leaked {
            return;
        }
        {
            let (lock, cvar) = &*self.state;
            let mut disarmed = lock.lock().expect("deadline lock");
            *disarmed = true;
            cvar.notify_all();
        }
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn works_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().expect("join");
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires_after_duration() {
        let t = CancelToken::new();
        let guard = t.cancel_after(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.is_cancelled());
        assert!(guard.fired());
        drop(guard); // reaps the finished timer thread
    }

    #[test]
    fn dropping_the_guard_disarms_the_deadline() {
        let t = CancelToken::new();
        let guard = t.cancel_after(Duration::from_millis(20));
        assert!(!guard.fired());
        drop(guard); // well before the deadline
        std::thread::sleep(Duration::from_millis(60));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_does_not_count_as_fired() {
        let t = CancelToken::new();
        let guard = t.cancel_after(Duration::from_secs(30));
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!guard.fired());
        drop(guard);
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let t = CancelToken::new();
        let guard = t.cancel_after(Duration::ZERO);
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(guard);
    }

    #[test]
    fn leaked_deadline_still_fires() {
        let t = CancelToken::new();
        t.cancel_after(Duration::from_millis(10)).leak();
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn deadline_on_an_already_cancelled_token_is_harmless() {
        let t = CancelToken::new();
        t.cancel();
        let guard = t.cancel_after(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(15));
        assert!(t.is_cancelled());
        drop(guard);
    }

    #[test]
    fn multiple_deadlines_earliest_wins() {
        let t = CancelToken::new();
        let early = t.cancel_after(Duration::from_millis(5));
        let late = t.cancel_after(Duration::from_secs(30));
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(early);
        drop(late); // disarms the long timer without waiting 30 s
    }
}
