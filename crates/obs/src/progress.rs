//! The human progress sink: one-line campaign summaries on stderr.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prints throttled progress lines and a final summary to stderr.
///
/// Progress ticks are rate-limited (default: one line per 250 ms) so a
/// million-fault campaign does not drown the terminal; phase ends and the
/// campaign summary always print. Writes go to [`std::io::stderr`] and never
/// affect campaign results.
pub struct ProgressMeter {
    state: Mutex<MeterState>,
    min_interval: Duration,
}

struct MeterState {
    started: Instant,
    last_tick: Option<Instant>,
    /// Fault count and instant of the previous tick, for the rate estimate.
    last_progress: Option<(usize, Instant)>,
    /// Exponentially-weighted moving average of fault throughput (faults/s).
    ewma_rate: Option<f64>,
}

/// EWMA smoothing factor for the throughput estimate: high enough to adapt
/// to phase changes (dropping kicks in, a big fault finishes), low enough
/// that the ETA does not jitter tick-to-tick.
const EWMA_ALPHA: f64 = 0.3;

impl Default for ProgressMeter {
    fn default() -> Self {
        ProgressMeter::new()
    }
}

impl ProgressMeter {
    /// A meter with the default 250 ms throttle.
    #[must_use]
    pub fn new() -> Self {
        ProgressMeter::with_interval(Duration::from_millis(250))
    }

    /// A meter printing at most one progress line per `min_interval`.
    #[must_use]
    pub fn with_interval(min_interval: Duration) -> Self {
        ProgressMeter {
            state: Mutex::new(MeterState {
                started: Instant::now(),
                last_tick: None,
                last_progress: None,
                ewma_rate: None,
            }),
            min_interval,
        }
    }

    fn line(&self, text: &str) {
        // Best-effort: a dead stderr must not kill the campaign.
        let _ = writeln!(std::io::stderr(), "{text}");
    }
}

/// Formats a remaining-time estimate compactly: `42s`, `3m10s`, `2h05m`.
fn fmt_eta(secs: f64) -> String {
    let s = secs.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

impl CampaignObserver for ProgressMeter {
    fn on_event(&self, event: &CampaignEvent) {
        match *event {
            CampaignEvent::CampaignStart {
                campaign,
                faults,
                threads,
                ..
            } => {
                let mut state = self.state.lock().expect("meter lock");
                state.started = Instant::now();
                state.last_tick = None;
                state.last_progress = None;
                state.ewma_rate = None;
                drop(state);
                self.line(&format!(
                    "[{campaign}] campaign start: {faults} faults, {threads} thread(s)"
                ));
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                self.line(&format!("[{}] {} us", phase.name(), micros));
            }
            CampaignEvent::Progress { done, total } => {
                let mut state = self.state.lock().expect("meter lock");
                let now = Instant::now();
                // Update the throughput EWMA on every tick, even throttled
                // ones, so the estimate tracks the real completion rate. The
                // first tick has no previous sample and zero-duration deltas
                // carry no rate information — both leave the EWMA untouched
                // (the division-by-zero guard).
                if let Some((prev_done, prev_at)) = state.last_progress {
                    let dt = now.duration_since(prev_at).as_secs_f64();
                    if dt > 0.0 && done >= prev_done {
                        let inst = (done - prev_done) as f64 / dt;
                        state.ewma_rate = Some(match state.ewma_rate {
                            Some(prev) => EWMA_ALPHA * inst + (1.0 - EWMA_ALPHA) * prev,
                            None => inst,
                        });
                    }
                }
                state.last_progress = Some((done, now));
                let due = state
                    .last_tick
                    .map_or(true, |t| now.duration_since(t) >= self.min_interval);
                if !due && done != total {
                    return;
                }
                state.last_tick = Some(now);
                let elapsed = now.duration_since(state.started);
                let rate = state.ewma_rate;
                drop(state);
                let pct = if total == 0 {
                    100.0
                } else {
                    100.0 * done as f64 / total as f64
                };
                let eta = match rate {
                    Some(r) if r > 0.0 && done < total => {
                        let secs = (total - done) as f64 / r;
                        format!(", eta {}", fmt_eta(secs))
                    }
                    _ => String::new(),
                };
                self.line(&format!(
                    "progress: {done}/{total} faults ({pct:.1}%) in {elapsed:.1?}{eta}"
                ));
            }
            CampaignEvent::Cancelled { completed } => {
                self.line(&format!(
                    "cancelled: keeping the first {completed} fault result(s)"
                ));
            }
            CampaignEvent::CampaignEnd {
                faults,
                dropped,
                pairs,
                words,
                micros,
                cancelled,
            } => {
                self.line(&format!(
                    "campaign end: {faults} faults ({dropped} dropped), {pairs} pairs, {words} words in {micros} us{}",
                    if cancelled { " [CANCELLED]" } else { "" }
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The meter only writes to stderr, so tests exercise the throttle
    /// bookkeeping rather than the text.
    #[test]
    fn throttle_suppresses_back_to_back_ticks() {
        let meter = ProgressMeter::with_interval(Duration::from_secs(3600));
        meter.on_event(&CampaignEvent::Progress { done: 1, total: 10 });
        let first = meter.state.lock().expect("lock").last_tick;
        assert!(first.is_some());
        meter.on_event(&CampaignEvent::Progress { done: 2, total: 10 });
        let second = meter.state.lock().expect("lock").last_tick;
        assert_eq!(first, second, "second tick suppressed");
        // The final tick always prints.
        meter.on_event(&CampaignEvent::Progress {
            done: 10,
            total: 10,
        });
        assert_ne!(meter.state.lock().expect("lock").last_tick, second);
    }

    #[test]
    fn other_events_do_not_touch_the_throttle() {
        let meter = ProgressMeter::new();
        meter.on_event(&CampaignEvent::Cancelled { completed: 3 });
        assert!(meter.state.lock().expect("lock").last_tick.is_none());
    }

    #[test]
    fn first_tick_has_no_rate_estimate() {
        // The division-by-zero guard: one tick gives no throughput sample,
        // so the EWMA stays empty and the line prints without an ETA.
        let meter = ProgressMeter::with_interval(Duration::from_millis(0));
        meter.on_event(&CampaignEvent::Progress { done: 1, total: 10 });
        assert!(meter.state.lock().expect("lock").ewma_rate.is_none());
    }

    #[test]
    fn ewma_rate_converges_on_later_ticks() {
        let meter = ProgressMeter::with_interval(Duration::from_millis(0));
        meter.on_event(&CampaignEvent::Progress {
            done: 1,
            total: 100,
        });
        std::thread::sleep(Duration::from_millis(5));
        meter.on_event(&CampaignEvent::Progress {
            done: 5,
            total: 100,
        });
        let rate = meter.state.lock().expect("lock").ewma_rate;
        assert!(rate.is_some_and(|r| r > 0.0), "rate learned: {rate:?}");
        std::thread::sleep(Duration::from_millis(5));
        meter.on_event(&CampaignEvent::Progress {
            done: 20,
            total: 100,
        });
        assert!(meter.state.lock().expect("lock").ewma_rate.is_some());
    }

    #[test]
    fn zero_elapsed_ticks_leave_the_rate_untouched() {
        let meter = ProgressMeter::with_interval(Duration::from_millis(0));
        {
            let mut state = meter.state.lock().expect("lock");
            state.ewma_rate = Some(7.5);
            // A previous sample stamped in the future makes the next delta
            // saturate to zero elapsed time — the degenerate case the
            // division-by-zero guard exists for (two ticks landing inside
            // one timer quantum).
            state.last_progress = Some((1, Instant::now() + Duration::from_secs(60)));
        }
        meter.on_event(&CampaignEvent::Progress { done: 9, total: 10 });
        assert_eq!(meter.state.lock().expect("lock").ewma_rate, Some(7.5));
    }

    #[test]
    fn backwards_progress_leaves_the_rate_untouched() {
        // A merged multi-worker stream can replay a lower `done` after a
        // higher one; a negative delta carries no rate information.
        let meter = ProgressMeter::with_interval(Duration::from_millis(0));
        {
            let mut state = meter.state.lock().expect("lock");
            state.ewma_rate = Some(3.0);
            state.last_progress = Some((8, Instant::now() - Duration::from_millis(10)));
        }
        meter.on_event(&CampaignEvent::Progress { done: 2, total: 10 });
        assert_eq!(meter.state.lock().expect("lock").ewma_rate, Some(3.0));
    }

    #[test]
    fn eta_formats_all_magnitudes() {
        assert_eq!(fmt_eta(42.4), "42s");
        assert_eq!(fmt_eta(190.0), "3m10s");
        assert_eq!(fmt_eta(2.0 * 3600.0 + 5.0 * 60.0), "2h05m");
    }
}
