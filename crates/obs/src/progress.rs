//! The human progress sink: one-line campaign summaries on stderr.

use crate::event::CampaignEvent;
use crate::observer::CampaignObserver;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prints throttled progress lines and a final summary to stderr.
///
/// Progress ticks are rate-limited (default: one line per 250 ms) so a
/// million-fault campaign does not drown the terminal; phase ends and the
/// campaign summary always print. Writes go to [`std::io::stderr`] and never
/// affect campaign results.
pub struct ProgressMeter {
    state: Mutex<MeterState>,
    min_interval: Duration,
}

struct MeterState {
    started: Instant,
    last_tick: Option<Instant>,
}

impl Default for ProgressMeter {
    fn default() -> Self {
        ProgressMeter::new()
    }
}

impl ProgressMeter {
    /// A meter with the default 250 ms throttle.
    #[must_use]
    pub fn new() -> Self {
        ProgressMeter::with_interval(Duration::from_millis(250))
    }

    /// A meter printing at most one progress line per `min_interval`.
    #[must_use]
    pub fn with_interval(min_interval: Duration) -> Self {
        ProgressMeter {
            state: Mutex::new(MeterState {
                started: Instant::now(),
                last_tick: None,
            }),
            min_interval,
        }
    }

    fn line(&self, text: &str) {
        // Best-effort: a dead stderr must not kill the campaign.
        let _ = writeln!(std::io::stderr(), "{text}");
    }
}

impl CampaignObserver for ProgressMeter {
    fn on_event(&self, event: &CampaignEvent) {
        match *event {
            CampaignEvent::CampaignStart {
                campaign,
                faults,
                threads,
                ..
            } => {
                let mut state = self.state.lock().expect("meter lock");
                state.started = Instant::now();
                state.last_tick = None;
                drop(state);
                self.line(&format!(
                    "[{campaign}] campaign start: {faults} faults, {threads} thread(s)"
                ));
            }
            CampaignEvent::PhaseEnd { phase, micros } => {
                self.line(&format!("[{}] {} us", phase.name(), micros));
            }
            CampaignEvent::Progress { done, total } => {
                let mut state = self.state.lock().expect("meter lock");
                let now = Instant::now();
                let due = state
                    .last_tick
                    .map_or(true, |t| now.duration_since(t) >= self.min_interval);
                if !due && done != total {
                    return;
                }
                state.last_tick = Some(now);
                let elapsed = now.duration_since(state.started);
                drop(state);
                let pct = if total == 0 {
                    100.0
                } else {
                    100.0 * done as f64 / total as f64
                };
                self.line(&format!(
                    "progress: {done}/{total} faults ({pct:.1}%) in {elapsed:.1?}"
                ));
            }
            CampaignEvent::Cancelled { completed } => {
                self.line(&format!(
                    "cancelled: keeping the first {completed} fault result(s)"
                ));
            }
            CampaignEvent::CampaignEnd {
                faults,
                dropped,
                pairs,
                words,
                micros,
                cancelled,
            } => {
                self.line(&format!(
                    "campaign end: {faults} faults ({dropped} dropped), {pairs} pairs, {words} words in {micros} us{}",
                    if cancelled { " [CANCELLED]" } else { "" }
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The meter only writes to stderr, so tests exercise the throttle
    /// bookkeeping rather than the text.
    #[test]
    fn throttle_suppresses_back_to_back_ticks() {
        let meter = ProgressMeter::with_interval(Duration::from_secs(3600));
        meter.on_event(&CampaignEvent::Progress { done: 1, total: 10 });
        let first = meter.state.lock().expect("lock").last_tick;
        assert!(first.is_some());
        meter.on_event(&CampaignEvent::Progress { done: 2, total: 10 });
        let second = meter.state.lock().expect("lock").last_tick;
        assert_eq!(first, second, "second tick suppressed");
        // The final tick always prints.
        meter.on_event(&CampaignEvent::Progress {
            done: 10,
            total: 10,
        });
        assert_ne!(meter.state.lock().expect("lock").last_tick, second);
    }

    #[test]
    fn other_events_do_not_touch_the_throttle() {
        let meter = ProgressMeter::new();
        meter.on_event(&CampaignEvent::Cancelled { completed: 3 });
        assert!(meter.state.lock().expect("lock").last_tick.is_none());
    }
}
