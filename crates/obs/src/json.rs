//! Minimal JSON emission and validation — just enough for the trace format,
//! with no external dependencies.
//!
//! Emission covers flat objects of strings, integers and booleans (the whole
//! event vocabulary). [`validate_jsonl`] is a strict syntax checker for
//! JSON-lines streams, used by the golden tests and the CI smoke job.

use std::fmt::Write;

/// Incremental builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Appends a string field.
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
    }

    /// Appends an unsigned integer field.
    pub fn num(&mut self, k: &str, v: u64) {
        self.key(k);
        let _ = write!(self.buf, "{v}");
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Closes the object and returns its text.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates a JSON-lines stream: every non-empty line must be one
/// syntactically complete JSON value. Returns the number of lines checked.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based) and position.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut checked = 0;
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value().map_err(|e| format!("line {}: {e}", ln + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!(
                "line {}: trailing garbage at byte {}",
                ln + 1,
                p.pos
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// A recursive-descent JSON syntax checker (no value construction).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got == b {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(()),
                b => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(()),
                b => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => {
                    let e = self.bump()?;
                    match e {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.bump()?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.pos - 1));
                                }
                            }
                        }
                        b => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                b as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                b if b < 0x20 => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_objects() {
        let mut o = JsonObject::new();
        o.str("ev", "phase_end");
        o.num("micros", 12);
        o.bool("ok", true);
        let s = o.finish();
        assert_eq!(s, "{\"ev\":\"phase_end\",\"micros\":12,\"ok\":true}");
        assert_eq!(validate_jsonl(&s), Ok(1));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        let mut o = JsonObject::new();
        o.str("k", "a\"b\u{1}");
        assert_eq!(validate_jsonl(&o.finish()), Ok(1));
    }

    #[test]
    fn validate_accepts_multiline_streams() {
        let text = "{\"a\":1}\n{\"b\":[1,2,{\"c\":null}],\"d\":-1.5e3}\n\n{\"e\":\"x\"}";
        assert_eq!(validate_jsonl(text), Ok(3));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_jsonl("{\"a\":}").is_err());
        assert!(validate_jsonl("{\"a\":1} extra").is_err());
        assert!(validate_jsonl("{'a':1}").is_err());
        assert!(validate_jsonl("{\"a\":01x}").is_err());
        assert!(validate_jsonl("{\"a\":\"unterminated}").is_err());
        let err = validate_jsonl("{\"a\":1}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }
}
