//! Minimal JSON emission and validation — just enough for the trace format,
//! with no external dependencies.
//!
//! Emission covers flat objects of strings, integers and booleans (the whole
//! event vocabulary). [`validate_jsonl`] is a strict syntax checker for
//! JSON-lines streams, used by the golden tests and the CI smoke job.

use std::fmt::Write;

/// Incremental builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Appends a string field.
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
    }

    /// Appends an unsigned integer field.
    pub fn num(&mut self, k: &str, v: u64) {
        self.key(k);
        let _ = write!(self.buf, "{v}");
    }

    /// Appends a finite float field (non-finite values render as `null`,
    /// which JSON has no float spelling for).
    pub fn float(&mut self, k: &str, v: f64) {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Appends a pre-serialized JSON value verbatim — the splice point for
    /// nested objects and arrays built elsewhere. The caller is responsible
    /// for `v` being valid JSON.
    pub fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    /// Closes the object and returns its text.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
///
/// Beyond the mandatory `"`/`\\`/C0 escapes, the C1 control range
/// (U+0080–U+009F) and the Unicode line separators U+2028/U+2029 are also
/// `\u`-escaped: C1 bytes are invisible in most terminals and corrupt naive
/// line-oriented consumers, and U+2028/U+2029 are line terminators in
/// JavaScript, so escaping keeps one JSONL event strictly one line
/// everywhere.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20
                || (0x7f..=0x9f).contains(&(c as u32))
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates a JSON-lines stream: every non-empty line must be one
/// syntactically complete JSON value. Returns the number of lines checked.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based) and position.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut checked = 0;
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value().map_err(|e| format!("line {}: {e}", ln + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!(
                "line {}: trailing garbage at byte {}",
                ln + 1,
                p.pos
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// A parsed JSON value — the reading counterpart of [`JsonObject`], used by
/// tools that consume committed JSON artifacts (baseline benchmark
/// snapshots, coverage maps) without external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order (duplicate keys keep the last value on
    /// lookup).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (`None` for other variants or missing
    /// keys). Duplicate keys resolve to the last occurrence.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes back to one compact JSON line (no trailing newline).
    /// Whole numbers print without a fractional part; non-finite numbers
    /// (unrepresentable in JSON) degrade to `null`.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON value from `text` (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a message naming the first offending byte position.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.build_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// A recursive-descent JSON syntax checker (no value construction).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got == b {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(()),
                b => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(()),
                b => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => {
                    let e = self.bump()?;
                    match e {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.bump()?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u escape at byte {}", self.pos - 1));
                                }
                            }
                        }
                        b => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                b as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                b if b < 0x20 => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {}
            }
        }
    }

    fn build_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.build_object(),
            Some(b'[') => self.build_array(),
            Some(b'"') => self.build_string().map(JsonValue::Str),
            Some(b't') => self.literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.build_number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end at byte {}", self.pos)),
        }
    }

    fn build_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.build_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.build_value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(JsonValue::Object(members)),
                b => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn build_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.build_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(JsonValue::Array(items)),
                b => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos - 1,
                        b as char
                    ))
                }
            }
        }
    }

    fn build_string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.string()?;
        // Re-walk the validated span (quotes excluded) decoding escapes.
        let body = &self.bytes[start + 1..self.pos - 1];
        let text = std::str::from_utf8(body)
            .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
        let mut out = String::with_capacity(text.len());
        let mut chars = text.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let cp = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in string at byte {start}"))?;
                    // Surrogates (already validated as hex) decode to the
                    // replacement character; the trace format never emits
                    // them.
                    out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                }
                _ => return Err(format!("bad escape in string at byte {start}")),
            }
        }
        Ok(out)
    }

    fn build_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        self.number()?;
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid UTF-8 in number at byte {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("unparseable number at byte {start}"))?;
        Ok(JsonValue::Num(n))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_objects() {
        let mut o = JsonObject::new();
        o.str("ev", "phase_end");
        o.num("micros", 12);
        o.bool("ok", true);
        let s = o.finish();
        assert_eq!(s, "{\"ev\":\"phase_end\",\"micros\":12,\"ok\":true}");
        assert_eq!(validate_jsonl(&s), Ok(1));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        let mut o = JsonObject::new();
        o.str("k", "a\"b\u{1}");
        assert_eq!(validate_jsonl(&o.finish()), Ok(1));
    }

    #[test]
    fn validate_accepts_multiline_streams() {
        let text = "{\"a\":1}\n{\"b\":[1,2,{\"c\":null}],\"d\":-1.5e3}\n\n{\"e\":\"x\"}";
        assert_eq!(validate_jsonl(text), Ok(3));
    }

    #[test]
    fn escape_neutralizes_pathological_gate_names() {
        // A gate name with C0 + DEL + C1 controls and JS line separators:
        // every one must come out as a \uXXXX escape, leaving one printable
        // single-line JSON object.
        let evil = "g\u{7}\u{7f}\u{85}\u{9b}\u{2028}\u{2029}nand";
        let escaped = escape(evil);
        assert_eq!(escaped, "g\\u0007\\u007f\\u0085\\u009b\\u2028\\u2029nand");
        let mut o = JsonObject::new();
        o.str("gate", evil);
        let line = o.finish();
        assert_eq!(line.lines().count(), 1);
        assert!(line.chars().all(|c| !c.is_control() || c == ' '));
        assert_eq!(validate_jsonl(&line), Ok(1));
        // Round-trips through the reader.
        let v = parse(&line).unwrap();
        assert_eq!(v.get("gate").and_then(JsonValue::as_str), Some(evil));
    }

    #[test]
    fn parse_builds_values() {
        let v = parse("{\"a\":1,\"b\":[true,null,-2.5e1],\"c\":{\"d\":\"x\\ny\"}}").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2], JsonValue::Num(-25.0));
        let d = v.get("c").and_then(|c| c.get("d"));
        assert_eq!(d.and_then(JsonValue::as_str), Some("x\ny"));
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2] junk").is_err());
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let mut o = JsonObject::new();
        o.str("name", "s0 \"carry\"\\");
        o.num("pairs", 128);
        o.float("rate", 0.5);
        o.bool("ok", false);
        let v = parse(&o.finish()).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("s0 \"carry\"\\")
        );
        assert_eq!(v.get("pairs").and_then(JsonValue::as_f64), Some(128.0));
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn to_json_line_round_trips() {
        let text = "{\"name\":\"s0 \\\"x\\\"\",\"n\":128,\"rate\":0.5,\"ok\":false,\
                    \"none\":null,\"list\":[1,\"two\",{\"k\":-3.25}],\"empty\":{}}";
        let v = parse(text).unwrap();
        let line = v.to_json_line();
        assert_eq!(parse(&line).unwrap(), v);
        // Whole numbers keep integer spelling across the round trip.
        assert!(line.contains("\"n\":128"), "{line}");
        assert_eq!(validate_jsonl(&line), Ok(1));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_jsonl("{\"a\":}").is_err());
        assert!(validate_jsonl("{\"a\":1} extra").is_err());
        assert!(validate_jsonl("{'a':1}").is_err());
        assert!(validate_jsonl("{\"a\":01x}").is_err());
        assert!(validate_jsonl("{\"a\":\"unterminated}").is_err());
        let err = validate_jsonl("{\"a\":1}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }
}
