//! Per-fault coverage maps.
//!
//! A [`CoverageObserver`] listens to a campaign's event stream and builds a
//! [`CoverageMap`]: one [`FaultRecord`] per fault, in fault-list order,
//! carrying the detection verdict, the first detecting pair (and hence
//! time-to-detection), alternation-violation counts, and — when fault
//! dropping or cancellation cut the sweep short — where the sweep stopped.
//! This is the per-line feedback Algorithm 3.1 reasons about: not *how many*
//! faults a SCAL network detects, but *which ones* and *how fast*.
//!
//! Fault events are replayed deterministically in fault order by every
//! campaign flavour, so a coverage map is bit-identical across backends and
//! thread counts, and a cancelled campaign yields a valid fault-ordered
//! prefix map.

use crate::event::CampaignEvent;
use crate::json::JsonObject;
use crate::observer::CampaignObserver;
use std::fmt::Write as _;
use std::sync::Mutex;

/// The coverage verdict for one fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index into the campaign's fault list.
    pub fault: usize,
    /// Human-readable site description (`"carry1 s-a-0"`), when the campaign
    /// supplied labels; empty otherwise.
    pub label: String,
    /// Pairs whose outputs failed the alternation check (detections).
    pub detected: usize,
    /// Ordinal of the first detecting pair in sweep order (`None` if never
    /// detected). Pair campaigns sweep canonical minterms ascending, so this
    /// is the minterm index of the first detecting input pair.
    pub first_detected: Option<u32>,
    /// Pairs that produced a wrong but alternating code word (undetected
    /// errors — fault-secureness violations).
    pub violations: usize,
    /// Whether the fault changed any output at all.
    pub observable: bool,
    /// Whether fault dropping cut the sweep short.
    pub dropped: bool,
    /// Batch ordinal at which the sweep stopped early (`None` for full
    /// sweeps).
    pub dropped_at: Option<usize>,
    /// Pairs evaluated for this fault.
    pub pairs: u64,
    /// Ops in this fault's fanout cone (`None` when the campaign ran in full
    /// eval mode or on a scalar backend).
    pub cone_ops: Option<u64>,
    /// Op evaluations the cone path skipped relative to full-schedule
    /// sweeps (`None` outside cone mode).
    pub ops_skipped: Option<u64>,
    /// Lowest circuit level at which the faulty frontier converged back to
    /// golden and evaluation stopped early (`None` when the fault's effect
    /// always reached the cone boundary, or outside cone mode).
    pub frontier_died_at_level: Option<u32>,
    /// Fault-list index of this fault's structural-equivalence
    /// representative, when fault collapsing merged it into a class of
    /// size > 1 (`None` for singleton classes or uncollapsed runs). Equals
    /// `fault` for the representative itself.
    pub class_rep: Option<usize>,
    /// Members of the fault's collapsed class (`None` alongside
    /// `class_rep = None`).
    pub class_size: Option<usize>,
}

impl FaultRecord {
    /// The record with every backend-dependent annotation cleared: cone
    /// statistics (absent in full/scalar mode) and collapse-class membership
    /// (absent in uncollapsed runs). What remains — verdict, first detecting
    /// pair, violations, drop state, pairs — is the backend-independent
    /// coverage content that differential tests compare bit for bit.
    #[must_use]
    pub fn without_annotations(&self) -> FaultRecord {
        FaultRecord {
            cone_ops: None,
            ops_skipped: None,
            frontier_died_at_level: None,
            class_rep: None,
            class_size: None,
            ..self.clone()
        }
    }
    /// `true` iff at least one pair detected the fault.
    #[must_use]
    pub fn is_detected(&self) -> bool {
        self.detected > 0
    }

    /// Pairs applied until the first detection (`first_detected + 1`), the
    /// thesis's time-to-detection metric. `None` for undetected faults.
    #[must_use]
    pub fn time_to_detection(&self) -> Option<u64> {
        self.first_detected.map(|p| u64::from(p) + 1)
    }
}

/// A complete per-fault coverage picture of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    /// Campaign flavour (`"pair"`, `"pair_scalar"`, `"seq"`, …).
    pub campaign: String,
    /// One record per fault, in fault-list order. A cancelled campaign
    /// leaves the deterministic prefix.
    pub records: Vec<FaultRecord>,
    /// Faults the campaign queued (may exceed `records.len()` after
    /// cancellation).
    pub total_faults: usize,
    /// Whether the campaign was cancelled.
    pub cancelled: bool,
}

impl CoverageMap {
    /// Faults with at least one detecting pair.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_detected()).count()
    }

    /// Detected fraction over the *recorded* faults (1.0 for an empty map).
    #[must_use]
    pub fn coverage_fraction(&self) -> f64 {
        if self.records.is_empty() {
            1.0
        } else {
            self.detected_count() as f64 / self.records.len() as f64
        }
    }

    /// The undetected fault records, in fault order.
    pub fn undetected(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter().filter(|r| !r.is_detected())
    }

    /// The map with [`FaultRecord::without_annotations`] applied to every
    /// record — the form differential tests compare across backends,
    /// eval modes, and collapse settings.
    #[must_use]
    pub fn without_annotations(&self) -> CoverageMap {
        CoverageMap {
            records: self
                .records
                .iter()
                .map(FaultRecord::without_annotations)
                .collect(),
            ..self.clone()
        }
    }

    /// Serializes the map as one JSON object (stable schema, one `records`
    /// array entry per fault).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("campaign", &self.campaign);
        o.num("faults", self.records.len() as u64);
        o.num("total_faults", self.total_faults as u64);
        o.num("detected", self.detected_count() as u64);
        o.float("coverage", self.coverage_fraction());
        o.bool("cancelled", self.cancelled);
        let mut records = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                records.push(',');
            }
            let mut ro = JsonObject::new();
            ro.num("fault", r.fault as u64);
            if !r.label.is_empty() {
                ro.str("label", &r.label);
            }
            ro.bool("detected", r.is_detected());
            ro.num("detections", r.detected as u64);
            if let Some(p) = r.first_detected {
                ro.num("first_pair", u64::from(p));
                ro.num("ttd_pairs", u64::from(p) + 1);
            }
            ro.num("violations", r.violations as u64);
            ro.bool("observable", r.observable);
            ro.bool("dropped", r.dropped);
            if let Some(b) = r.dropped_at {
                ro.num("dropped_at", b as u64);
            }
            ro.num("pairs", r.pairs);
            if let Some(c) = r.cone_ops {
                ro.num("cone_ops", c);
            }
            if let Some(s) = r.ops_skipped {
                ro.num("ops_skipped", s);
            }
            if let Some(l) = r.frontier_died_at_level {
                ro.num("frontier_died_at_level", u64::from(l));
            }
            if let Some(rep) = r.class_rep {
                ro.num("class_rep", rep as u64);
            }
            if let Some(sz) = r.class_size {
                ro.num("class_size", sz as u64);
            }
            records.push_str(&ro.finish());
        }
        records.push(']');
        o.raw("records", &records);
        o.finish()
    }

    /// Renders the human-readable undetected-fault report, cross-referencing
    /// the labels (netlist line names) the campaign supplied.
    #[must_use]
    pub fn undetected_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "coverage [{}]: {}/{} faults detected ({:.1}%){}",
            self.campaign,
            self.detected_count(),
            self.records.len(),
            100.0 * self.coverage_fraction(),
            if self.cancelled {
                " [CANCELLED PREFIX]"
            } else {
                ""
            }
        );
        let undetected: Vec<_> = self.undetected().collect();
        if undetected.is_empty() {
            let _ = writeln!(out, "no undetected faults");
            return out;
        }
        let _ = writeln!(out, "undetected faults:");
        for r in undetected {
            let name = if r.label.is_empty() {
                format!("fault #{}", r.fault)
            } else {
                format!("#{} {}", r.fault, r.label)
            };
            let kind = if !r.observable {
                "unobservable (no output ever changed)"
            } else if r.violations > 0 {
                "code-preserving (wrong but alternating outputs)"
            } else {
                "masked"
            };
            let _ = writeln!(
                out,
                "  {name}: {kind}, {} violation pair(s) over {} pair(s)",
                r.violations, r.pairs
            );
        }
        out
    }
}

/// Builds [`CoverageMap`]s from a campaign event stream.
///
/// Attach one to a campaign (every `Campaign` builder has a `.coverage()`
/// hook) and read [`CoverageObserver::latest`] after the run. Labels are
/// per-fault-index strings, usually `"<line> s-a-<v>"`; campaigns that know
/// their fault list set them via [`CoverageObserver::set_labels`]. An
/// observer survives several campaigns back-to-back — each
/// `CampaignStart` archives the map under construction, and
/// [`CoverageObserver::maps`] returns all finished maps in run order.
#[derive(Debug, Default)]
pub struct CoverageObserver {
    inner: Mutex<CoverageState>,
}

#[derive(Debug, Default)]
struct CoverageState {
    labels: Vec<String>,
    current: Option<CoverageMap>,
    /// `FaultDropped` precedes its `FaultFinish` in the replayed stream;
    /// this carries the batch ordinal across.
    pending_drop: Vec<(usize, usize)>,
    /// `ConeStats` precedes its `FaultFinish` in the replayed stream; this
    /// carries `(fault, cone_ops, ops_skipped, died_at_level)` across.
    pending_cone: Vec<(usize, u64, u64, Option<u32>)>,
    /// `FaultClass` precedes its `FaultFinish` in the replayed stream; this
    /// carries `(fault, representative, size)` across.
    pending_class: Vec<(usize, usize, usize)>,
    finished: Vec<CoverageMap>,
}

impl CoverageObserver {
    /// Creates an empty observer.
    #[must_use]
    pub fn new() -> Self {
        CoverageObserver::default()
    }

    /// Supplies per-fault-index labels (netlist line names) for the current
    /// and subsequent campaigns.
    ///
    /// # Panics
    ///
    /// Panics if the observer lock was poisoned.
    pub fn set_labels(&self, labels: Vec<String>) {
        self.inner.lock().expect("coverage lock").labels = labels;
    }

    /// The most recently *finished* map, if any campaign has ended.
    ///
    /// # Panics
    ///
    /// Panics if the observer lock was poisoned.
    #[must_use]
    pub fn latest(&self) -> Option<CoverageMap> {
        self.inner
            .lock()
            .expect("coverage lock")
            .finished
            .last()
            .cloned()
    }

    /// All finished maps, in campaign order.
    ///
    /// # Panics
    ///
    /// Panics if the observer lock was poisoned.
    #[must_use]
    pub fn maps(&self) -> Vec<CoverageMap> {
        self.inner.lock().expect("coverage lock").finished.clone()
    }
}

impl CampaignObserver for CoverageObserver {
    fn on_event(&self, event: &CampaignEvent) {
        let mut state = self.inner.lock().expect("coverage lock");
        match *event {
            CampaignEvent::CampaignStart {
                campaign, faults, ..
            } => {
                if let Some(map) = state.current.take() {
                    // A start without an end: archive what we have.
                    state.finished.push(map);
                }
                state.pending_drop.clear();
                state.pending_cone.clear();
                state.pending_class.clear();
                state.current = Some(CoverageMap {
                    campaign: campaign.to_string(),
                    records: Vec::with_capacity(faults),
                    total_faults: faults,
                    cancelled: false,
                });
            }
            CampaignEvent::FaultDropped { fault, batch, .. } => {
                state.pending_drop.push((fault, batch));
            }
            CampaignEvent::ConeStats {
                fault,
                cone_ops,
                ops_skipped,
                frontier_died_at_level,
                ..
            } => {
                state
                    .pending_cone
                    .push((fault, cone_ops, ops_skipped, frontier_died_at_level));
            }
            CampaignEvent::FaultClass {
                fault,
                representative,
                size,
            } => {
                state.pending_class.push((fault, representative, size));
            }
            CampaignEvent::FaultFinish {
                fault,
                detected,
                violations,
                observable,
                dropped,
                pairs,
                first_detected,
                ..
            } => {
                let dropped_at = state
                    .pending_drop
                    .iter()
                    .position(|&(f, _)| f == fault)
                    .map(|i| state.pending_drop.swap_remove(i).1);
                let cone = state
                    .pending_cone
                    .iter()
                    .position(|&(f, ..)| f == fault)
                    .map(|i| state.pending_cone.swap_remove(i));
                let class = state
                    .pending_class
                    .iter()
                    .position(|&(f, ..)| f == fault)
                    .map(|i| state.pending_class.swap_remove(i));
                let label = state.labels.get(fault).cloned().unwrap_or_default();
                if let Some(map) = state.current.as_mut() {
                    map.records.push(FaultRecord {
                        fault,
                        label,
                        detected,
                        first_detected,
                        violations,
                        observable,
                        dropped,
                        dropped_at,
                        pairs,
                        cone_ops: cone.map(|(_, c, _, _)| c),
                        ops_skipped: cone.map(|(_, _, s, _)| s),
                        frontier_died_at_level: cone.and_then(|(_, _, _, l)| l),
                        class_rep: class.map(|(_, rep, _)| rep),
                        class_size: class.map(|(_, _, sz)| sz),
                    });
                }
            }
            CampaignEvent::Cancelled { .. } => {
                if let Some(map) = state.current.as_mut() {
                    map.cancelled = true;
                }
            }
            CampaignEvent::CampaignEnd { cancelled, .. } => {
                if let Some(mut map) = state.current.take() {
                    map.cancelled |= cancelled;
                    state.finished.push(map);
                }
                state.pending_drop.clear();
                state.pending_cone.clear();
                state.pending_class.clear();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, validate_jsonl, JsonValue};

    fn feed(obs: &CoverageObserver, events: &[CampaignEvent]) {
        for e in events {
            obs.on_event(e);
        }
    }

    fn start(faults: usize) -> CampaignEvent {
        CampaignEvent::CampaignStart {
            campaign: "pair",
            faults,
            inputs: 2,
            outputs: 1,
            threads: 1,
        }
    }

    fn finish(fault: usize, detected: usize, first: Option<u32>) -> CampaignEvent {
        CampaignEvent::FaultFinish {
            fault,
            worker: 0,
            detected,
            violations: if detected == 0 { 1 } else { 0 },
            observable: true,
            dropped: false,
            pairs: 4,
            first_detected: first,
        }
    }

    fn end(faults: usize, cancelled: bool) -> CampaignEvent {
        CampaignEvent::CampaignEnd {
            faults,
            dropped: 0,
            pairs: 8,
            words: 10,
            micros: 100,
            cancelled,
        }
    }

    #[test]
    fn builds_a_map_with_ttd_and_labels() {
        let obs = CoverageObserver::new();
        obs.set_labels(vec!["a s-a-0".into(), "a s-a-1".into()]);
        feed(
            &obs,
            &[
                start(2),
                finish(0, 2, Some(1)),
                finish(1, 0, None),
                end(2, false),
            ],
        );
        let map = obs.latest().expect("finished map");
        assert_eq!(map.records.len(), 2);
        assert_eq!(map.detected_count(), 1);
        assert!((map.coverage_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(map.records[0].time_to_detection(), Some(2));
        assert_eq!(map.records[0].label, "a s-a-0");
        assert_eq!(map.undetected().count(), 1);
        let report = map.undetected_report();
        assert!(report.contains("1/2 faults detected"), "{report}");
        assert!(report.contains("#1 a s-a-1"), "{report}");
    }

    #[test]
    fn dropped_at_carries_the_batch_ordinal() {
        let obs = CoverageObserver::new();
        feed(
            &obs,
            &[
                start(1),
                CampaignEvent::FaultDropped {
                    fault: 0,
                    worker: 0,
                    batch: 3,
                },
                CampaignEvent::FaultFinish {
                    fault: 0,
                    worker: 0,
                    detected: 1,
                    violations: 0,
                    observable: true,
                    dropped: true,
                    pairs: 192,
                    first_detected: Some(130),
                },
                end(1, false),
            ],
        );
        let map = obs.latest().expect("map");
        assert_eq!(map.records[0].dropped_at, Some(3));
        assert!(map.records[0].dropped);
    }

    #[test]
    fn cone_stats_attach_to_their_fault_record() {
        let obs = CoverageObserver::new();
        feed(
            &obs,
            &[
                start(2),
                CampaignEvent::ConeStats {
                    fault: 1,
                    worker: 0,
                    cone_ops: 3,
                    ops_evaluated: 6,
                    ops_skipped: 22,
                    frontier_died_at_level: Some(2),
                },
                finish(0, 1, Some(0)),
                finish(1, 0, None),
                end(2, false),
            ],
        );
        let map = obs.latest().expect("map");
        assert_eq!(map.records[0].cone_ops, None);
        assert_eq!(map.records[1].cone_ops, Some(3));
        assert_eq!(map.records[1].ops_skipped, Some(22));
        assert_eq!(map.records[1].frontier_died_at_level, Some(2));
        let json = map.to_json();
        let v = parse(&json).expect("parses");
        let recs = v.get("records").and_then(JsonValue::as_array).unwrap();
        assert!(recs[0].get("cone_ops").is_none());
        assert_eq!(
            recs[1].get("cone_ops").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            recs[1]
                .get("frontier_died_at_level")
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn fault_class_attaches_and_strips() {
        let obs = CoverageObserver::new();
        feed(
            &obs,
            &[
                start(2),
                CampaignEvent::FaultClass {
                    fault: 1,
                    representative: 0,
                    size: 2,
                },
                finish(0, 1, Some(0)),
                finish(1, 1, Some(0)),
                end(2, false),
            ],
        );
        let map = obs.latest().expect("map");
        assert_eq!(map.records[0].class_rep, None);
        assert_eq!(map.records[1].class_rep, Some(0));
        assert_eq!(map.records[1].class_size, Some(2));
        let json = map.to_json();
        let v = parse(&json).expect("parses");
        let recs = v.get("records").and_then(JsonValue::as_array).unwrap();
        assert!(recs[0].get("class_rep").is_none());
        assert_eq!(
            recs[1].get("class_rep").and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            recs[1].get("class_size").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let stripped = map.without_annotations();
        assert!(stripped
            .records
            .iter()
            .all(|r| r.class_rep.is_none() && r.class_size.is_none() && r.cone_ops.is_none()));
        assert_eq!(stripped.records[1].detected, map.records[1].detected);
    }

    #[test]
    fn cancellation_marks_the_prefix_map() {
        let obs = CoverageObserver::new();
        feed(
            &obs,
            &[
                start(5),
                finish(0, 1, Some(0)),
                finish(1, 1, Some(2)),
                CampaignEvent::Cancelled { completed: 2 },
                end(2, true),
            ],
        );
        let map = obs.latest().expect("map");
        assert!(map.cancelled);
        assert_eq!(map.records.len(), 2);
        assert_eq!(map.total_faults, 5);
    }

    #[test]
    fn json_form_is_valid_and_complete() {
        let obs = CoverageObserver::new();
        obs.set_labels(vec!["n1 s-a-1".into()]);
        feed(&obs, &[start(1), finish(0, 0, None), end(1, false)]);
        let json = obs.latest().expect("map").to_json();
        assert_eq!(validate_jsonl(&json), Ok(1));
        let v = parse(&json).expect("parses");
        assert_eq!(v.get("coverage").and_then(JsonValue::as_f64), Some(0.0));
        let recs = v.get("records").and_then(JsonValue::as_array).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("detected"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            recs[0].get("label").and_then(JsonValue::as_str),
            Some("n1 s-a-1")
        );
        assert!(recs[0].get("first_pair").is_none());
    }

    #[test]
    fn survives_back_to_back_campaigns() {
        let obs = CoverageObserver::new();
        feed(&obs, &[start(1), finish(0, 1, Some(0)), end(1, false)]);
        feed(&obs, &[start(1), finish(0, 0, None), end(1, false)]);
        let maps = obs.maps();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].detected_count(), 1);
        assert_eq!(maps[1].detected_count(), 0);
    }
}
