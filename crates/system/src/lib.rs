//! SCAL computer design — Chapter 7 of the paper.
//!
//! The chapter's thesis: the most cost-effective self-checking computer
//! matches each subsystem's code to its failure mode (Fig. 7.1/7.3):
//!
//! * the **CPU** runs alternating logic (time redundancy — cheapest where
//!   generating a space code would double the hardware);
//! * the **memory** and **bus** carry a single-bit **parity** code (cheapest
//!   where lines fail independently), with the address parity folded in to
//!   cover addressing faults (Dussault);
//! * the **ALPT/PALT translators** of Chapter 4 convert between the two at
//!   the boundary;
//! * a system **TSCC** plus the hardcore clock-disable of Chapter 5 close
//!   the loop.
//!
//! This crate builds that computer: a small accumulator CPU whose datapath
//! (self-dual adder of Fig. 2.2, logic unit, shifter and status latches of
//! Fig. 7.4) is *gate-level* SCAL driven in two-period alternating mode —
//! the control sequencer is host code, playing the paper's hardcore — plus
//! the Fig. 7.5 fault-tolerant configurations (ADR-style SCAL+normal pair,
//! and a TMR baseline) and the Fig. 7.2 reliability-economics model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adr;
pub mod campaign;
pub mod codes;
pub mod cpu;
pub mod datapath;
pub mod econ;
pub mod encoding;
pub mod machine;
pub mod memory;
pub mod programs;
pub mod retry;
pub mod status;
pub mod tmr;

pub use campaign::{CpuCampaign, CpuFaultResult, CpuUnit, Workload};
pub use cpu::{CheckError, Cpu, CpuMode, Op, Program, RunStats};
pub use datapath::Datapath;
pub use machine::ScalComputer;
pub use memory::ParityMemory;
