//! Instruction encoding: programs stored *in the parity memory*, so
//! instruction fetch flows through the same single-fault-detecting code as
//! data (Fig. 7.3's "parity encoded memory" holds everything; Fig. 7.1's
//! principle of matching each subsystem's code to its failure mode).
//!
//! Encoding: two bytes per instruction — an opcode byte and an operand byte
//! (zero for implicit-operand instructions) — each stored as its own parity-
//! checked word.

use crate::cpu::{CheckError, Cpu, Op, Program, RunStats};
use crate::memory::MemoryFault;

/// Opcode byte values. The encoding is sparse (distance-favouring) rather
/// than dense: opcodes are spread out so that many single-bit corruptions
/// land on undefined codes even before the parity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    Ldi = 0x11,
    Lda = 0x22,
    Sta = 0x33,
    Add = 0x44,
    Sub = 0x55,
    And = 0x66,
    Or = 0x77,
    Xor = 0x88,
    Shl = 0x99,
    Shr = 0xAA,
    Jmp = 0xBB,
    Jz = 0xCC,
    Hlt = 0xEE,
}

/// An instruction-decode failure during fetched execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FetchError {
    /// The memory's parity check rejected the fetch.
    Memory(MemoryFault),
    /// The opcode byte is not a defined instruction.
    IllegalOpcode {
        /// The fetched byte.
        byte: u8,
        /// The word address it came from.
        addr: u8,
    },
    /// The program region would overflow the 8-bit address space.
    ProgramTooLarge,
}

impl core::fmt::Display for FetchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FetchError::Memory(m) => write!(f, "fetch: {m}"),
            FetchError::IllegalOpcode { byte, addr } => {
                write!(f, "illegal opcode {byte:#04x} at {addr:#04x}")
            }
            FetchError::ProgramTooLarge => write!(f, "program exceeds the address space"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<MemoryFault> for FetchError {
    fn from(m: MemoryFault) -> Self {
        FetchError::Memory(m)
    }
}

fn encode_op(op: Op) -> (u8, u8) {
    match op {
        Op::Ldi(v) => (Opcode::Ldi as u8, v),
        Op::Lda(a) => (Opcode::Lda as u8, a),
        Op::Sta(a) => (Opcode::Sta as u8, a),
        Op::Add(a) => (Opcode::Add as u8, a),
        Op::Sub(a) => (Opcode::Sub as u8, a),
        Op::And(a) => (Opcode::And as u8, a),
        Op::Or(a) => (Opcode::Or as u8, a),
        Op::Xor(a) => (Opcode::Xor as u8, a),
        Op::Shl => (Opcode::Shl as u8, 0),
        Op::Shr => (Opcode::Shr as u8, 0),
        Op::Jmp(t) => (Opcode::Jmp as u8, t),
        Op::Jz(t) => (Opcode::Jz as u8, t),
        Op::Hlt => (Opcode::Hlt as u8, 0),
    }
}

fn decode_op(opcode: u8, operand: u8, addr: u8) -> Result<Op, FetchError> {
    Ok(match opcode {
        x if x == Opcode::Ldi as u8 => Op::Ldi(operand),
        x if x == Opcode::Lda as u8 => Op::Lda(operand),
        x if x == Opcode::Sta as u8 => Op::Sta(operand),
        x if x == Opcode::Add as u8 => Op::Add(operand),
        x if x == Opcode::Sub as u8 => Op::Sub(operand),
        x if x == Opcode::And as u8 => Op::And(operand),
        x if x == Opcode::Or as u8 => Op::Or(operand),
        x if x == Opcode::Xor as u8 => Op::Xor(operand),
        x if x == Opcode::Shl as u8 => Op::Shl,
        x if x == Opcode::Shr as u8 => Op::Shr,
        x if x == Opcode::Jmp as u8 => Op::Jmp(operand),
        x if x == Opcode::Jz as u8 => Op::Jz(operand),
        x if x == Opcode::Hlt as u8 => Op::Hlt,
        byte => return Err(FetchError::IllegalOpcode { byte, addr }),
    })
}

/// Loads a program into the CPU's parity memory starting at `base`
/// (two words per instruction).
///
/// # Errors
///
/// [`FetchError::ProgramTooLarge`] if it does not fit below address 256.
pub fn load_program(cpu: &mut Cpu, base: u8, program: &Program) -> Result<(), FetchError> {
    let words = program.0.len() * 2;
    if usize::from(base) + words > 256 {
        return Err(FetchError::ProgramTooLarge);
    }
    for (i, &op) in program.0.iter().enumerate() {
        let (opc, arg) = encode_op(op);
        let at = base + (i as u8) * 2;
        cpu.memory.write(at, opc);
        cpu.memory.write(at + 1, arg);
    }
    Ok(())
}

/// Errors from fetched execution: either a fetch/decode problem or a
/// datapath check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchedRunError {
    /// Instruction fetch failed.
    Fetch(FetchError),
    /// The datapath or data memory flagged.
    Check(CheckError),
}

impl core::fmt::Display for FetchedRunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FetchedRunError::Fetch(e) => write!(f, "{e}"),
            FetchedRunError::Check(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FetchedRunError {}

/// Runs a program previously stored with [`load_program`]: each instruction
/// is *fetched through the parity-checked memory*, decoded, and executed on
/// the SCAL datapath. A stuck memory cell or address line under the program
/// region is caught at fetch time.
///
/// # Errors
///
/// The first [`FetchedRunError`] encountered.
pub fn run_fetched(cpu: &mut Cpu, base: u8, budget: u64) -> Result<RunStats, FetchedRunError> {
    let mut remaining = budget;
    while remaining > 0 {
        remaining -= 1;
        // The architectural pc counts instructions relative to the base.
        let pc = cpu.pc();
        let addr = base.wrapping_add((pc as u8).wrapping_mul(2));
        let opc = cpu
            .memory
            .read(addr)
            .map_err(|e| FetchedRunError::Fetch(e.into()))?;
        let arg = cpu
            .memory
            .read(addr.wrapping_add(1))
            .map_err(|e| FetchedRunError::Fetch(e.into()))?;
        let op = decode_op(opc, arg, addr).map_err(FetchedRunError::Fetch)?;
        // Execute through the ordinary (checked) path: a one-instruction
        // program window at the current pc.
        let mut window = vec![Op::Hlt; pc + 2];
        window[pc] = op;
        let halted_before = cpu.halted();
        cpu.step(&Program(window)).map_err(FetchedRunError::Check)?;
        if cpu.halted() && !halted_before {
            break;
        }
        if cpu.halted() {
            break;
        }
    }
    Ok(cpu.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adr::sum_program;
    use crate::cpu::CpuMode;

    #[test]
    fn encode_decode_round_trip() {
        let ops = [
            Op::Ldi(7),
            Op::Lda(1),
            Op::Sta(2),
            Op::Add(3),
            Op::Sub(4),
            Op::And(5),
            Op::Or(6),
            Op::Xor(7),
            Op::Shl,
            Op::Shr,
            Op::Jmp(8),
            Op::Jz(9),
            Op::Hlt,
        ];
        for &op in &ops {
            let (o, a) = encode_op(op);
            assert_eq!(decode_op(o, a, 0).unwrap(), op);
        }
    }

    #[test]
    fn fetched_execution_matches_direct_execution() {
        let program = sum_program(9);
        let mut direct = Cpu::new(CpuMode::Alternating);
        direct.run(&program, 100_000).unwrap();

        let mut fetched = Cpu::new(CpuMode::Alternating);
        load_program(&mut fetched, 0x80, &program).unwrap();
        run_fetched(&mut fetched, 0x80, 100_000).unwrap();
        assert_eq!(
            fetched.memory.read(0x10).unwrap(),
            direct.memory.read(0x10).unwrap()
        );
        assert_eq!(fetched.acc(), direct.acc());
    }

    #[test]
    fn corrupted_instruction_word_is_caught_at_fetch() {
        let program = sum_program(5);
        let mut cpu = Cpu::new(CpuMode::Alternating);
        load_program(&mut cpu, 0x80, &program).unwrap();
        // Flip one bit of the third instruction's opcode word.
        cpu.memory.corrupt_bit(0x84, 5);
        let err = run_fetched(&mut cpu, 0x80, 100_000).unwrap_err();
        assert!(matches!(err, FetchedRunError::Fetch(FetchError::Memory(_))));
    }

    #[test]
    fn illegal_opcode_detected_even_with_consistent_parity() {
        // Write an undefined opcode legitimately (so parity is consistent):
        // the sparse opcode map catches it.
        let mut cpu = Cpu::new(CpuMode::Alternating);
        cpu.memory.write(0x80, 0x0F);
        cpu.memory.write(0x81, 0x00);
        let err = run_fetched(&mut cpu, 0x80, 10).unwrap_err();
        assert!(matches!(
            err,
            FetchedRunError::Fetch(FetchError::IllegalOpcode { byte: 0x0F, .. })
        ));
    }

    #[test]
    fn stuck_address_line_in_program_region_detected() {
        let program = sum_program(5);
        let mut cpu = Cpu::new(CpuMode::Alternating);
        load_program(&mut cpu, 0x80, &program).unwrap();
        cpu.memory.stick_address_line(7, false); // fetches land at 0x0x
        let err = run_fetched(&mut cpu, 0x80, 100).unwrap_err();
        assert!(matches!(err, FetchedRunError::Fetch(_)));
    }

    #[test]
    fn program_too_large_rejected() {
        let program = Program(vec![Op::Hlt; 100]);
        let mut cpu = Cpu::new(CpuMode::Alternating);
        assert_eq!(
            load_program(&mut cpu, 0xF0, &program),
            Err(FetchError::ProgramTooLarge)
        );
    }
}
