//! Shedletsky's *alternate data retry* (ADR) on a checked bus — the §7.4
//! comparison point \[SHED2\]: "when the system detects a fault, the
//! complemented signals are used and the correct values determined".
//!
//! The mechanism: a word travels with its parity bit over a bus with a
//! (possibly) stuck line. If the receiver's parity check fails, the word is
//! re-sent *complemented*. A single stuck line corrupts exactly one of the
//! two transmissions — the one whose true bit value differs from the stuck
//! value — so exactly one of them passes the parity check, and the receiver
//! recovers the word from the passing copy. Time redundancy turns a
//! detecting code into a correcting protocol.

/// A bus with `width + 1` lines (data + parity), optionally with one line
/// stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bus {
    width: u8,
    /// Stuck line: index `width` is the parity line.
    fault: Option<(u8, bool)>,
}

/// Result of an ADR transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The word the receiver accepted.
    pub value: u8,
    /// Whether the complemented retry was needed.
    pub retried: bool,
}

/// The transfer failed both the direct and the complemented attempt (more
/// than a single-line fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferError;

impl core::fmt::Display for TransferError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "both transfer attempts failed the parity check")
    }
}

impl std::error::Error for TransferError {}

fn parity(v: u8, bits: u8) -> bool {
    (v & ((1u16 << bits) - 1) as u8).count_ones() % 2 == 1
}

impl Bus {
    /// A healthy bus of `width ≤ 8` data lines.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || width > 8`.
    #[must_use]
    pub fn new(width: u8) -> Self {
        assert!((1..=8).contains(&width));
        Bus { width, fault: None }
    }

    /// Sticks line `line` (the parity line is index `width`) at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `line > width`.
    #[must_use]
    pub fn with_stuck_line(mut self, line: u8, value: bool) -> Self {
        assert!(line <= self.width);
        self.fault = Some((line, value));
        self
    }

    /// Raw physical transmission of `(data, parity_bit)`.
    fn transmit(&self, data: u8, p: bool) -> (u8, bool) {
        match self.fault {
            None => (data, p),
            Some((line, v)) if line == self.width => (data, v),
            Some((line, v)) => {
                let mask = 1u8 << line;
                let d = if v { data | mask } else { data & !mask };
                (d, p)
            }
        }
    }

    /// One ADR transfer of `value`: direct attempt, then complemented retry
    /// if parity fails at the receiver.
    ///
    /// # Errors
    ///
    /// [`TransferError`] if both attempts fail (outside the single-fault
    /// model).
    pub fn adr_transfer(&self, value: u8) -> Result<Transfer, TransferError> {
        let w = self.width;
        // Attempt 1: true data.
        let (d1, p1) = self.transmit(value, parity(value, w));
        if parity(d1, w) == p1 {
            return Ok(Transfer {
                value: d1,
                retried: false,
            });
        }
        // Attempt 2: complement *every* line — data and parity. The
        // receiver then checks that the received word is the complement of
        // a valid code word: parity(d̄2) == p̄2, i.e.
        // parity(d2) ⊕ (w mod 2) == ¬p2. (Complementing the parity line too
        // is what makes a stuck parity line recoverable on even widths,
        // where parity(x̄) = parity(x).)
        let comp = !value & (((1u16 << w) - 1) as u8);
        let (d2, p2) = self.transmit(comp, !parity(value, w));
        let complemented_ok = (parity(d2, w) ^ (w % 2 == 1)) != p2;
        if complemented_ok {
            let recovered = !d2 & (((1u16 << w) - 1) as u8);
            return Ok(Transfer {
                value: recovered,
                retried: true,
            });
        }
        Err(TransferError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_bus_never_retries() {
        let bus = Bus::new(8);
        for v in 0..=255u8 {
            let t = bus.adr_transfer(v).unwrap();
            assert_eq!(t.value, v);
            assert!(!t.retried);
        }
    }

    #[test]
    fn any_single_stuck_data_line_is_corrected() {
        for line in 0..8u8 {
            for stuck in [false, true] {
                let bus = Bus::new(8).with_stuck_line(line, stuck);
                for v in 0..=255u8 {
                    let t = bus.adr_transfer(v).unwrap();
                    assert_eq!(t.value, v, "line {line} stuck {stuck} value {v}");
                    // The retry fires exactly when the true bit disagrees
                    // with the stuck value.
                    let bit = (v >> line) & 1 == 1;
                    assert_eq!(t.retried, bit != stuck);
                }
            }
        }
    }

    #[test]
    fn stuck_parity_line_is_corrected_too() {
        for stuck in [false, true] {
            let bus = Bus::new(8).with_stuck_line(8, stuck);
            for v in [0u8, 1, 0x7F, 0xAA, 0xFF] {
                let t = bus.adr_transfer(v).unwrap();
                assert_eq!(t.value, v);
            }
        }
    }

    #[test]
    fn odd_widths_work() {
        for w in 1..=8u8 {
            let bus = Bus::new(w).with_stuck_line(0, true);
            for v in 0..(1u16 << w) as u8 {
                let t = bus.adr_transfer(v).unwrap();
                assert_eq!(t.value, v, "w={w} v={v}");
            }
        }
    }

    #[test]
    fn double_fault_is_reported_not_miscorrected() {
        // Outside the model: emulate by a bus whose stuck line plus a
        // manual second corruption defeats both attempts. Two data lines
        // stuck can only be emulated by composing transmissions here, so
        // check the error path directly via a contrived wrapper.
        let bus = Bus::new(4).with_stuck_line(0, true);
        // v = 0: attempt 1 corrupts bit0 (parity fails); attempt 2 sends
        // 0b1111 — bit0 stuck-1 agrees, parity passes, recovery works. So a
        // single fault never errors:
        assert!(bus.adr_transfer(0).is_ok());
        // The TransferError type still behaves.
        let e = TransferError;
        assert!(e.to_string().contains("both"));
    }
}
