//! Parity-coded memory with address-parity folding (Fig. 7.3, §4.3's
//! random-access discussion after Dussault).

/// A single-fault-detecting RAM: each word is stored with one parity bit
/// computed over the data *and the address* it was written to, so a single
/// stuck data line, a flipped storage cell, or a single bad address line on
/// either the write or the read is caught at read time.
#[derive(Debug, Clone)]
pub struct ParityMemory {
    words: Vec<u8>,
    parity: Vec<bool>,
    /// An injected stuck address line: `(bit index, stuck value)`.
    addr_fault: Option<(u8, bool)>,
}

/// A detected memory integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFault {
    /// The (requested) address whose read failed the parity check.
    pub addr: u8,
}

impl core::fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parity violation reading address {:#04x}", self.addr)
    }
}

impl std::error::Error for MemoryFault {}

fn parity8(v: u8) -> bool {
    v.count_ones() % 2 == 1
}

impl ParityMemory {
    /// Creates a zeroed memory of `size` words (max 256).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0 || size > 256`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0 && size <= 256, "8-bit address space");
        ParityMemory {
            words: vec![0; size],
            // Zero data at address a has parity = parity(a): store that so
            // power-up contents read back clean.
            parity: (0..size).map(|a| parity8(a as u8)).collect(),
            addr_fault: None,
        }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` iff the memory has no words (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn effective_addr(&self, addr: u8) -> u8 {
        match self.addr_fault {
            Some((bit, v)) => {
                let mask = 1u8 << bit;
                if v {
                    addr | mask
                } else {
                    addr & !mask
                }
            }
            None => addr,
        }
    }

    /// Writes `value` at `addr`, storing parity(data) ⊕ parity(address).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u8, value: u8) {
        let eff = self.effective_addr(addr);
        let i = eff as usize % self.words.len();
        self.words[i] = value;
        // Parity is computed from the *requested* address — a stuck address
        // line stores the word at the wrong location with a parity that can
        // only check out at the requested one.
        self.parity[i] = parity8(value) ^ parity8(addr);
    }

    /// Reads `addr`, checking parity(data) ⊕ parity(address) against the
    /// stored bit.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault`] if the check fails.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: u8) -> Result<u8, MemoryFault> {
        let eff = self.effective_addr(addr);
        let i = eff as usize % self.words.len();
        let v = self.words[i];
        if self.parity[i] == parity8(v) ^ parity8(addr) {
            Ok(v)
        } else {
            Err(MemoryFault { addr })
        }
    }

    /// Flips a stored data bit (a storage-cell fault).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn corrupt_bit(&mut self, addr: u8, bit: u8) {
        let i = addr as usize % self.words.len();
        self.words[i] ^= 1 << bit;
    }

    /// Injects a stuck address line affecting all subsequent accesses.
    pub fn stick_address_line(&mut self, bit: u8, value: bool) {
        self.addr_fault = Some((bit, value));
    }

    /// Removes the address fault.
    pub fn repair(&mut self) {
        self.addr_fault = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = ParityMemory::new(256);
        for a in 0..=255u8 {
            m.write(a, a.wrapping_mul(37));
        }
        for a in 0..=255u8 {
            assert_eq!(m.read(a).unwrap(), a.wrapping_mul(37));
        }
    }

    #[test]
    fn power_up_contents_read_clean() {
        let m = ParityMemory::new(64);
        for a in 0..64u8 {
            assert_eq!(m.read(a).unwrap(), 0);
        }
    }

    #[test]
    fn single_bit_corruption_detected() {
        let mut m = ParityMemory::new(16);
        m.write(5, 0b1010_0110);
        for bit in 0..8 {
            let mut m2 = m.clone();
            m2.corrupt_bit(5, bit);
            assert_eq!(m2.read(5), Err(MemoryFault { addr: 5 }), "bit {bit}");
        }
    }

    #[test]
    fn double_bit_corruption_escapes_as_expected() {
        // Parity is a distance-2 code: exactly the single-fault coverage the
        // model promises, no more.
        let mut m = ParityMemory::new(16);
        m.write(3, 0xF0);
        m.corrupt_bit(3, 0);
        m.corrupt_bit(3, 7);
        assert!(m.read(3).is_ok());
    }

    #[test]
    fn stuck_address_line_detected_on_read() {
        let mut m = ParityMemory::new(256);
        m.write(0b0000_0001, 0x11);
        m.write(0b0000_0011, 0x33);
        m.stick_address_line(1, true); // addr bit 1 stuck high
                                       // Reading 0b01 actually fetches 0b11, whose stored parity folds the
                                       // *written* address 0b11 — mismatch against requested 0b01.
        assert!(m.read(0b0000_0001).is_err());
        // Reading 0b11 is unaffected (stuck value agrees).
        assert_eq!(m.read(0b0000_0011).unwrap(), 0x33);
        m.repair();
        assert_eq!(m.read(0b0000_0001).unwrap(), 0x11);
    }

    #[test]
    fn stuck_address_line_on_write_detected() {
        let mut m = ParityMemory::new(256);
        m.write(0xFF, 0xAB);
        m.stick_address_line(0, false);
        m.write(0b0000_0101, 0x77); // lands at 0b100 with parity of 0b101
        m.repair();
        assert!(m.read(0b0000_0100).is_err(), "misdirected write detected");
    }
}
