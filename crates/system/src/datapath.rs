//! The gate-level SCAL datapath: self-dual adder, logic unit, shifter.

use scal_core::paper::ripple_adder;
use scal_netlist::{Circuit, GateKind, NodeId, Override};

/// Word width of the demonstration machine.
pub const WORD: usize = 8;

/// The CPU's combinational datapath as gate-level alternating networks.
///
/// * `adder` — the 8-bit ripple adder of self-dual full-adder slices
///   (Fig. 2.2): inputs `a0..a7, b0..b7, cin`, outputs `s0..s7, cout`.
///   Self-dual with **no added hardware** — the paper's flagship example.
/// * `logic` — the bitwise unit: inputs `a0..a7, b0..b7, phi`, outputs
///   `and0..7, or0..7, xor0..7`. Bitwise AND/OR are not self-dual, so each
///   bit is the Yamamoto extension — which collapses to `MAJ(a,b,φ)` for
///   AND and `MAJ(a,b,φ̄)` for OR — and XOR extends to the (self-dual)
///   three-input parity.
/// * shifting is pure wiring (self-dual trivially): performed by
///   [`Datapath::shift`], with the fill bit encoded as `φ` — the
///   alternating-logic representation of constant 0.
#[derive(Debug)]
pub struct Datapath {
    /// The ripple adder netlist.
    pub adder: Circuit,
    /// The logic-unit netlist.
    pub logic: Circuit,
    adder_overrides: Vec<Override>,
    logic_overrides: Vec<Override>,
}

impl Default for Datapath {
    fn default() -> Self {
        Self::new()
    }
}

impl Datapath {
    /// Builds the datapath netlists.
    #[must_use]
    pub fn new() -> Self {
        Datapath {
            adder: ripple_adder(WORD),
            logic: build_logic_unit(),
            adder_overrides: Vec::new(),
            logic_overrides: Vec::new(),
        }
    }

    /// Injects a persistent fault into the adder.
    pub fn fault_adder(&mut self, o: Override) {
        self.adder_overrides.push(o);
    }

    /// Injects a persistent fault into the logic unit.
    pub fn fault_logic(&mut self, o: Override) {
        self.logic_overrides.push(o);
    }

    /// Clears injected faults.
    pub fn clear_faults(&mut self) {
        self.adder_overrides.clear();
        self.logic_overrides.clear();
    }

    /// One-period adder evaluation: `(sum, carry)`.
    #[must_use]
    pub fn add_once(&self, a: u8, b: u8, cin: bool, complemented: bool) -> (u8, bool) {
        let mut ins = Vec::with_capacity(2 * WORD + 1);
        let (av, bv, cv) = if complemented {
            (!a, !b, !cin)
        } else {
            (a, b, cin)
        };
        for i in 0..WORD {
            ins.push((av >> i) & 1 == 1);
        }
        for i in 0..WORD {
            ins.push((bv >> i) & 1 == 1);
        }
        ins.push(cv);
        let out = self.adder.eval_with(&ins, &self.adder_overrides);
        let mut sum = 0u8;
        for (i, &bit) in out.iter().take(WORD).enumerate() {
            sum |= u8::from(bit) << i;
        }
        (sum, out[WORD])
    }

    /// One-period logic-unit evaluation: `(and, or, xor)` words. `phi` is
    /// the period clock (inputs must already be complemented when `phi`).
    #[must_use]
    pub fn logic_once(&self, a: u8, b: u8, phi: bool) -> (u8, u8, u8) {
        let (av, bv) = if phi { (!a, !b) } else { (a, b) };
        let mut ins = Vec::with_capacity(2 * WORD + 1);
        for i in 0..WORD {
            ins.push((av >> i) & 1 == 1);
        }
        for i in 0..WORD {
            ins.push((bv >> i) & 1 == 1);
        }
        ins.push(phi);
        let out = self.logic.eval_with(&ins, &self.logic_overrides);
        let word = |k: usize| -> u8 {
            let mut w = 0u8;
            for i in 0..WORD {
                w |= u8::from(out[k * WORD + i]) << i;
            }
            w
        };
        (word(0), word(1), word(2))
    }

    /// The self-dual shift of Fig. 7.4a, as wiring: `left` shifts toward the
    /// MSB. The fill bit is the period clock (`0` in the true period, `1` in
    /// the complemented one — the alternating encoding of constant 0).
    #[must_use]
    pub fn shift(value: u8, left: bool, phi: bool) -> u8 {
        let fill = u8::from(phi);
        if left {
            (value << 1) | fill
        } else {
            (value >> 1) | (fill << 7)
        }
    }
}

fn build_logic_unit() -> Circuit {
    let mut c = Circuit::new();
    let a: Vec<NodeId> = (0..WORD).map(|i| c.input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..WORD).map(|i| c.input(format!("b{i}"))).collect();
    let phi = c.input("phi");
    let nphi = c.not(phi);
    // AND*: MAJ(a,b,φ) as two-level NAND.
    let maj = |c: &mut Circuit, x: NodeId, y: NodeId, z: NodeId| {
        let g1 = c.nand(&[x, y]);
        let g2 = c.nand(&[x, z]);
        let g3 = c.nand(&[y, z]);
        c.nand(&[g1, g2, g3])
    };
    let ands: Vec<NodeId> = (0..WORD).map(|i| maj(&mut c, a[i], b[i], phi)).collect();
    let ors: Vec<NodeId> = (0..WORD).map(|i| maj(&mut c, a[i], b[i], nphi)).collect();
    let xors: Vec<NodeId> = (0..WORD)
        .map(|i| c.gate(GateKind::Xor, &[a[i], b[i], phi]))
        .collect();
    for (i, &n) in ands.iter().enumerate() {
        c.mark_output(format!("and{i}"), n);
    }
    for (i, &n) in ors.iter().enumerate() {
        c.mark_output(format!("or{i}"), n);
    }
    for (i, &n) in xors.iter().enumerate() {
        c.mark_output(format!("xor{i}"), n);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_adds_in_both_periods() {
        let dp = Datapath::new();
        for &(a, b, cin) in &[
            (0u8, 0u8, false),
            (17, 5, false),
            (200, 100, true),
            (255, 1, false),
        ] {
            let (s1, c1) = dp.add_once(a, b, cin, false);
            let wide = u16::from(a) + u16::from(b) + u16::from(cin);
            assert_eq!(s1, wide as u8);
            assert_eq!(c1, wide > 0xFF);
            // Complemented period: results complement.
            let (s2, c2) = dp.add_once(a, b, cin, true);
            assert_eq!(s2, !s1);
            assert_eq!(c2, !c1);
        }
    }

    #[test]
    fn logic_unit_truth_and_alternation() {
        let dp = Datapath::new();
        for &(a, b) in &[(0u8, 0u8), (0xAA, 0x55), (0xF0, 0x3C), (255, 255)] {
            let (and1, or1, xor1) = dp.logic_once(a, b, false);
            assert_eq!(and1, a & b);
            assert_eq!(or1, a | b);
            assert_eq!(xor1, a ^ b);
            let (and2, or2, xor2) = dp.logic_once(a, b, true);
            assert_eq!(and2, !and1);
            assert_eq!(or2, !or1);
            assert_eq!(xor2, !xor1);
        }
    }

    #[test]
    fn logic_unit_outputs_are_self_dual() {
        let dp = Datapath::new();
        // Check bit 0 of each function as a truth table over its cone
        // variables: full 17-input tables are too wide, so verify the
        // alternation property exhaustively on sampled words instead.
        for a in [0u8, 1, 3, 0x80, 0xFF] {
            for b in [0u8, 2, 0x7F, 0xAA] {
                let p1 = dp.logic_once(a, b, false);
                let p2 = dp.logic_once(a, b, true);
                assert_eq!(p2.0, !p1.0);
                assert_eq!(p2.1, !p1.1);
                assert_eq!(p2.2, !p1.2);
            }
        }
    }

    #[test]
    fn shift_is_self_dual_wiring() {
        for v in [0u8, 1, 0x80, 0xAB] {
            for left in [false, true] {
                let p1 = Datapath::shift(v, left, false);
                let p2 = Datapath::shift(!v, left, true);
                assert_eq!(p2, !p1, "v={v:#x} left={left}");
            }
        }
        assert_eq!(Datapath::shift(0b0000_0001, true, false), 0b0000_0010);
        assert_eq!(Datapath::shift(0b1000_0000, false, false), 0b0100_0000);
    }

    #[test]
    fn injected_fault_breaks_alternation_detectably() {
        let mut dp = Datapath::new();
        // Stick the adder's first sum output.
        let s0 = dp.adder.outputs()[0].node;
        dp.fault_adder(Override::stem(s0, false));
        let (s1, _) = dp.add_once(3, 1, false, false);
        let (s2, _) = dp.add_once(3, 1, false, true);
        // sum bit 0 of 3+1=4 is 0; stuck-0 leaves period 1 correct but
        // period 2 (complemented, expects 1) wrong -> non-alternating bit.
        assert_eq!(s1 & 1, 0);
        assert_eq!(s2 & 1, 0, "bit 0 must fail to alternate");
        dp.clear_faults();
        let (s2, _) = dp.add_once(3, 1, false, true);
        assert_eq!(s2 & 1, 1);
    }
}
