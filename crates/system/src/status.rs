//! The self-dual shift and status storage of Fig. 7.4, at gate level.
//!
//! In an alternating-logic CPU, registers see each value twice — true, then
//! complemented. Fig. 7.4a realizes a shift register stage with **two**
//! flip-flops per bit so the stored stream stays alternating; Fig. 7.4b
//! stores each status condition in two flip-flops (value and complement
//! captured in consecutive periods), so status read-out alternates and is
//! checkable like any other SCAL line.

use scal_netlist::{Circuit, NodeId, Sim};

/// Builds the Fig. 7.4a self-dual serial shift register: `bits` stages, one
/// serial input, one serial output, two flip-flops per stage (the input
/// stream `(v, v̄, …)` emerges unchanged `2·bits` periods later).
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn shift_register(bits: usize) -> Circuit {
    assert!(bits > 0);
    let mut c = Circuit::new();
    let input = c.input("serial_in");
    let mut wire: NodeId = input;
    for _ in 0..bits {
        let ff1 = c.dff(false);
        let ff2 = c.dff(true); // staggered inits keep power-up alternating
        c.connect_dff(ff1, wire);
        c.connect_dff(ff2, ff1);
        wire = ff2;
    }
    c.mark_output("serial_out", wire);
    c
}

/// Builds the Fig. 7.4b status store for one condition: input `status`
/// (alternating), outputs the latched pair one period behind. Fault-free,
/// the output pair alternates exactly like the input.
#[must_use]
pub fn status_store() -> Circuit {
    let mut c = Circuit::new();
    let status = c.input("status");
    let ff1 = c.dff(false);
    let ff2 = c.dff(true);
    c.connect_dff(ff1, status);
    c.connect_dff(ff2, ff1);
    c.mark_output("q", ff2);
    c
}

/// Drives an alternating bit stream through a circuit with one input and
/// one output, returning the output stream.
#[must_use]
pub fn drive_stream(circuit: &Circuit, values: &[bool]) -> Vec<bool> {
    let mut sim = Sim::new(circuit);
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        out.push(sim.step(&[v])[0]);
        out.push(sim.step(&[!v])[0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_register_delays_the_alternating_stream() {
        let bits = 3;
        let c = shift_register(bits);
        assert_eq!(c.cost().flip_flops, 2 * bits);
        let values = [true, false, false, true, true, false, true, false];
        let out = drive_stream(&c, &values);
        // After the 2*bits-period fill, the output replays the input stream.
        let delay = 2 * bits;
        for (i, &v) in values.iter().enumerate() {
            let t = 2 * i + delay;
            if t + 1 < out.len() {
                assert_eq!(out[t], v, "value {i}");
                assert_eq!(out[t + 1], !v, "complement {i}");
            }
        }
    }

    #[test]
    fn shift_register_output_alternates_even_during_fill() {
        let c = shift_register(4);
        let out = drive_stream(&c, &[true, true, false, true, false, false]);
        for pair in out.chunks(2) {
            assert_ne!(pair[0], pair[1], "power-up inits must keep alternation");
        }
    }

    #[test]
    fn status_store_keeps_alternation_and_value() {
        let c = status_store();
        let values = [true, false, true, true, false];
        let out = drive_stream(&c, &values);
        for (i, &v) in values.iter().enumerate() {
            let t = 2 * i + 2;
            if t + 1 < out.len() {
                assert_eq!(out[t], v);
                assert_eq!(out[t + 1], !v);
            }
        }
    }

    #[test]
    fn stuck_flip_flop_breaks_alternation_detectably() {
        let c = status_store();
        let ff = c.dffs()[0];
        let mut sim = Sim::new(&c);
        sim.attach(scal_netlist::Override::stem(ff, true));
        let mut nonalt = false;
        for v in [true, false, true, false] {
            let o1 = sim.step(&[v])[0];
            let o2 = sim.step(&[!v])[0];
            if o1 == o2 {
                nonalt = true;
            }
        }
        assert!(nonalt, "a stuck status flip-flop must break alternation");
    }
}
