//! Space-domain codes for system encoding (§7.2): parity, m-out-of-n, and
//! Berger — "the most cost-effective self-checking computer system should
//! use a combination of codes dependent on the performance characteristics
//! desired".
//!
//! These are the codes the paper weighs against alternating logic for each
//! subsystem: parity for memories/busses (distance 2, one extra line),
//! m-out-of-n or Berger for space-checked CPUs (unidirectional coverage).

/// A single-error-detecting parity code word over `bits` data bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityCode {
    /// Data width.
    pub bits: u8,
}

impl ParityCode {
    /// Encodes `data` into `(data, parity_bit)` (even parity).
    #[must_use]
    pub fn encode(self, data: u8) -> (u8, bool) {
        (data, data.count_ones() % 2 == 1)
    }

    /// Checks a received word.
    #[must_use]
    pub fn check(self, data: u8, parity: bool) -> bool {
        (data.count_ones() % 2 == 1) == parity
    }

    /// Redundant lines added.
    #[must_use]
    pub fn overhead(self) -> usize {
        1
    }
}

/// An m-out-of-n code checker: a word is valid iff it has exactly `m` ones
/// among `n` lines. Detects **all unidirectional faults** (any number of
/// lines stuck the same way changes the weight monotonically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MOutOfN {
    /// Required weight.
    pub m: u8,
    /// Word width.
    pub n: u8,
}

impl MOutOfN {
    /// `true` iff `word` (low `n` bits) is a code word.
    #[must_use]
    pub fn check(self, word: u16) -> bool {
        let masked = word & ((1u32 << self.n) - 1) as u16;
        masked.count_ones() == u32::from(self.m)
    }

    /// Number of code words.
    #[must_use]
    pub fn code_words(self) -> u64 {
        binomial(u64::from(self.n), u64::from(self.m))
    }

    /// Information capacity in bits (log2 of the code-word count, floored).
    #[must_use]
    pub fn capacity_bits(self) -> u32 {
        63 - self.code_words().leading_zeros()
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// A Berger code word: data bits plus the binary count of *zeros* in the
/// data. The cheapest separable all-unidirectional-fault-detecting code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BergerCode {
    /// Data width (≤ 8 here).
    pub bits: u8,
}

impl BergerCode {
    /// Number of check bits: ⌈log2(bits + 1)⌉.
    #[must_use]
    pub fn check_bits(self) -> u8 {
        let mut b = 0u8;
        while (1u16 << b) < u16::from(self.bits) + 1 {
            b += 1;
        }
        b
    }

    /// Encodes `data` into `(data, zero_count)`.
    #[must_use]
    pub fn encode(self, data: u8) -> (u8, u8) {
        let masked = if self.bits == 8 {
            data
        } else {
            data & ((1u16 << self.bits) - 1) as u8
        };
        (masked, self.bits - masked.count_ones() as u8)
    }

    /// Checks a received pair.
    #[must_use]
    pub fn check(self, data: u8, zero_count: u8) -> bool {
        self.encode(data).1 == zero_count
    }
}

/// Detects whether a unidirectional corruption (some subset of lines forced
/// to one value) escapes each code — the comparison behind the paper's
/// claim that parity covers *single* faults while m-out-of-n/Berger cover
/// *unidirectional* ones.
#[must_use]
pub fn unidirectional_escape_rates() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();

    // Parity on 8 bits: flip k bits all one way; escapes iff k even.
    let parity = ParityCode { bits: 8 };
    let mut escapes = 0usize;
    let mut total = 0usize;
    for data in 0..=255u8 {
        let (d, p) = parity.encode(data);
        // All unidirectional-to-1 corruptions of nonempty line subsets.
        for mask in 1..=255u8 {
            let corrupted = d | mask;
            if corrupted == d {
                continue; // not actually a change
            }
            total += 1;
            if parity.check(corrupted, p) {
                escapes += 1;
            }
        }
    }
    out.push(("parity(8)", escapes as f64 / total as f64));

    // Berger on 8 bits: zero escapes by construction.
    let berger = BergerCode { bits: 8 };
    let mut escapes = 0usize;
    let mut total = 0usize;
    for data in 0..=255u8 {
        let (d, z) = berger.encode(data);
        for mask in 1..=255u8 {
            let corrupted = d | mask;
            if corrupted == d {
                continue;
            }
            total += 1;
            if berger.check(corrupted, z) {
                escapes += 1;
            }
        }
    }
    out.push(("berger(8)", escapes as f64 / total as f64));

    // 3-out-of-6: force subsets of lines to 1.
    let code = MOutOfN { m: 3, n: 6 };
    let mut escapes = 0usize;
    let mut total = 0usize;
    for word in 0..64u16 {
        if !code.check(word) {
            continue;
        }
        for mask in 1..64u16 {
            let corrupted = word | mask;
            if corrupted == word {
                continue;
            }
            total += 1;
            if code.check(corrupted) {
                escapes += 1;
            }
        }
    }
    out.push(("3-out-of-6", escapes as f64 / total as f64));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_detects_all_single_flips() {
        let code = ParityCode { bits: 8 };
        for data in [0u8, 1, 0xAA, 0xFF] {
            let (d, p) = code.encode(data);
            assert!(code.check(d, p));
            for bit in 0..8 {
                assert!(!code.check(d ^ (1 << bit), p));
            }
            assert!(!code.check(d, !p));
        }
    }

    #[test]
    fn m_out_of_n_counts() {
        let code = MOutOfN { m: 2, n: 4 };
        assert_eq!(code.code_words(), 6);
        assert_eq!(code.capacity_bits(), 2);
        assert!(code.check(0b0011));
        assert!(!code.check(0b0111));
        assert!(!code.check(0b0001));
    }

    #[test]
    fn m_out_of_n_catches_every_unidirectional_fault() {
        let code = MOutOfN { m: 3, n: 6 };
        for word in 0..64u16 {
            if !code.check(word) {
                continue;
            }
            for mask in 1..64u16 {
                let up = word | mask;
                if up != word {
                    assert!(!code.check(up), "word {word:06b} mask {mask:06b}");
                }
                let down = word & !mask;
                if down != word {
                    assert!(!code.check(down));
                }
            }
        }
    }

    #[test]
    fn berger_check_bits_and_round_trip() {
        for bits in 1..=8u8 {
            let code = BergerCode { bits };
            assert!(code.check_bits() <= 4);
            for data in 0..(1u16 << bits) {
                let (d, z) = code.encode(data as u8);
                assert!(code.check(d, z));
            }
        }
        assert_eq!(BergerCode { bits: 8 }.check_bits(), 4);
        assert_eq!(BergerCode { bits: 7 }.check_bits(), 3);
    }

    #[test]
    fn berger_catches_every_unidirectional_fault() {
        let code = BergerCode { bits: 6 };
        for data in 0..64u8 {
            let (d, z) = code.encode(data);
            for mask in 1..64u8 {
                let up = d | mask;
                if up != d {
                    assert!(!code.check(up, z), "up {d:06b} mask {mask:06b}");
                }
                let down = d & !mask;
                if down != d {
                    assert!(!code.check(down, z));
                }
            }
        }
    }

    #[test]
    fn escape_rate_ordering_matches_the_paper() {
        let rates = unidirectional_escape_rates();
        let get = |name: &str| rates.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(get("parity(8)") > 0.0, "parity misses even-weight bursts");
        assert_eq!(get("berger(8)"), 0.0);
        assert_eq!(get("3-out-of-6"), 0.0);
    }
}
