//! The complete SCAL computer (Fig. 7.3): alternating CPU, parity memory,
//! and the real ALPT/PALT translator netlists at the bus boundary, with
//! latching fault containment.

use crate::cpu::{CheckError, Cpu, CpuMode, Program, RunStats};
use scal_netlist::{Circuit, Sim};
use scal_seq::{alpt, palt};

/// The CPU word width used by the bus translators.
const WORD: usize = crate::datapath::WORD;

/// The bus boundary of Fig. 7.3: a Chapter-4 ALPT on the way out of the
/// alternating domain and a PALT on the way back in, both instantiated as
/// the actual gate-level translator netlists and *simulated* per transfer.
#[derive(Debug)]
pub struct BusTranslator {
    alpt: Circuit,
    palt: Circuit,
}

impl Default for BusTranslator {
    fn default() -> Self {
        Self::new()
    }
}

impl BusTranslator {
    /// Builds 8-bit translators.
    #[must_use]
    pub fn new() -> Self {
        BusTranslator {
            alpt: alpt(WORD),
            palt: palt(WORD),
        }
    }

    /// Sends the alternating pair `(v, v̄)` through the ALPT netlist and
    /// returns the stored `(data, parity)` word. The data rail carries the
    /// complemented word (see `scal_seq::translator`); overall word parity
    /// is the code invariant.
    #[must_use]
    pub fn store(&self, v: u8) -> (u8, bool) {
        let mut sim = Sim::new(&self.alpt);
        let mut p1: Vec<bool> = (0..WORD).map(|i| (v >> i) & 1 == 1).collect();
        p1.push(false);
        sim.step(&p1);
        let mut p2: Vec<bool> = (0..WORD).map(|i| (v >> i) & 1 == 0).collect();
        p2.push(true);
        sim.step(&p2);
        let state = sim.state();
        let mut t = 0u8;
        for (i, &b) in state.iter().take(WORD).enumerate() {
            t |= u8::from(b) << i;
        }
        (t, state[WORD])
    }

    /// Reads a stored `(data, parity)` word back through the PALT netlist:
    /// returns `(first-period word, second-period word, code_ok)` where
    /// `code_ok` requires the 1-out-of-2 check pair to be one-hot in both
    /// periods.
    #[must_use]
    pub fn load(&self, t: u8, tp: bool) -> (u8, u8, bool) {
        let eval = |phi: bool| -> (u8, bool) {
            let mut ins: Vec<bool> = (0..WORD).map(|i| (t >> i) & 1 == 1).collect();
            ins.push(tp);
            ins.push(phi);
            let out = self.palt.eval(&ins);
            let mut w = 0u8;
            for (i, &b) in out.iter().take(WORD).enumerate() {
                w |= u8::from(b) << i;
            }
            (w, out[WORD] != out[WORD + 1])
        };
        let (w1, ok1) = eval(false);
        let (w2, ok2) = eval(true);
        (w1, w2, ok1 && ok2)
    }

    /// Full round trip: `v` out through the ALPT, back through the PALT,
    /// optionally with `corrupt_bit` flipped in the stored word (a bus or
    /// memory fault). Returns `(recovered_value, alternated, code_ok)`.
    #[must_use]
    pub fn round_trip(&self, v: u8, corrupt_bit: Option<u8>) -> (u8, bool, bool) {
        let (mut t, tp) = self.store(v);
        if let Some(b) = corrupt_bit {
            if (b as usize) < WORD {
                t ^= 1 << b;
            }
        }
        let (w1, w2, code_ok) = self.load(t, tp);
        (w1, w1 == !w2, code_ok)
    }
}

/// The assembled computer: an alternating-mode [`Cpu`] behind a latching
/// system checker (the Fig. 5.7 discipline: the first detected fault is held
/// and all further operation refused until repair), plus the bus translators
/// for external transfers.
#[derive(Debug)]
pub struct ScalComputer {
    /// The processor (public for fault injection).
    pub cpu: Cpu,
    /// The bus boundary.
    pub bus: BusTranslator,
    latched: Option<CheckError>,
}

impl Default for ScalComputer {
    fn default() -> Self {
        Self::new()
    }
}

impl ScalComputer {
    /// Builds the computer.
    #[must_use]
    pub fn new() -> Self {
        ScalComputer {
            cpu: Cpu::new(CpuMode::Alternating),
            bus: BusTranslator::new(),
            latched: None,
        }
    }

    /// The latched fault, if any (Fig. 5.7 semantics).
    #[must_use]
    pub fn latched_fault(&self) -> Option<&CheckError> {
        self.latched.as_ref()
    }

    /// Runs a program to completion under the latching checker.
    ///
    /// # Errors
    ///
    /// Returns the latched [`CheckError`] — once latched, all later calls
    /// fail immediately with the same fault until [`ScalComputer::repair`].
    pub fn run(&mut self, program: &Program, budget: u64) -> Result<RunStats, CheckError> {
        if let Some(f) = &self.latched {
            return Err(f.clone());
        }
        match self.cpu.run(program, budget) {
            Ok(stats) => Ok(stats),
            Err(e) => {
                self.latched = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Clears the latched fault (maintenance action).
    pub fn repair(&mut self) {
        self.latched = None;
        self.cpu.datapath.clear_faults();
        self.cpu.memory.repair();
    }

    /// Transfers a value out over the checked bus and back (exercising the
    /// real translator netlists), latching any code violation.
    ///
    /// # Errors
    ///
    /// Returns (and latches) a [`CheckError::NonAlternating`] if the PALT
    /// code pair flags the transfer.
    pub fn bus_round_trip(&mut self, v: u8) -> Result<u8, CheckError> {
        if let Some(f) = &self.latched {
            return Err(f.clone());
        }
        let (w, alternated, code_ok) = self.bus.round_trip(v, None);
        if alternated && code_ok {
            Ok(w)
        } else {
            let e = CheckError::NonAlternating {
                unit: "bus translator",
                pc: self.cpu.pc(),
            };
            self.latched = Some(e.clone());
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Op;
    use scal_netlist::Override;

    #[test]
    fn bus_round_trip_recovers_every_value() {
        let bus = BusTranslator::new();
        for v in [0u8, 1, 0x55, 0xAA, 0xFF, 37] {
            let (w, alternated, code_ok) = bus.round_trip(v, None);
            assert_eq!(w, v);
            assert!(alternated && code_ok);
        }
    }

    #[test]
    fn bus_flags_any_single_stored_bit_corruption() {
        let bus = BusTranslator::new();
        for v in [0u8, 0x3C, 0xFF] {
            for bit in 0..8u8 {
                let (_, _, code_ok) = bus.round_trip(v, Some(bit));
                assert!(!code_ok, "v={v:#x} bit {bit} must break the code");
            }
        }
    }

    #[test]
    fn computer_runs_programs() {
        let mut pc = ScalComputer::new();
        let p = Program(vec![
            Op::Ldi(20),
            Op::Sta(1),
            Op::Ldi(22),
            Op::Add(1),
            Op::Sta(2),
            Op::Hlt,
        ]);
        pc.run(&p, 100).unwrap();
        assert_eq!(pc.cpu.memory.read(2).unwrap(), 42);
        assert!(pc.latched_fault().is_none());
    }

    #[test]
    fn fault_latches_and_blocks_until_repair() {
        let mut pc = ScalComputer::new();
        let s0 = pc.cpu.datapath.adder.outputs()[0].node;
        pc.cpu.datapath.fault_adder(Override::stem(s0, true));
        let p = Program(vec![
            Op::Ldi(2),
            Op::Sta(1),
            Op::Ldi(2),
            Op::Add(1),
            Op::Hlt,
        ]);
        let err = pc.run(&p, 100).unwrap_err();
        assert!(matches!(err, CheckError::NonAlternating { .. }));
        // Latched: even a clean request now fails with the same fault.
        let again = pc.run(&Program(vec![Op::Hlt]), 10).unwrap_err();
        assert_eq!(err, again);
        pc.repair();
        // After repair the machine is usable (fresh CPU state retained).
        assert!(pc.latched_fault().is_none());
    }

    #[test]
    fn checked_bus_transfer_through_machine() {
        let mut pc = ScalComputer::new();
        assert_eq!(pc.bus_round_trip(0x5A).unwrap(), 0x5A);
    }
}
