//! A small program library for the demonstration CPU — realistic workloads
//! for the Chapter-7 experiments and fault campaigns.
//!
//! Calling convention: inputs are poked into fixed memory addresses before
//! the run; results land at [`RESULT`].

use crate::cpu::{Op, Program};

/// Address where programs leave their result.
pub const RESULT: u8 = 0x10;
/// First scratch/input address.
pub const ARG0: u8 = 0x40;
/// Second scratch/input address.
pub const ARG1: u8 = 0x41;

const TMP: u8 = 0x42;
const ONE: u8 = 0x43;

/// `RESULT = ARG0 * ARG1` (mod 256) by repeated addition.
#[must_use]
pub fn multiply() -> Program {
    Program(vec![
        Op::Ldi(1),
        Op::Sta(ONE),
        Op::Ldi(0),
        Op::Sta(RESULT),
        // loop (pc 4): while ARG1 != 0 { RESULT += ARG0; ARG1 -= 1 }
        Op::Lda(ARG1),
        Op::Jz(12),
        Op::Sub(ONE),
        Op::Sta(ARG1),
        Op::Lda(RESULT),
        Op::Add(ARG0),
        Op::Sta(RESULT),
        Op::Jmp(4),
        Op::Hlt, // 12
    ])
}

/// `RESULT = fib(ARG0)` (mod 256), iteratively.
#[must_use]
pub fn fibonacci() -> Program {
    // a at RESULT, b at TMP.
    Program(vec![
        Op::Ldi(1),
        Op::Sta(ONE),
        Op::Ldi(0),
        Op::Sta(RESULT), // a = 0
        Op::Ldi(1),
        Op::Sta(TMP), // b = 1
        // loop (pc 6): while ARG0 != 0 { (a, b) = (b, a + b); ARG0 -= 1 }
        Op::Lda(ARG0),
        Op::Jz(18),
        Op::Sub(ONE),
        Op::Sta(ARG0),
        Op::Lda(RESULT),
        Op::Add(TMP), // a + b
        Op::Sta(0x44),
        Op::Lda(TMP),
        Op::Sta(RESULT), // a = b
        Op::Lda(0x44),
        Op::Sta(TMP), // b = a + b
        Op::Jmp(6),
        Op::Hlt, // 18
    ])
}

/// `RESULT = popcount(ARG0)` using shifts and masking.
#[must_use]
pub fn popcount() -> Program {
    Program(vec![
        Op::Ldi(1),
        Op::Sta(ONE),
        Op::Ldi(0),
        Op::Sta(RESULT),
        Op::Ldi(8),
        Op::Sta(TMP), // 8 bit positions to examine
        // loop (pc 6):
        Op::Lda(TMP),
        Op::Jz(20),
        Op::Sub(ONE),
        Op::Sta(TMP),
        Op::Lda(ARG0),
        Op::And(ONE), // low bit
        Op::Jz(16),
        Op::Lda(RESULT),
        Op::Add(ONE),
        Op::Sta(RESULT),
        Op::Lda(ARG0), // 16
        Op::Shr,
        Op::Sta(ARG0),
        Op::Jmp(6),
        Op::Hlt, // 20
    ])
}

/// `RESULT = XOR-checksum of the words at addresses 0x60..0x60+ARG0`.
#[must_use]
pub fn checksum() -> Program {
    // Without indexed addressing, unroll for a fixed block of 4.
    Program(vec![
        Op::Ldi(0),
        Op::Xor(0x60),
        Op::Xor(0x61),
        Op::Xor(0x62),
        Op::Xor(0x63),
        Op::Sta(RESULT),
        Op::Hlt,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, CpuMode};

    fn run_with(program: &Program, setup: &[(u8, u8)], mode: CpuMode) -> Cpu {
        let mut cpu = Cpu::new(mode);
        for &(a, v) in setup {
            cpu.memory.write(a, v);
        }
        cpu.run(program, 1_000_000).unwrap();
        assert!(cpu.halted());
        cpu
    }

    #[test]
    fn multiply_works_in_both_modes() {
        for mode in [CpuMode::Normal, CpuMode::Alternating] {
            for (a, b) in [(0u8, 5u8), (7, 6), (13, 11), (255, 2)] {
                let cpu = run_with(&multiply(), &[(ARG0, a), (ARG1, b)], mode);
                assert_eq!(
                    cpu.memory.read(RESULT).unwrap(),
                    a.wrapping_mul(b),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn fibonacci_sequence() {
        let expect = [0u8, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
        for (n, &f) in expect.iter().enumerate() {
            let cpu = run_with(&fibonacci(), &[(ARG0, n as u8)], CpuMode::Alternating);
            assert_eq!(cpu.memory.read(RESULT).unwrap(), f, "fib({n})");
        }
    }

    #[test]
    fn popcount_all_byte_shapes() {
        for v in [0u8, 1, 0x80, 0xAA, 0x55, 0xFF, 0x3C] {
            let cpu = run_with(&popcount(), &[(ARG0, v)], CpuMode::Alternating);
            assert_eq!(
                u32::from(cpu.memory.read(RESULT).unwrap()),
                v.count_ones(),
                "popcount({v:#04x})"
            );
        }
    }

    #[test]
    fn checksum_of_a_block() {
        let block = [(0x60u8, 0x12u8), (0x61, 0x34), (0x62, 0x56), (0x63, 0x78)];
        let cpu = run_with(&checksum(), &block, CpuMode::Alternating);
        assert_eq!(cpu.memory.read(RESULT).unwrap(), 0x12 ^ 0x34 ^ 0x56 ^ 0x78);
    }

    #[test]
    fn logic_unit_fault_campaign_over_program_suite() {
        // Every collapsed fault of the gate-level logic unit, against the
        // popcount + checksum workloads: no undetected wrong answers in
        // alternating mode.
        let report = crate::campaign::Campaign::new(crate::campaign::CpuUnit::Logic).run();
        assert_eq!(
            report.undetected_wrong(),
            0,
            "single-fault coverage must hold"
        );
    }
}
