//! The reliability-economics trade-off of §7.2 / Fig. 7.2.
//!
//! The paper argues by a benefit/cost/utility sketch that for typical cost
//! curves, single-fault protection maximizes utility: benefit saturates as
//! protection widens while cost keeps climbing, so "the peak utility is
//! reached when single fault protection is used".

/// Discrete degrees of fault protection (the x-axis of Fig. 7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protection {
    /// No checking at all.
    None,
    /// Single stuck-at fault protection (the SCAL design point).
    SingleFault,
    /// Unidirectional multi-line faults.
    Unidirectional,
    /// Arbitrary multiple faults.
    MultipleFault,
}

impl Protection {
    /// All degrees in increasing order of coverage.
    #[must_use]
    pub fn all() -> [Protection; 4] {
        [
            Protection::None,
            Protection::SingleFault,
            Protection::Unidirectional,
            Protection::MultipleFault,
        ]
    }

    /// Fraction of field failures covered under the paper's single-fault
    /// prevalence assumption (§1.2: "a high percentage of the physical
    /// failures … manifested as logical failures on a single line").
    #[must_use]
    pub fn coverage(self) -> f64 {
        match self {
            Protection::None => 0.0,
            Protection::SingleFault => 0.90,
            Protection::Unidirectional => 0.96,
            Protection::MultipleFault => 0.99,
        }
    }

    /// Relative hardware/design cost of optimal designs achieving the
    /// degree (cost grows super-linearly in coverage).
    #[must_use]
    pub fn cost(self) -> f64 {
        match self {
            Protection::None => 0.0,
            Protection::SingleFault => 1.0,
            Protection::Unidirectional => 2.2,
            Protection::MultipleFault => 4.0,
        }
    }
}

/// One bar group of Fig. 7.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconPoint {
    /// The protection degree.
    pub degree: Protection,
    /// Owner benefit of the achieved reliability.
    pub benefit: f64,
    /// Design cost.
    pub cost: f64,
    /// Utility = benefit − cost.
    pub utility: f64,
}

/// Evaluates the trade-off for a given value-of-coverage scale
/// (benefit = `value * coverage`).
#[must_use]
pub fn trade_off(value: f64) -> Vec<EconPoint> {
    Protection::all()
        .into_iter()
        .map(|d| {
            let benefit = value * d.coverage();
            let cost = d.cost();
            EconPoint {
                degree: d,
                benefit,
                cost,
                utility: benefit - cost,
            }
        })
        .collect()
}

/// The degree with maximum utility.
#[must_use]
pub fn optimal_degree(value: f64) -> Protection {
    trade_off(value)
        .into_iter()
        .max_by(|a, b| a.utility.partial_cmp(&b.utility).expect("finite"))
        .expect("non-empty")
        .degree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_peaks_for_typical_values() {
        // Fig 7.2's qualitative claim: for the plotted (typical) curves the
        // peak utility lands on single-fault protection.
        for value in [2.0, 3.0, 5.0, 10.0] {
            assert_eq!(
                optimal_degree(value),
                Protection::SingleFault,
                "value={value}"
            );
        }
    }

    #[test]
    fn extremes_move_the_optimum() {
        // Worthless reliability: do nothing. Priceless: pay for everything.
        assert_eq!(optimal_degree(0.1), Protection::None);
        assert_eq!(optimal_degree(200.0), Protection::MultipleFault);
    }

    #[test]
    fn curves_are_monotone() {
        let points = trade_off(5.0);
        for w in points.windows(2) {
            assert!(w[1].benefit >= w[0].benefit);
            assert!(w[1].cost >= w[0].cost);
        }
    }
}
