//! The fault-tolerant alternating-logic configuration of Fig. 7.5 and the
//! §7.4 cost analysis against Shedletsky's ADR and TMR.
//!
//! A normal CPU and a SCAL CPU run in parallel at full speed: disagreement
//! is the space-domain check. On the first mismatch the SCAL CPU re-executes
//! in full two-period alternating mode; its self-consistency (alternation)
//! arbitrates which member is faulty, the faulty member is removed, and the
//! system continues — at half speed if the survivor is the SCAL CPU running
//! checked.

use crate::cpu::{Cpu, CpuMode, Op, Program};

/// Which member carries an injected fault in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultyMember {
    /// The conventional CPU.
    Normal,
    /// The SCAL-capable CPU.
    Scal,
}

/// Result of an ADR-style run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdrOutcome {
    /// The final accumulator value.
    pub acc: u8,
    /// Instructions retired.
    pub instructions: u64,
    /// Mismatches observed between the two members.
    pub mismatches: u64,
    /// Datapath periods spent across the run (the speed cost).
    pub periods: u64,
    /// Which member was diagnosed faulty, if any.
    pub removed: Option<FaultyMember>,
    /// Dynamic check errors raised by the SCAL member while arbitrating.
    pub checks_fired: u64,
}

/// Runs `program` on the Fig. 7.5 pair. `inject` optionally sticks the given
/// adder sum-bit in one member before the run.
///
/// # Panics
///
/// Panics if the program exceeds the instruction budget or misbehaves in a
/// way unrelated to the injected fault.
#[must_use]
pub fn run_pair(program: &Program, inject: Option<(FaultyMember, u8)>) -> AdrOutcome {
    let mut normal = Cpu::new(CpuMode::Normal);
    // The SCAL member runs *unchecked single-period* while agreeing
    // (full speed), switching to alternating mode after a mismatch.
    let mut scal = Cpu::new(CpuMode::Normal);

    if let Some((member, bit)) = inject {
        let target = match member {
            FaultyMember::Normal => &mut normal,
            FaultyMember::Scal => &mut scal,
        };
        let node = target.datapath.adder.outputs()[bit as usize].node;
        target
            .datapath
            .fault_adder(scal_netlist::Override::stem(node, false));
    }

    let mut outcome = AdrOutcome {
        acc: 0,
        instructions: 0,
        mismatches: 0,
        periods: 0,
        removed: None,
        checks_fired: 0,
    };

    let budget = 100_000u64;
    let mut steps = 0u64;
    while steps < budget {
        steps += 1;
        match outcome.removed {
            None => {
                normal.step(program).expect("normal member runs unchecked");
                scal.step(program).expect("scal member runs unchecked here");
                outcome.instructions += 1;
                if normal.acc() != scal.acc() || normal.pc() != scal.pc() {
                    outcome.mismatches += 1;
                    // Arbitrate: re-run the SCAL member's last computation in
                    // alternating mode by replaying from the normal member's
                    // pre-divergence state is impossible here, so use the
                    // SCAL member's self-check on its *current* datapath: a
                    // checked no-op addition acts as the in-situ test.
                    let consistent = scal_self_test(&mut scal, &mut outcome);
                    if consistent {
                        // Normal member is faulty: copy the SCAL state over.
                        outcome.removed = Some(FaultyMember::Normal);
                        sync(&scal, &mut normal);
                    } else {
                        outcome.removed = Some(FaultyMember::Scal);
                        sync(&normal, &mut scal);
                    }
                }
                if normal.halted() && scal.halted() {
                    break;
                }
            }
            Some(FaultyMember::Normal) => {
                // Survivor: the SCAL CPU, now in checked alternating mode —
                // the paper's half-speed regime.
                if scal.mode() != CpuMode::Alternating {
                    scal = promote_to_alternating(&scal);
                }
                match scal.step(program) {
                    Ok(()) => {}
                    Err(_) => outcome.checks_fired += 1,
                }
                outcome.instructions += 1;
                if scal.halted() {
                    break;
                }
            }
            Some(FaultyMember::Scal) => {
                normal.step(program).expect("survivor runs");
                outcome.instructions += 1;
                if normal.halted() {
                    break;
                }
            }
        }
    }

    let survivor = match outcome.removed {
        Some(FaultyMember::Normal) => &scal,
        _ => &normal,
    };
    outcome.acc = survivor.acc();
    outcome.periods = normal.stats().periods + scal.stats().periods;
    outcome
}

/// Checks the SCAL member's datapath self-consistency with a two-period
/// probe addition (alternating-logic arbitration).
fn scal_self_test(scal: &mut Cpu, outcome: &mut AdrOutcome) -> bool {
    let probes = [(0x35u8, 0x4Au8), (0xFF, 0x01), (0x00, 0x00), (0xA5, 0x5A)];
    for &(a, b) in &probes {
        let (s1, c1) = scal.datapath.add_once(a, b, false, false);
        let (s2, c2) = scal.datapath.add_once(a, b, false, true);
        if s2 != !s1 || c2 == c1 {
            outcome.checks_fired += 1;
            return false;
        }
    }
    true
}

/// Copies the architectural state of `from` into `to` (vote resolution).
fn sync(from: &Cpu, to: &mut Cpu) {
    to.copy_architectural_state(from);
}

/// Rebuilds a CPU in alternating mode carrying over the architectural state.
fn promote_to_alternating(old: &Cpu) -> Cpu {
    let mut fresh = Cpu::new(CpuMode::Alternating);
    fresh.copy_architectural_state(old);
    fresh
}

/// The §7.4 hardware cost model: `N` the cost of a normal system, `A` the
/// factor to convert it to alternating logic, `S` the factor for a space
/// self-checking version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Alternating-logic conversion factor (≈ 1.8–2).
    pub a: f64,
    /// Space-domain self-checking factor (≈ 2).
    pub s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { a: 1.8, s: 2.0 }
    }
}

impl CostModel {
    /// Shedletsky's ADR built by independent conversions: `A·S·N` ≈ 4N —
    /// "probably worse than a TMR CPU which has similar performance".
    #[must_use]
    pub fn adr_factor(&self) -> f64 {
        self.a * self.s
    }

    /// Triple modular redundancy: `3N` (ignoring the voter).
    #[must_use]
    pub fn tmr_factor(&self) -> f64 {
        3.0
    }

    /// The Fig. 7.5 configuration: one normal CPU plus one SCAL CPU,
    /// `(1 + A)·N` — "comparable with TMR and may cost less than TMR if the
    /// value of A is less than two".
    #[must_use]
    pub fn parallel_scal_factor(&self) -> f64 {
        1.0 + self.a
    }
}

/// A convenient fixed workload for the ADR/TMR experiments: sums the first
/// `k` integers by looping (result `k(k+1)/2 mod 256` at address 0x10).
#[must_use]
pub fn sum_program(k: u8) -> Program {
    Program(vec![
        Op::Ldi(k),
        Op::Sta(0x20), // counter
        Op::Ldi(0),
        Op::Sta(0x10), // sum
        Op::Ldi(1),
        Op::Sta(0x21), // constant 1
        // loop (pc 6):
        Op::Lda(0x20),
        Op::Jz(14),
        Op::Lda(0x10),
        Op::Add(0x20),
        Op::Sta(0x10),
        Op::Lda(0x20),
        Op::Sub(0x21),
        Op::Sta(0x20),
        // pc 14:
        Op::Jz(16),
        Op::Jmp(6),
        Op::Hlt, // pc 16
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expected_sum(k: u8) -> u8 {
        (0..=u16::from(k)).sum::<u16>() as u8
    }

    #[test]
    fn fault_free_pair_agrees_and_finishes() {
        let out = run_pair(&sum_program(10), None);
        assert_eq!(out.acc, 0); // final Lda(0x20) leaves 0 in acc at halt path
        assert_eq!(out.mismatches, 0);
        assert!(out.removed.is_none());
    }

    #[test]
    fn faulty_normal_member_is_removed_and_result_correct() {
        let out = run_pair(&sum_program(9), Some((FaultyMember::Normal, 0)));
        assert!(out.mismatches >= 1);
        assert_eq!(out.removed, Some(FaultyMember::Normal));
        // The survivor (SCAL member) completes correctly; verify via memory
        // is not exposed here, so check the diagnosis instead and that the
        // run terminated.
        assert!(out.instructions > 0);
    }

    #[test]
    fn faulty_scal_member_is_removed() {
        let out = run_pair(&sum_program(9), Some((FaultyMember::Scal, 0)));
        assert!(out.mismatches >= 1);
        assert_eq!(out.removed, Some(FaultyMember::Scal));
    }

    #[test]
    fn sum_program_is_correct_standalone() {
        let mut cpu = Cpu::new(CpuMode::Alternating);
        cpu.run(&sum_program(10), 100_000).unwrap();
        assert_eq!(cpu.memory.read(0x10).unwrap(), expected_sum(10));
    }

    #[test]
    fn cost_model_orders_as_the_paper_argues() {
        let m = CostModel::default();
        assert!(m.adr_factor() > m.tmr_factor(), "ADR ≈ 4N worse than TMR");
        assert!(
            m.parallel_scal_factor() < m.tmr_factor(),
            "Fig 7.5 beats TMR when A < 2"
        );
        let expensive = CostModel { a: 2.4, s: 2.0 };
        assert!(expensive.parallel_scal_factor() > expensive.tmr_factor());
    }
}
