//! The demonstration accumulator CPU with a gate-level SCAL datapath.
//!
//! The control sequencer (fetch/decode, program counter) is host code — the
//! paper's *hardcore*, which Chapter 5 shows cannot itself be made
//! self-checking from standard gates — while every data computation flows
//! through the gate-level alternating datapath of [`crate::Datapath`] and
//! the parity memory of [`crate::ParityMemory`].

use crate::datapath::Datapath;
use crate::memory::{MemoryFault, ParityMemory};

/// Instruction set of the demonstration machine (8-bit accumulator,
/// absolute 8-bit addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load immediate into the accumulator.
    Ldi(u8),
    /// Load from memory.
    Lda(u8),
    /// Store to memory.
    Sta(u8),
    /// Add memory to accumulator (through the self-dual adder).
    Add(u8),
    /// Subtract memory from accumulator (add the two's complement, again
    /// through the adder).
    Sub(u8),
    /// Bitwise AND with memory.
    And(u8),
    /// Bitwise OR with memory.
    Or(u8),
    /// Bitwise XOR with memory.
    Xor(u8),
    /// Shift accumulator left one bit.
    Shl,
    /// Shift accumulator right one bit.
    Shr,
    /// Unconditional jump.
    Jmp(u8),
    /// Jump if the accumulator is zero.
    Jz(u8),
    /// Halt.
    Hlt,
}

/// A program: a sequence of instructions (instruction storage lives in the
/// hardcore/control domain, like the paper's Fig. 7.3 which checks the data
/// paths).
#[derive(Debug, Clone, Default)]
pub struct Program(pub Vec<Op>);

/// Operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Conventional single-period operation, no checking.
    Normal,
    /// SCAL operation: every datapath result is computed twice (true and
    /// complemented periods) and checked for alternation — twice the time,
    /// single-fault detection (the paper's central trade).
    Alternating,
}

/// A dynamic check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// A datapath output failed to alternate across the two periods.
    NonAlternating {
        /// Which unit flagged ("adder", "logic", "shift").
        unit: &'static str,
        /// Program counter at detection.
        pc: usize,
    },
    /// The parity memory flagged a read.
    Memory(MemoryFault),
    /// The program ran past its end without `Hlt`.
    RanOffEnd,
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckError::NonAlternating { unit, pc } => {
                write!(f, "non-alternating {unit} output at pc {pc}")
            }
            CheckError::Memory(m) => write!(f, "{m}"),
            CheckError::RanOffEnd => write!(f, "program ran off the end"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<MemoryFault> for CheckError {
    fn from(m: MemoryFault) -> Self {
        CheckError::Memory(m)
    }
}

/// Statistics of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Datapath periods consumed (2 per datapath op in alternating mode).
    pub periods: u64,
}

/// The accumulator CPU.
#[derive(Debug)]
pub struct Cpu {
    /// Gate-level datapath (public for fault injection).
    pub datapath: Datapath,
    /// Parity-coded data memory (public for fault injection).
    pub memory: ParityMemory,
    mode: CpuMode,
    acc: u8,
    zero_flag: bool,
    carry_flag: bool,
    pc: usize,
    halted: bool,
    stats: RunStats,
}

impl Cpu {
    /// Creates a CPU with zeroed state and a 256-word memory.
    #[must_use]
    pub fn new(mode: CpuMode) -> Self {
        Cpu {
            datapath: Datapath::new(),
            memory: ParityMemory::new(256),
            mode,
            acc: 0,
            zero_flag: true,
            carry_flag: false,
            pc: 0,
            halted: false,
            stats: RunStats::default(),
        }
    }

    /// The accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.acc
    }

    /// The zero flag (status storage of Fig. 7.4b).
    #[must_use]
    pub fn zero_flag(&self) -> bool {
        self.zero_flag
    }

    /// The carry flag.
    #[must_use]
    pub fn carry_flag(&self) -> bool {
        self.carry_flag
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// `true` after `Hlt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The operating mode.
    #[must_use]
    pub fn mode(&self) -> CpuMode {
        self.mode
    }

    fn alu_add(&mut self, operand: u8, cin: bool) -> Result<(u8, bool), CheckError> {
        let (s1, c1) = self.datapath.add_once(self.acc, operand, cin, false);
        self.stats.periods += 1;
        if self.mode == CpuMode::Alternating {
            let (s2, c2) = self.datapath.add_once(self.acc, operand, cin, true);
            self.stats.periods += 1;
            if s2 != !s1 || c2 == c1 {
                return Err(CheckError::NonAlternating {
                    unit: "adder",
                    pc: self.pc,
                });
            }
        }
        Ok((s1, c1))
    }

    fn alu_logic(&mut self, operand: u8) -> Result<(u8, u8, u8), CheckError> {
        let p1 = self.datapath.logic_once(self.acc, operand, false);
        self.stats.periods += 1;
        if self.mode == CpuMode::Alternating {
            let p2 = self.datapath.logic_once(self.acc, operand, true);
            self.stats.periods += 1;
            if p2.0 != !p1.0 || p2.1 != !p1.1 || p2.2 != !p1.2 {
                return Err(CheckError::NonAlternating {
                    unit: "logic",
                    pc: self.pc,
                });
            }
        }
        Ok(p1)
    }

    fn shift(&mut self, left: bool) -> Result<u8, CheckError> {
        let r1 = Datapath::shift(self.acc, left, false);
        self.stats.periods += 1;
        if self.mode == CpuMode::Alternating {
            let r2 = Datapath::shift(!self.acc, left, true);
            self.stats.periods += 1;
            if r2 != !r1 {
                return Err(CheckError::NonAlternating {
                    unit: "shift",
                    pc: self.pc,
                });
            }
        }
        Ok(r1)
    }

    fn set_acc(&mut self, v: u8) {
        self.acc = v;
        self.zero_flag = v == 0;
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] on any dynamic check failure; the machine
    /// halts at the fault (the paper's clock-disable semantics).
    pub fn step(&mut self, program: &Program) -> Result<(), CheckError> {
        if self.halted {
            return Ok(());
        }
        let Some(&op) = program.0.get(self.pc) else {
            self.halted = true;
            return Err(CheckError::RanOffEnd);
        };
        let mut next_pc = self.pc + 1;
        match op {
            Op::Ldi(v) => self.set_acc(v),
            Op::Lda(a) => {
                let v = self.memory.read(a)?;
                self.set_acc(v);
            }
            Op::Sta(a) => self.memory.write(a, self.acc),
            Op::Add(a) => {
                let v = self.memory.read(a)?;
                let (s, c) = self.alu_add(v, false)?;
                self.carry_flag = c;
                self.set_acc(s);
            }
            Op::Sub(a) => {
                let v = self.memory.read(a)?;
                let (s, c) = self.alu_add(!v, true)?;
                self.carry_flag = c;
                self.set_acc(s);
            }
            Op::And(a) => {
                let v = self.memory.read(a)?;
                let (and, _, _) = self.alu_logic(v)?;
                self.set_acc(and);
            }
            Op::Or(a) => {
                let v = self.memory.read(a)?;
                let (_, or, _) = self.alu_logic(v)?;
                self.set_acc(or);
            }
            Op::Xor(a) => {
                let v = self.memory.read(a)?;
                let (_, _, xor) = self.alu_logic(v)?;
                self.set_acc(xor);
            }
            Op::Shl => {
                let r = self.shift(true)?;
                self.set_acc(r);
            }
            Op::Shr => {
                let r = self.shift(false)?;
                self.set_acc(r);
            }
            Op::Jmp(t) => next_pc = t as usize,
            Op::Jz(t) => {
                if self.zero_flag {
                    next_pc = t as usize;
                }
            }
            Op::Hlt => {
                self.halted = true;
                next_pc = self.pc;
            }
        }
        self.pc = next_pc;
        self.stats.instructions += 1;
        Ok(())
    }

    /// Copies the architectural state (accumulator, flags, program counter,
    /// halt latch, and memory contents) from another CPU — the vote/sync
    /// primitive of the redundant configurations in [`crate::adr`] and
    /// [`crate::tmr`]. Datapath faults and statistics are *not* copied.
    pub fn copy_architectural_state(&mut self, from: &Cpu) {
        self.acc = from.acc;
        self.zero_flag = from.zero_flag;
        self.carry_flag = from.carry_flag;
        self.pc = from.pc;
        self.halted = from.halted;
        self.memory = from.memory.clone();
    }

    /// A fresh CPU carrying only this one's architectural state (no faults,
    /// no statistics) — handy as a voting reference.
    #[must_use]
    pub fn clone_architectural(&self) -> Cpu {
        let mut fresh = Cpu::new(self.mode);
        fresh.copy_architectural_state(self);
        fresh
    }

    /// Runs until halt or error, with an instruction budget.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CheckError`].
    pub fn run(&mut self, program: &Program, budget: u64) -> Result<RunStats, CheckError> {
        let mut remaining = budget;
        while !self.halted && remaining > 0 {
            self.step(program)?;
            remaining -= 1;
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Override;

    /// Computes 6 * 7 by repeated addition, result in memory[0x10].
    fn times_program() -> Program {
        Program(vec![
            Op::Ldi(7),
            Op::Sta(0x20), // addend
            Op::Ldi(6),
            Op::Sta(0x21), // counter
            Op::Ldi(0),
            Op::Sta(0x10), // acc result
            // loop:
            Op::Lda(0x21), // 6
            Op::Jz(14),
            Op::Ldi(1),
            Op::Sta(0x22),
            Op::Lda(0x21),
            Op::Sub(0x22),
            Op::Sta(0x21),
            Op::Jmp(15),
            Op::Hlt,       // 14: done
            Op::Lda(0x10), // 15
            Op::Add(0x20),
            Op::Sta(0x10),
            Op::Jmp(6),
        ])
    }

    #[test]
    fn multiplication_by_repeated_addition() {
        for mode in [CpuMode::Normal, CpuMode::Alternating] {
            let mut cpu = Cpu::new(mode);
            cpu.run(&times_program(), 10_000).unwrap();
            assert!(cpu.halted());
            assert_eq!(cpu.memory.read(0x10).unwrap(), 42);
        }
    }

    #[test]
    fn alternating_mode_costs_twice_the_periods() {
        let mut normal = Cpu::new(CpuMode::Normal);
        normal.run(&times_program(), 10_000).unwrap();
        let mut scal = Cpu::new(CpuMode::Alternating);
        scal.run(&times_program(), 10_000).unwrap();
        assert_eq!(scal.stats().instructions, normal.stats().instructions);
        assert_eq!(scal.stats().periods, 2 * normal.stats().periods);
    }

    #[test]
    fn logic_and_shift_ops() {
        let mut cpu = Cpu::new(CpuMode::Alternating);
        let p = Program(vec![
            Op::Ldi(0b1100_1010),
            Op::Sta(1),
            Op::Ldi(0b1010_0110),
            Op::And(1),
            Op::Sta(2),
            Op::Ldi(0b1010_0110),
            Op::Or(1),
            Op::Sta(3),
            Op::Ldi(0b1010_0110),
            Op::Xor(1),
            Op::Shl,
            Op::Sta(4),
            Op::Hlt,
        ]);
        cpu.run(&p, 100).unwrap();
        assert_eq!(cpu.memory.read(2).unwrap(), 0b1100_1010 & 0b1010_0110);
        assert_eq!(cpu.memory.read(3).unwrap(), 0b1100_1010 | 0b1010_0110);
        assert_eq!(
            cpu.memory.read(4).unwrap(),
            (0b1100_1010u8 ^ 0b1010_0110) << 1
        );
    }

    #[test]
    fn sub_and_flags() {
        let mut cpu = Cpu::new(CpuMode::Alternating);
        let p = Program(vec![
            Op::Ldi(5),
            Op::Sta(1),
            Op::Ldi(5),
            Op::Sub(1),
            Op::Hlt,
        ]);
        cpu.run(&p, 10).unwrap();
        assert_eq!(cpu.acc(), 0);
        assert!(cpu.zero_flag());
        assert!(cpu.carry_flag(), "5-5 sets carry (no borrow)");
    }

    #[test]
    fn adder_fault_detected_in_alternating_mode_only() {
        let program = Program(vec![
            Op::Ldi(3),
            Op::Sta(1),
            Op::Ldi(1),
            Op::Add(1),
            Op::Sta(2),
            Op::Hlt,
        ]);
        // Normal mode silently computes garbage (3 + 1 = 4 loses bit 2).
        let mut normal = Cpu::new(CpuMode::Normal);
        let s2 = normal.datapath.adder.outputs()[2].node;
        normal.datapath.fault_adder(Override::stem(s2, false));
        normal.run(&program, 100).unwrap();
        assert_ne!(normal.memory.read(2).unwrap(), 4, "silent corruption");

        // Alternating mode halts with a check error.
        let mut scal = Cpu::new(CpuMode::Alternating);
        let s2 = scal.datapath.adder.outputs()[2].node;
        scal.datapath.fault_adder(Override::stem(s2, false));
        let err = scal.run(&program, 100).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NonAlternating { unit: "adder", .. }
        ));
    }

    #[test]
    fn memory_fault_detected_in_both_modes() {
        for mode in [CpuMode::Normal, CpuMode::Alternating] {
            let mut cpu = Cpu::new(mode);
            let p = Program(vec![Op::Ldi(9), Op::Sta(7), Op::Lda(7), Op::Hlt]);
            cpu.memory.write(7, 0); // pre-fill
            cpu.step(&p).unwrap();
            cpu.step(&p).unwrap();
            cpu.memory.corrupt_bit(7, 3);
            let err = cpu.step(&p).unwrap_err();
            assert!(matches!(err, CheckError::Memory(_)));
        }
    }

    #[test]
    fn run_off_end_reported() {
        let mut cpu = Cpu::new(CpuMode::Normal);
        let err = cpu.run(&Program(vec![Op::Ldi(1)]), 10).unwrap_err();
        assert_eq!(err, CheckError::RanOffEnd);
    }
}
