//! Observable fault campaigns over the SCAL computer's datapath units.
//!
//! The Chapter-7 experiments inject every collapsed stuck-at fault of one
//! gate-level datapath unit (the Fig. 2.2 adder or the logic unit) and run a
//! suite of program workloads in alternating mode, classifying each fault as
//! *detected* (an alternation check fired), *dormant* (the workload never
//! sensitized it — the answer is still correct), or *undetected-wrong* (the
//! dangerous case the paper's Theorem 3.1 is about). The [`Campaign`]
//! builder mirrors `scal_faults::Campaign`: it forwards every step to a
//! [`CampaignObserver`] and honours a [`CancelToken`] at fault boundaries,
//! returning a deterministic fault-ordered prefix when cancelled.

use crate::cpu::{Cpu, CpuMode, Program};
use crate::programs::{checksum, popcount, ARG0, RESULT};
use scal_engine::{collapse_overrides, resolve_fault_collapse, CompiledCircuit, EvalMode, Toggle};
use scal_faults::{enumerate_faults, Fault};
use scal_obs::{
    CampaignEvent, CampaignObserver, CancelToken, CoverageObserver, MultiObserver, NullObserver,
    Phase,
};
use std::time::Instant;

/// Which gate-level datapath unit the campaign injects faults into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuUnit {
    /// The self-dual full adder of Fig. 2.2 (the ALU's arithmetic core).
    Adder,
    /// The bitwise logic unit (AND/OR/XOR of Fig. 7.4).
    Logic,
}

/// A program workload: code, memory setup, and the expected [`RESULT`] byte.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in reports.
    pub name: &'static str,
    /// The program to run.
    pub program: Program,
    /// `(address, value)` pokes applied before the run.
    pub setup: Vec<(u8, u8)>,
    /// The byte a fault-free run leaves at [`RESULT`].
    pub expect: u8,
}

/// The default workload suite: popcount and a block checksum, exercising
/// the logic unit, shifter, and adder on every instruction class.
#[must_use]
pub fn default_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "popcount(0xB7)",
            program: popcount(),
            setup: vec![(ARG0, 0xB7)],
            expect: 6,
        },
        Workload {
            name: "checksum(4)",
            program: checksum(),
            setup: vec![(0x60, 0x0F), (0x61, 0xF0), (0x62, 1), (0x63, 2)],
            expect: 0x0F ^ 0xF0 ^ 1 ^ 2,
        },
    ]
}

/// Per-fault outcome over the whole workload suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuFaultResult {
    /// The injected fault.
    pub fault: Fault,
    /// Workloads on which an alternation (or other) check fired.
    pub detected: usize,
    /// Workloads that finished with the correct answer (fault dormant).
    pub dormant: usize,
    /// Workloads that finished with a *wrong* answer undetected.
    pub undetected_wrong: usize,
}

/// Result of a CPU fault campaign: per-fault results in fault order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuCampaign {
    /// One entry per simulated fault, in `enumerate_faults` order. When
    /// `cancelled`, this is a contiguous prefix of the full fault list.
    pub results: Vec<CpuFaultResult>,
    /// Total CPU periods executed across all faulty runs.
    pub periods: u64,
    /// True when a [`CancelToken`] stopped the campaign early.
    pub cancelled: bool,
}

impl CpuCampaign {
    /// Faults with at least one undetected wrong answer — must be empty for
    /// the single-fault coverage claim of §7.1 to hold on this workload.
    #[must_use]
    pub fn undetected_wrong(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.undetected_wrong > 0)
            .count()
    }
}

/// Builder for a datapath fault campaign, mirroring
/// [`scal_faults::Campaign`].
///
/// ```
/// use scal_system::campaign::{Campaign, CpuUnit};
/// let report = Campaign::new(CpuUnit::Logic).run();
/// assert_eq!(report.undetected_wrong(), 0);
/// ```
pub struct Campaign<'a> {
    unit: CpuUnit,
    workloads: Vec<Workload>,
    budget: u64,
    observer: &'a dyn CampaignObserver,
    coverage: Option<&'a CoverageObserver>,
    cancel: Option<&'a CancelToken>,
    fault_collapse: Toggle,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("unit", &self.unit)
            .field("workloads", &self.workloads.len())
            .field("budget", &self.budget)
            .field("cancel", &self.cancel.is_some())
            .field("fault_collapse", &self.fault_collapse)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// A campaign over every collapsed fault of `unit`, with the
    /// [`default_workloads`] suite.
    #[must_use]
    pub fn new(unit: CpuUnit) -> Self {
        Campaign {
            unit,
            workloads: default_workloads(),
            budget: 1_000_000,
            observer: &NullObserver,
            coverage: None,
            cancel: None,
            fault_collapse: Toggle::default(),
        }
    }

    /// Switches compile-time fault collapsing of the unit's fault list:
    /// structurally equivalent stuck-at faults produce identical faulted
    /// unit behaviour on every workload, so only class representatives run
    /// the workload suite and each representative's verdict is expanded
    /// over its class in fault order. Left untouched, collapsing defaults
    /// to on (overridable through `SCAL_FAULT_COLLAPSE`).
    #[must_use]
    pub fn fault_collapse(mut self, on: bool) -> Self {
        self.fault_collapse = on.into();
        self
    }

    /// Replaces the workload suite.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the per-run period budget (runaway-program guard).
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observer that receives the campaign's event stream.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn CampaignObserver) -> Self {
        self.observer = observer;
        self
    }

    /// Builds a per-fault [`scal_obs::CoverageMap`] into `coverage`, labelled
    /// with [`Fault::describe`] line names. A record's `first_detected` is
    /// the index of the first workload whose run tripped a check.
    #[must_use]
    pub fn coverage(mut self, coverage: &'a CoverageObserver) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// Attaches a cancellation token checked at fault boundaries.
    #[must_use]
    pub fn cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Accepted for builder parity with `scal_faults::Campaign` and
    /// `scal_seq::Campaign`, but currently a no-op: CPU workloads run on the
    /// interpreted datapath, which has no compiled cone path. Fault runs
    /// behave as [`EvalMode::Full`] regardless of `mode`.
    #[must_use]
    pub fn eval_mode(self, _mode: EvalMode) -> Self {
        self
    }

    /// Accepted for builder parity with [`scal_seq::Campaign::backend`], but
    /// currently a no-op: the interpreted datapath has no packed
    /// fault-per-lane path, so fault runs behave as
    /// [`scal_seq::SeqBackend::Graph`] regardless of `backend`.
    #[must_use]
    pub fn seq_backend(self, _backend: scal_seq::SeqBackend) -> Self {
        self
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a *fault-free* workload run fails its own expectation —
    /// that is a broken workload, not a campaign outcome.
    #[must_use]
    pub fn run(self) -> CpuCampaign {
        // Compile phase: extracting the unit netlist from the datapath and
        // enumerating its fault sites is this campaign's whole compile story
        // — the interpreted datapath carries no compiled schedule. Timed
        // here; the phase events are emitted after the preamble below.
        let t_compile = Instant::now();
        let unit_circuit = {
            let cpu = Cpu::new(CpuMode::Normal);
            match self.unit {
                CpuUnit::Adder => cpu.datapath.adder,
                CpuUnit::Logic => cpu.datapath.logic,
            }
        };
        let faults = enumerate_faults(&unit_circuit);
        // Fault collapsing: structurally equivalent stuck-at faults on the
        // unit netlist corrupt the interpreted datapath identically on every
        // workload, so only class representatives run the workload suite.
        // The unit netlist is combinational and engine-compatible; if it
        // ever were not, the campaign falls back to the uncollapsed sweep.
        let collapsed = resolve_fault_collapse(self.fault_collapse)
            .expect("SCAL_FAULT_COLLAPSE must be one of 1/on/true/0/off/false")
            .then(|| {
                let compiled = CompiledCircuit::try_compile(&unit_circuit).ok()?;
                let overrides: Vec<_> = faults.iter().map(|f| f.to_override()).collect();
                Some(collapse_overrides(&compiled, &overrides))
            })
            .flatten();
        let sim_faults: Vec<Fault> = match &collapsed {
            Some(cl) => cl.reps.iter().map(|&r| faults[r as usize]).collect(),
            None => faults.clone(),
        };
        let compile_micros = duration_micros(t_compile.elapsed());
        let mut fan = MultiObserver::new();
        fan.push(self.observer);
        if let Some(cov) = self.coverage {
            cov.set_labels(faults.iter().map(|f| f.describe(&unit_circuit)).collect());
            fan.push(cov);
        }
        let obs: &dyn CampaignObserver = &fan;
        let t_total = Instant::now();
        obs.on_event(&CampaignEvent::CampaignStart {
            campaign: match self.unit {
                CpuUnit::Adder => "cpu_adder",
                CpuUnit::Logic => "cpu_logic",
            },
            faults: faults.len(),
            inputs: unit_circuit.inputs().len(),
            outputs: unit_circuit.outputs().len(),
            threads: 1,
        });
        // One interpreted evaluation at a time: the geometry event keeps
        // bench rows comparable with the lane-packed engine campaigns.
        obs.on_event(&CampaignEvent::LaneGeometry {
            width: 1,
            fault_lanes: 0,
            pattern_lanes: 1,
            packing: "scalar",
        });
        obs.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Compile,
        });
        obs.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Compile,
            micros: compile_micros,
        });
        if let Some(cl) = &collapsed {
            obs.on_event(&CampaignEvent::Span {
                name: "collapse",
                parent: "compile",
                micros: cl.micros,
                count: 1,
                items: cl.num_faults() as u64,
            });
            obs.on_event(&CampaignEvent::FaultCollapse {
                faults: cl.num_faults(),
                representatives: cl.num_reps(),
                dominance_edges: cl.dominance_edges,
                micros: cl.micros,
            });
        }

        // Golden phase: every workload must pass fault-free.
        let t = Instant::now();
        obs.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::Golden,
        });
        for w in &self.workloads {
            let mut cpu = Cpu::new(CpuMode::Alternating);
            for &(a, v) in &w.setup {
                cpu.memory.write(a, v);
            }
            cpu.run(&w.program, self.budget)
                .expect("fault-free workload run");
            assert_eq!(
                cpu.memory.read(RESULT),
                Ok(w.expect),
                "workload {} golden result",
                w.name
            );
        }
        obs.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::Golden,
            micros: duration_micros(t.elapsed()),
        });

        // Fault-simulation phase, cancellable at fault boundaries
        // (representative boundaries when collapsing). Under collapsing the
        // per-fault events move to the expansion below, which replays them
        // in original fault order; progress is reported in representative
        // units because that is the work actually remaining.
        let t = Instant::now();
        obs.on_event(&CampaignEvent::PhaseStart {
            phase: Phase::FaultSim,
        });
        let mut periods = 0u64;
        let mut cancelled = false;
        let mut rep_outcomes: Vec<(CpuFaultResult, Option<u32>, u64)> =
            Vec::with_capacity(sim_faults.len());
        for (index, fault) in sim_faults.iter().enumerate() {
            if self.cancel.is_some_and(CancelToken::is_cancelled) {
                cancelled = true;
                break;
            }
            if collapsed.is_none() {
                obs.on_event(&CampaignEvent::FaultStart {
                    fault: index,
                    worker: 0,
                });
            }
            let mut r = CpuFaultResult {
                fault: *fault,
                detected: 0,
                dormant: 0,
                undetected_wrong: 0,
            };
            let mut first_detected = None;
            for (widx, w) in self.workloads.iter().enumerate() {
                let mut cpu = Cpu::new(CpuMode::Alternating);
                for &(a, v) in &w.setup {
                    cpu.memory.write(a, v);
                }
                match self.unit {
                    CpuUnit::Adder => cpu.datapath.fault_adder(fault.to_override()),
                    CpuUnit::Logic => cpu.datapath.fault_logic(fault.to_override()),
                }
                match cpu.run(&w.program, self.budget) {
                    Err(_) => {
                        r.detected += 1;
                        if first_detected.is_none() {
                            first_detected = u32::try_from(widx).ok();
                        }
                    }
                    Ok(_) => {
                        if cpu.memory.read(RESULT) == Ok(w.expect) {
                            r.dormant += 1;
                        } else {
                            r.undetected_wrong += 1;
                        }
                    }
                }
                periods += cpu.stats().periods;
            }
            if collapsed.is_none() {
                obs.on_event(&CampaignEvent::FaultFinish {
                    fault: index,
                    worker: 0,
                    detected: r.detected,
                    violations: r.undetected_wrong,
                    observable: r.detected + r.undetected_wrong > 0,
                    dropped: false,
                    first_detected,
                    pairs: periods / 2,
                });
            }
            rep_outcomes.push((r, first_detected, periods / 2));
            obs.on_event(&CampaignEvent::Progress {
                done: index + 1,
                total: sim_faults.len(),
            });
        }
        let mut results = Vec::with_capacity(faults.len());
        match &collapsed {
            None => results = rep_outcomes.into_iter().map(|(r, _, _)| r).collect(),
            Some(cl) => {
                // Expand representative verdicts over their classes, in
                // original fault order. A cancelled sweep keeps exactly the
                // originals whose representative completed AND whose every
                // predecessor did too, so the result list stays a contiguous
                // fault-ordered prefix just like the uncollapsed sweep.
                let completed = cl.completed_prefix(rep_outcomes.len());
                for (o, fault) in faults.iter().enumerate().take(completed) {
                    let r = cl.rep_of[o] as usize;
                    let (outcome, first_detected, pairs) = &rep_outcomes[r];
                    obs.on_event(&CampaignEvent::FaultStart {
                        fault: o,
                        worker: 0,
                    });
                    let rep_original = cl.reps[r] as usize;
                    if rep_original != o {
                        obs.on_event(&CampaignEvent::FaultClass {
                            fault: o,
                            representative: rep_original,
                            size: cl.class_sizes[r] as usize,
                        });
                    }
                    obs.on_event(&CampaignEvent::FaultFinish {
                        fault: o,
                        worker: 0,
                        detected: outcome.detected,
                        violations: outcome.undetected_wrong,
                        observable: outcome.detected + outcome.undetected_wrong > 0,
                        dropped: false,
                        first_detected: *first_detected,
                        pairs: *pairs,
                    });
                    results.push(CpuFaultResult {
                        fault: *fault,
                        ..outcome.clone()
                    });
                }
            }
        }
        obs.on_event(&CampaignEvent::PhaseEnd {
            phase: Phase::FaultSim,
            micros: duration_micros(t.elapsed()),
        });
        if cancelled {
            obs.on_event(&CampaignEvent::Cancelled {
                completed: results.len(),
            });
        }
        obs.on_event(&CampaignEvent::CampaignEnd {
            faults: results.len(),
            dropped: 0,
            pairs: periods / 2,
            words: periods,
            micros: duration_micros(t_total.elapsed()),
            cancelled,
        });
        CpuCampaign {
            results,
            periods,
            cancelled,
        }
    }
}

fn duration_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_obs::CollectObserver;

    #[test]
    fn logic_unit_campaign_has_full_coverage() {
        let report = Campaign::new(CpuUnit::Logic).run();
        assert!(!report.results.is_empty());
        assert!(!report.cancelled);
        assert_eq!(report.undetected_wrong(), 0, "single-fault coverage");
    }

    #[test]
    fn observer_sees_full_event_stream_in_fault_order() {
        let collect = CollectObserver::default();
        let report = Campaign::new(CpuUnit::Adder).observer(&collect).run();
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "cpu_adder",
                ..
            })
        ));
        let finishes: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::FaultFinish { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(finishes, (0..report.results.len()).collect::<Vec<_>>());
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::CampaignEnd {
                cancelled: false,
                ..
            })
        ));
    }

    #[test]
    fn coverage_maps_record_first_detecting_workload() {
        let cov = scal_obs::CoverageObserver::new();
        let report = Campaign::new(CpuUnit::Logic).coverage(&cov).run();
        let map = cov.latest().expect("coverage map");
        assert_eq!(map.records.len(), report.results.len());
        for (rec, res) in map.records.iter().zip(&report.results) {
            assert!(!rec.label.is_empty());
            assert_eq!(rec.detected > 0, res.detected > 0);
            if res.detected > 0 {
                let first = rec.first_detected.expect("first detecting workload");
                assert!((first as usize) < default_workloads().len());
            } else {
                assert_eq!(rec.first_detected, None);
            }
        }
    }

    #[test]
    fn cancellation_returns_fault_ordered_prefix() {
        // Collapsing pinned off: the cancel-after-2 observer and the length
        // assertion below count individual faults, which under collapsing
        // would be representative units instead.
        let full = Campaign::new(CpuUnit::Logic).fault_collapse(false).run();
        let cancel = CancelToken::new();

        struct CancelAfter<'a> {
            token: &'a CancelToken,
            after: usize,
        }
        impl CampaignObserver for CancelAfter<'_> {
            fn on_event(&self, event: &CampaignEvent) {
                if let CampaignEvent::Progress { done, .. } = event {
                    if *done >= self.after {
                        self.token.cancel();
                    }
                }
            }
        }
        let obs = CancelAfter {
            token: &cancel,
            after: 2,
        };
        let partial = Campaign::new(CpuUnit::Logic)
            .fault_collapse(false)
            .observer(&obs)
            .cancel(&cancel)
            .run();
        assert!(partial.cancelled);
        assert_eq!(partial.results.len(), 2);
        assert_eq!(partial.results[..], full.results[..2]);
    }

    #[test]
    fn collapsed_campaign_matches_uncollapsed() {
        for unit in [CpuUnit::Adder, CpuUnit::Logic] {
            let plain = Campaign::new(unit).fault_collapse(false).run();
            let collect = CollectObserver::default();
            let collapsed = Campaign::new(unit)
                .fault_collapse(true)
                .observer(&collect)
                .run();
            assert_eq!(collapsed.results, plain.results, "{unit:?} verdicts");
            assert!(!collapsed.cancelled);
            // The collapsed sweep must actually have merged classes and run
            // less interpreted work than the full sweep.
            let events = collect.events();
            let (faults, reps) = events
                .iter()
                .find_map(|e| match e {
                    CampaignEvent::FaultCollapse {
                        faults,
                        representatives,
                        ..
                    } => Some((*faults, *representatives)),
                    _ => None,
                })
                .expect("FaultCollapse event");
            assert_eq!(faults, plain.results.len());
            assert!(reps < faults, "{unit:?} collapse must merge classes");
            assert!(collapsed.periods < plain.periods, "{unit:?} rep-only work");
            let classes = events
                .iter()
                .filter(|e| matches!(e, CampaignEvent::FaultClass { .. }))
                .count();
            assert_eq!(classes, faults - reps);
        }
    }
}
