//! Triple modular redundancy baseline (the comparison point of §7.4).

use crate::cpu::{Cpu, CpuMode, Program};

/// Result of a TMR run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmrOutcome {
    /// Final voted accumulator.
    pub acc: u8,
    /// Instructions retired (per member).
    pub instructions: u64,
    /// Steps at which the voter had to out-vote a member.
    pub corrections: u64,
    /// Total datapath periods across all three members (the 3× hardware,
    /// 1× time trade).
    pub periods: u64,
}

/// Runs `program` on three CPUs with majority voting after each step.
/// `faulty_member` (0..3) optionally gets a stuck adder sum-bit.
///
/// # Panics
///
/// Panics if `faulty_member >= 3` or the budget is exhausted abnormally.
#[must_use]
pub fn run_tmr(program: &Program, faulty_member: Option<(usize, u8)>) -> TmrOutcome {
    let mut cpus = [
        Cpu::new(CpuMode::Normal),
        Cpu::new(CpuMode::Normal),
        Cpu::new(CpuMode::Normal),
    ];
    if let Some((m, bit)) = faulty_member {
        assert!(m < 3);
        let node = cpus[m].datapath.adder.outputs()[bit as usize].node;
        cpus[m]
            .datapath
            .fault_adder(scal_netlist::Override::stem(node, false));
    }

    let mut out = TmrOutcome {
        acc: 0,
        instructions: 0,
        corrections: 0,
        periods: 0,
    };
    let budget = 100_000u64;
    for _ in 0..budget {
        for cpu in &mut cpus {
            cpu.step(program).expect("members run unchecked");
        }
        out.instructions += 1;
        // Majority vote on (acc, pc); out-voted member is resynchronized.
        let keys: Vec<(u8, usize, bool)> = cpus
            .iter()
            .map(|c| (c.acc(), c.pc(), c.zero_flag()))
            .collect();
        let majority = (0..3)
            .find(|&i| keys.iter().filter(|&&k| k == keys[i]).count() >= 2)
            .expect("a single fault cannot break majority");
        for i in 0..3 {
            if keys[i] != keys[majority] {
                out.corrections += 1;
                let reference = cpus[majority].clone_architectural();
                cpus[i].copy_architectural_state(&reference);
            }
        }
        if cpus.iter().all(|c| c.halted()) {
            break;
        }
    }
    out.acc = cpus[0].acc();
    out.periods = cpus.iter().map(|c| c.stats().periods).sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adr::sum_program;

    #[test]
    fn fault_free_tmr_completes() {
        let out = run_tmr(&sum_program(10), None);
        assert_eq!(out.corrections, 0);
        assert!(out.instructions > 10);
    }

    #[test]
    fn single_faulty_member_is_outvoted() {
        let out = run_tmr(&sum_program(9), Some((1, 0)));
        assert!(out.corrections >= 1, "voter must fire");
        // The voted result matches the fault-free run.
        let clean = run_tmr(&sum_program(9), None);
        assert_eq!(out.acc, clean.acc);
        assert_eq!(out.instructions, clean.instructions);
    }

    #[test]
    fn tmr_triples_the_periods() {
        let out = run_tmr(&sum_program(5), None);
        let mut single = Cpu::new(CpuMode::Normal);
        single.run(&sum_program(5), 100_000).unwrap();
        assert_eq!(out.periods, 3 * single.stats().periods);
    }
}
