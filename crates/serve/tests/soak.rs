//! Soak test: hundreds of concurrent mixed campaigns over one server
//! process, with random cancellations, checked bit-for-bit against local
//! runs.
//!
//! Every completed request's streamed event prefix, report, and coverage
//! map must be **bit-identical** to running the same spec locally through
//! `run_job` (after stripping the documented nondeterminism: `micros` and
//! `worker` fields, and `progress`/`span` frames whose interleaving is
//! thread-timing dependent). Every cancelled request must return a valid
//! fault-ordered *prefix* of the local run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scal_obs::json::{self, JsonValue};
use scal_obs::CollectObserver;
use scal_serve::client::demo;
use scal_serve::{run_job, Client, JobSpec, SchedConfig, ServeConfig};
use std::collections::HashMap;
use std::time::Duration;

const REQUESTS: usize = 208;
const WORKERS: usize = 8;
const MAX_JOB_THREADS: usize = 2;

/// Recursively drops the wall-clock and worker-attribution fields — the
/// only nondeterministic *values* in the event schema.
fn strip(v: &JsonValue) -> JsonValue {
    match v {
        JsonValue::Object(members) => JsonValue::Object(
            members
                .iter()
                .filter(|(k, _)| k != "micros" && k != "worker")
                .map(|(k, val)| (k.clone(), strip(val)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(strip).collect()),
        other => other.clone(),
    }
}

/// `progress` ticks interleave nondeterministically across workers, and
/// `span` aggregation granularity is a profiler detail; both are excluded
/// from the determinism contract.
fn keep_event(ev: &JsonValue) -> bool {
    !matches!(
        ev.get("ev").and_then(JsonValue::as_str),
        Some("progress" | "span")
    )
}

/// The normalized deterministic event stream of one local run.
fn local_events(collect: &CollectObserver) -> Vec<JsonValue> {
    collect
        .events()
        .iter()
        .map(|e| json::parse(&e.to_json()).expect("event json"))
        .filter(keep_event)
        .map(|v| strip(&v))
        .collect()
}

struct LocalRun {
    report: JsonValue,
    coverage: JsonValue,
    events: Vec<JsonValue>,
}

/// Replays `spec` locally with the same effective thread count the server
/// would use.
fn run_locally(spec: &JobSpec) -> LocalRun {
    let threads = match spec.threads {
        0 => 1,
        t => t.min(MAX_JOB_THREADS),
    };
    let collect = CollectObserver::new();
    let out = run_job(&spec.kind, threads, spec.fault_collapse, &collect, None).expect("local run");
    LocalRun {
        report: json::parse(&out.report).expect("report json"),
        coverage: json::parse(&out.coverage.to_json()).expect("coverage json"),
        events: local_events(&collect),
    }
}

/// One spec from the deterministic mix.
fn make_spec(rng: &mut StdRng) -> JobSpec {
    let priority = rng.gen_range(0u64..10) as u8;
    let roll = rng.gen_range(0u64..100);
    if roll < 45 {
        let mut spec = demo::pair_spec(priority, rng.gen_bool(0.2));
        spec.threads = rng.gen_range(1usize..3);
        if let scal_serve::JobKind::Pair {
            drop_after_detection,
            eval_mode,
            faults,
            ref circuit,
            ..
        } = &mut spec.kind
        {
            *drop_after_detection = rng.gen_bool(0.5);
            *eval_mode = if rng.gen_bool(0.5) {
                scal_engine::EvalMode::Full
            } else {
                scal_engine::EvalMode::Cone
            };
            if rng.gen_bool(0.25) {
                // Explicit fault list: every other collapsed fault.
                let all = scal_faults::enumerate_faults(circuit);
                *faults = scal_serve::FaultSpec::List(all.into_iter().step_by(2).collect());
            }
        }
        spec
    } else if roll < 85 {
        let backend = match rng.gen_range(0u64..4) {
            0 | 1 => scal_seq::SeqBackend::Packed,
            2 => scal_seq::SeqBackend::Scalar,
            _ => scal_seq::SeqBackend::Graph,
        };
        demo::seq_spec(priority, backend, rng.gen_range(6usize..20))
    } else {
        demo::cpu_spec(priority)
    }
}

/// Cache key: the request line of the spec with scheduling-only fields
/// (priority, timeout, stream) pinned, since they cannot affect results.
fn cache_key(spec: &JobSpec) -> String {
    let mut canon = spec.clone();
    canon.priority = 0;
    canon.timeout_ms = None;
    canon.stream = true;
    canon.to_request_line()
}

#[test]
fn soak_mixed_concurrent_campaigns_with_cancellations() {
    let server = scal_serve::serve(ServeConfig {
        sched: SchedConfig {
            workers: WORKERS,
            max_threads_per_job: MAX_JOB_THREADS,
            queue_cap: 4096,
            log_transitions: false,
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());
    assert!(client.wait_ready(Duration::from_secs(10)), "server ready");

    // Deterministic mix and cancellation plan.
    let mut rng = StdRng::seed_from_u64(0x5CA1_AB1E);
    let plan: Vec<(JobSpec, Option<usize>)> = (0..REQUESTS)
        .map(|_| {
            let spec = make_spec(&mut rng);
            // ~18% of requests get cancelled after a few frames; cancelling
            // early means most targets are still queued, exercising the
            // queued-cancel path alongside mid-run cancels.
            let cancel_after = rng.gen_bool(0.18).then(|| rng.gen_range(1usize..24));
            (spec, cancel_after)
        })
        .collect();

    // Fire every request from its own thread, collecting all frames.
    let handles: Vec<_> = plan
        .iter()
        .cloned()
        .map(|(spec, cancel_after)| {
            let addr = addr.clone();
            std::thread::spawn(move || -> (JobSpec, Vec<JsonValue>) {
                let client = Client::new(addr);
                // The listener backlog can drop a burst of simultaneous
                // connects; retry a few times.
                let mut stream = None;
                for _ in 0..50 {
                    match client.submit(&spec) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
                let stream = stream.expect("connect");
                let mut frames = Vec::new();
                let mut id = None;
                for frame in stream {
                    let frame = frame.expect("parse frame");
                    if id.is_none() {
                        id = frame
                            .get("id")
                            .and_then(JsonValue::as_f64)
                            .map(|n| n as u64);
                    }
                    frames.push(frame);
                    if Some(frames.len()) == cancel_after {
                        let _ = client.cancel(id.expect("id in first frame"));
                    }
                }
                (spec, frames)
            })
        })
        .collect();

    let responses: Vec<(JobSpec, Vec<JsonValue>)> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    // Drain and stop the server before the (slow) local replays.
    let (_queued, _running, done) = client.status().expect("status");
    assert_eq!(done as usize, REQUESTS, "every request ran");
    client.shutdown().expect("shutdown");
    server.join();

    // Check every response against a local reference run.
    let mut local_cache: HashMap<String, LocalRun> = HashMap::new();
    let mut completed = 0usize;
    let mut cancelled = 0usize;
    let mut seen_traces = std::collections::HashSet::new();
    for (i, (spec, frames)) in responses.iter().enumerate() {
        assert!(!frames.is_empty(), "request {i}: empty response");
        let first = &frames[0];
        assert_eq!(
            first.get("frame").and_then(JsonValue::as_str),
            Some("accepted"),
            "request {i}: first frame {first:?}"
        );
        // Trace-id contract: every frame of a job — cancelled-prefix jobs
        // included — carries the trace id minted in its `accepted` frame,
        // and traces never collide across jobs.
        let trace = first
            .get("trace")
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .expect("accepted frame carries a trace id");
        assert!(trace > 0, "request {i}: trace ids start at 1");
        assert!(
            seen_traces.insert(trace),
            "request {i}: trace {trace} reused across jobs"
        );
        for (j, frame) in frames.iter().enumerate() {
            assert_eq!(
                frame.get("trace").and_then(JsonValue::as_f64),
                Some(trace as f64),
                "request {i} frame {j}: trace mismatch ({frame:?})"
            );
        }
        assert_eq!(
            first.get("kind").and_then(JsonValue::as_str),
            Some(spec.kind.name()),
            "request {i}"
        );
        let last = frames.last().expect("frames");
        assert_eq!(
            last.get("frame").and_then(JsonValue::as_str),
            Some("result"),
            "request {i}: terminal frame {last:?}"
        );
        let report = last.get("report").expect("report");
        let coverage = last.get("coverage").expect("coverage");
        let was_cancelled = report.get("cancelled") == Some(&JsonValue::Bool(true));
        assert_eq!(
            coverage.get("cancelled"),
            Some(&JsonValue::Bool(was_cancelled)),
            "request {i}: report and coverage disagree on cancellation"
        );

        let key = cache_key(spec);
        let local = local_cache.entry(key).or_insert_with(|| run_locally(spec));

        let streamed_events: Vec<JsonValue> = frames
            .iter()
            .filter(|f| f.get("frame").and_then(JsonValue::as_str) == Some("event"))
            .map(|f| f.get("event").expect("event body").clone())
            .filter(keep_event)
            .map(|v| strip(&v))
            .collect();

        if was_cancelled {
            cancelled += 1;
            // Coverage must be a fault-ordered prefix of the local map.
            let server_records = coverage
                .get("records")
                .and_then(JsonValue::as_array)
                .expect("records");
            let local_records = local
                .coverage
                .get("records")
                .and_then(JsonValue::as_array)
                .expect("records");
            assert!(
                server_records.len() <= local_records.len(),
                "request {i}: cancelled prefix longer than the full run"
            );
            assert_eq!(
                server_records,
                &local_records[..server_records.len()],
                "request {i}: cancelled coverage is not a prefix"
            );
            // So must the per-fault finish stream.
            let finishes = |evs: &[JsonValue]| -> Vec<JsonValue> {
                evs.iter()
                    .filter(|e| e.get("ev").and_then(JsonValue::as_str) == Some("fault_finish"))
                    .cloned()
                    .collect()
            };
            let streamed_fin = finishes(&streamed_events);
            let local_fin = finishes(&local.events);
            assert!(
                streamed_fin.len() <= local_fin.len(),
                "request {i}: more finishes than the full run"
            );
            assert_eq!(
                streamed_fin,
                local_fin[..streamed_fin.len()].to_vec(),
                "request {i}: cancelled finish stream is not a prefix"
            );
        } else {
            completed += 1;
            assert_eq!(
                strip(report),
                strip(&local.report),
                "request {i}: report mismatch"
            );
            assert_eq!(
                strip(coverage),
                strip(&local.coverage),
                "request {i}: coverage mismatch"
            );
            if spec.stream {
                assert_eq!(
                    streamed_events, local.events,
                    "request {i}: event stream mismatch"
                );
            }
        }
    }

    assert_eq!(completed + cancelled, REQUESTS);
    // The plan cancels ~18% of requests early (most while still queued), so
    // a healthy run must see a meaningful number of both outcomes.
    assert!(completed >= REQUESTS / 2, "completed = {completed}");
    assert!(cancelled >= 5, "cancelled = {cancelled}");
}
