//! End-to-end protocol tests over a real TCP server: error frames for
//! hostile input, cancel acks, status counters, non-streaming submits,
//! deadline timeouts, and clean shutdown.

use scal_obs::json::JsonValue;
use scal_serve::client::demo;
use scal_serve::{serve, Client, SchedConfig, ServeConfig};
use std::time::Duration;

fn start() -> (scal_serve::ServerHandle, Client) {
    let server = serve(ServeConfig {
        sched: SchedConfig {
            workers: 2,
            max_threads_per_job: 2,
            queue_cap: 64,
            log_transitions: false,
        },
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let client = Client::new(server.addr().to_string());
    assert!(client.wait_ready(Duration::from_secs(10)));
    (server, client)
}

fn field<'a>(frame: &'a JsonValue, key: &str) -> &'a str {
    frame
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("frame missing {key:?}: {frame:?}"))
}

#[test]
fn hostile_requests_get_typed_error_frames() {
    let (server, client) = start();
    for (line, code) in [
        ("this is not json", "bad_json"),
        ("{\"v\":1}", "bad_request"),
        (
            "{\"cmd\":\"submit\",\"v\":1,\"kind\":\"pair\"}",
            "bad_request",
        ),
        (
            "{\"cmd\":\"submit\",\"v\":1,\"kind\":\"pair\",\"netlist\":\"gate bogus\"}",
            "bad_netlist",
        ),
        (
            "{\"cmd\":\"submit\",\"v\":99,\"kind\":\"pair\"}",
            "bad_version",
        ),
        ("{\"cmd\":\"cancel\",\"v\":1}", "bad_request"),
    ] {
        let frame = client
            .request(line)
            .expect("connect")
            .next()
            .expect("one frame")
            .expect("parse");
        assert_eq!(field(&frame, "frame"), "error", "for {line:?}");
        assert_eq!(field(&frame, "code"), code, "for {line:?}");
        assert!(!field(&frame, "message").is_empty(), "for {line:?}");
    }
    server.shutdown_and_join();
}

#[test]
fn cancel_of_unknown_id_reports_not_found() {
    let (server, client) = start();
    assert!(!client.cancel(123_456).expect("cancel_ack"));
    server.shutdown_and_join();
}

#[test]
fn status_counts_completed_jobs() {
    let (server, client) = start();
    let frames: Vec<_> = client
        .submit(&demo::pair_spec(4, false))
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    assert_eq!(field(&frames[0], "frame"), "accepted");
    assert_eq!(
        field(frames.last().expect("terminal frame"), "frame"),
        "result"
    );
    let (queued, running, done) = client.status().expect("status");
    assert_eq!((queued, running, done), (0, 0, 1));
    server.shutdown_and_join();
}

#[test]
fn non_streaming_submit_returns_only_accepted_and_result() {
    let (server, client) = start();
    let mut spec = demo::seq_spec(4, scal_seq::SeqBackend::Packed, 12);
    spec.stream = false;
    let frames: Vec<_> = client
        .submit(&spec)
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    assert_eq!(frames.len(), 2, "{frames:?}");
    assert_eq!(field(&frames[0], "frame"), "accepted");
    assert_eq!(field(&frames[1], "frame"), "result");
    let report = frames[1].get("report").expect("report");
    assert_eq!(report.get("cancelled"), Some(&JsonValue::Bool(false)));
    server.shutdown_and_join();
}

#[test]
fn deadline_timeout_cancels_into_a_valid_prefix() {
    let (server, client) = start();
    // Scalar replay of a long word sequence: far slower than the 1 ms
    // deadline, and cancellation is checkpointed per fault, so the result
    // must come back as a cancelled prefix.
    let mut spec = demo::seq_spec(4, scal_seq::SeqBackend::Scalar, 4096);
    spec.timeout_ms = Some(1);
    let frames: Vec<_> = client
        .submit(&spec)
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    let last = frames.last().expect("terminal frame");
    assert_eq!(field(last, "frame"), "result");
    let report = last.get("report").expect("report");
    assert_eq!(report.get("cancelled"), Some(&JsonValue::Bool(true)));
    let coverage = last.get("coverage").expect("coverage");
    assert_eq!(coverage.get("cancelled"), Some(&JsonValue::Bool(true)));
    server.shutdown_and_join();
}

#[test]
fn every_job_frame_carries_the_accepted_trace() {
    let (server, client) = start();
    let frames: Vec<_> = client
        .submit(&demo::pair_spec(4, false))
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    let trace = frames[0]
        .get("trace")
        .and_then(JsonValue::as_f64)
        .expect("trace in accepted frame");
    assert!(trace >= 1.0);
    for frame in &frames {
        assert_eq!(
            frame.get("trace").and_then(JsonValue::as_f64),
            Some(trace),
            "{frame:?}"
        );
    }
    server.shutdown_and_join();
}

#[test]
fn status_frame_reports_uptime_depths_and_job_outcomes() {
    let (server, client) = start();
    let frames: Vec<_> = client
        .submit(&demo::pair_spec(4, false))
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    assert_eq!(
        field(frames.last().expect("terminal frame"), "frame"),
        "result"
    );
    let status = client.status_frame().expect("status");
    let num = |k: &str| {
        status
            .get(k)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("status missing {k:?}: {status:?}"))
    };
    assert!(num("uptime_ms") < 3_600_000.0);
    assert_eq!(num("done"), 1.0);
    let jobs = status.get("jobs").expect("jobs object");
    assert_eq!(jobs.get("accepted").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(jobs.get("finished").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(jobs.get("cancelled").and_then(JsonValue::as_f64), Some(0.0));
    let depths = status
        .get("queue_depths")
        .and_then(JsonValue::as_array)
        .expect("queue_depths");
    assert_eq!(depths.len(), 10);
    assert!(depths.iter().all(|d| d.as_f64() == Some(0.0)));
    server.shutdown_and_join();
}

#[test]
fn dump_returns_the_flight_recorder_as_events() {
    let (server, client) = start();
    let frames: Vec<_> = client
        .submit(&demo::pair_spec(4, false))
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    let trace = frames[0]
        .get("trace")
        .and_then(JsonValue::as_f64)
        .expect("trace");
    let events = client.dump().expect("dump");
    assert!(
        events.len() >= 3,
        "submit/start/finish at least: {events:?}"
    );
    let states: Vec<&str> = events
        .iter()
        .filter(|e| e.get("trace").and_then(JsonValue::as_f64) == Some(trace))
        .map(|e| field(e, "state"))
        .collect();
    assert_eq!(states, ["submit", "start", "finish"], "{events:?}");
    // Timestamps are monotone oldest → newest.
    let times: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("ms").and_then(JsonValue::as_f64))
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    server.shutdown_and_join();
}

#[test]
fn metrics_endpoint_serves_prometheus_text_and_health() {
    let (server, client) = start();
    let maddr = server.metrics_addr().expect("metrics listener").to_string();
    let health = scal_serve::client::http_get(&maddr, "/healthz").expect("healthz");
    assert!(health.contains("\"ok\":true"), "{health}");
    assert!(health.contains("uptime_ms"), "{health}");

    let frames: Vec<_> = client
        .submit(&demo::pair_spec(4, false))
        .expect("submit")
        .map(|f| f.expect("frame"))
        .collect();
    assert_eq!(
        field(frames.last().expect("terminal frame"), "frame"),
        "result"
    );

    let body = scal_serve::client::http_get(&maddr, "/metrics").expect("metrics");
    assert!(
        body.contains("# TYPE scal_serve_jobs_total counter"),
        "{body}"
    );
    let parsed = scal_serve::PromText::parse(&body);
    assert_eq!(
        parsed.value("scal_serve_jobs_total", &[("state", "accepted")]),
        Some(1.0)
    );
    assert_eq!(
        parsed.value("scal_serve_jobs_total", &[("state", "finished")]),
        Some(1.0)
    );
    assert_eq!(
        parsed.value("scal_serve_workers_idle", &[]),
        Some(2.0),
        "both workers idle again"
    );
    for p in 0..10 {
        assert_eq!(
            parsed.value("scal_serve_queue_depth", &[("priority", &p.to_string())]),
            Some(0.0),
            "priority {p}"
        );
    }
    assert_eq!(
        parsed.value("scal_serve_queue_wait_micros_count", &[]),
        Some(1.0)
    );
    assert_eq!(parsed.value("scal_serve_run_micros_count", &[]), Some(1.0));
    assert!(
        parsed
            .histogram_quantile("scal_serve_run_micros", 0.5)
            .expect("run p50")
            > 0.0
    );
    assert!(
        parsed
            .value("scal_serve_connections_total", &[])
            .expect("conns")
            >= 2.0
    );
    assert!(
        parsed
            .value("scal_serve_frames_sent_total", &[])
            .expect("frames")
            >= 2.0
    );
    assert!(
        parsed
            .value("scal_serve_bytes_sent_total", &[])
            .expect("bytes")
            >= 100.0
    );

    // Unknown paths 404, and that is an error for the helper.
    assert!(scal_serve::client::http_get(&maddr, "/nope").is_err());
    server.shutdown_and_join();
}

#[test]
fn shutdown_acks_then_stops_accepting() {
    let (server, client) = start();
    client.shutdown().expect("ack");
    server.join();
    // The listener is gone: either the connection is refused or the probe
    // times out — it must not succeed.
    assert!(client.status().is_err());
}
