//! `scal_client` — command-line client for the campaign service.
//!
//! ```text
//! scal_client [--addr HOST:PORT] submit (pair|seq|cpu) [OPTIONS]
//! scal_client [--addr HOST:PORT] batch --jobs N [--cancel-one]
//! scal_client [--addr HOST:PORT] raw        # request line on stdin
//! scal_client [--addr HOST:PORT] cancel ID
//! scal_client [--addr HOST:PORT] status
//! scal_client [--addr HOST:PORT] dump
//! scal_client [--addr HOST:PORT] shutdown
//! ```
//!
//! Every response frame is echoed to stdout as one JSON line, so output is
//! itself valid JSONL. `submit` follows the stream to the terminal frame;
//! `batch` runs a mixed pair/seq/cpu workload concurrently, and with
//! `--cancel-one` cancels its first (deliberately slow) job mid-flight.

use scal_serve::client::demo;
use scal_serve::{Client, JobSpec};
use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: scal_client [--addr HOST:PORT] COMMAND\n\
         commands:\n\
         \x20 submit (pair|seq|cpu) [--priority 0..9] [--threads N]\n\
         \x20        [--timeout-ms T] [--no-stream] [--scalar]\n\
         \x20        [--seq-backend packed|scalar|graph] [--words N]\n\
         \x20        [--format text|verilog|bench]\n\
         \x20 batch --jobs N [--cancel-one]\n\
         \x20 raw            read one request line from stdin, stream frames\n\
         \x20 cancel ID\n\
         \x20 status\n\
         \x20 dump           recent job lifecycle events (flight recorder)\n\
         \x20 shutdown"
    );
    std::process::exit(2);
}

/// Follows a response stream, echoing each frame; returns `false` if the
/// terminal frame was an `error` (or the stream broke).
fn follow(client: &Client, spec: &JobSpec) -> bool {
    let stream = match client.submit(spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("submit failed: {e}");
            return false;
        }
    };
    let mut ok = true;
    for frame in stream {
        match frame {
            Ok(v) => {
                let line = v.to_json_line();
                if v.get("frame").and_then(scal_obs::json::JsonValue::as_str) == Some("error") {
                    ok = false;
                }
                println!("{line}");
            }
            Err(e) => {
                eprintln!("stream error: {e}");
                return false;
            }
        }
    }
    ok
}

/// The deterministic mixed workload used by `batch`: index 0 is a slow
/// scalar seq job (the `--cancel-one` target), the rest round-robin over
/// the three campaign kinds.
fn batch_spec(i: usize) -> JobSpec {
    if i == 0 {
        return demo::seq_spec(2, scal_seq::SeqBackend::Scalar, 4096);
    }
    match i % 3 {
        0 => demo::pair_spec((i % 10) as u8, i % 6 == 0),
        1 => demo::seq_spec(
            (i % 10) as u8,
            if i % 2 == 0 {
                scal_seq::SeqBackend::Packed
            } else {
                scal_seq::SeqBackend::Graph
            },
            8 + i % 12,
        ),
        _ => demo::cpu_spec((i % 10) as u8),
    }
}

fn run_batch(client: &Client, jobs: usize, cancel_one: bool) -> bool {
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            let client = client.clone();
            std::thread::spawn(move || -> bool {
                let spec = batch_spec(i);
                let stream = match client.submit(&spec) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("job {i}: submit failed: {e}");
                        return false;
                    }
                };
                let mut ok = false;
                for frame in stream {
                    let Ok(v) = frame else { return false };
                    let kind = v.get("frame").and_then(scal_obs::json::JsonValue::as_str);
                    if i == 0 && cancel_one && kind == Some("accepted") {
                        if let Some(id) = v.get("id").and_then(scal_obs::json::JsonValue::as_f64) {
                            match client.cancel(id as u64) {
                                Ok(found) => eprintln!("job 0: cancelled (found={found})"),
                                Err(e) => eprintln!("job 0: cancel failed: {e}"),
                            }
                        }
                    }
                    ok = kind == Some("result");
                    println!("{}", v.to_json_line());
                }
                ok
            })
        })
        .collect();
    handles.into_iter().all(|h| h.join().unwrap_or(false))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7444".to_owned();
    if args.first().is_some_and(|a| a == "--addr") {
        if args.len() < 2 {
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let client = Client::new(addr);
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let rest = &args[1..];

    let ok = match command.as_str() {
        "submit" => {
            let Some(kind) = rest.first() else { usage() };
            let mut spec = match kind.as_str() {
                "pair" => demo::pair_spec(4, false),
                "seq" => demo::seq_spec(4, scal_seq::SeqBackend::Packed, 16),
                "cpu" => demo::cpu_spec(4),
                _ => usage(),
            };
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
                match flag.as_str() {
                    "--priority" => match value().parse() {
                        Ok(p) if p <= 9 => spec.priority = p,
                        _ => usage(),
                    },
                    "--threads" => match value().parse() {
                        Ok(n) => spec.threads = n,
                        Err(_) => usage(),
                    },
                    "--timeout-ms" => match value().parse() {
                        Ok(t) => spec.timeout_ms = Some(t),
                        Err(_) => usage(),
                    },
                    "--no-stream" => spec.stream = false,
                    "--scalar" => {
                        if let scal_serve::JobKind::Pair { scalar, .. } = &mut spec.kind {
                            *scalar = true;
                        }
                    }
                    "--seq-backend" => {
                        let backend = match value() {
                            "packed" => scal_seq::SeqBackend::Packed,
                            "scalar" => scal_seq::SeqBackend::Scalar,
                            "graph" => scal_seq::SeqBackend::Graph,
                            _ => usage(),
                        };
                        if let scal_serve::JobKind::Seq { backend: b, .. } = &mut spec.kind {
                            *b = backend;
                        }
                    }
                    "--format" => match value().parse() {
                        Ok(f) => spec.netlist_format = f,
                        Err(_) => usage(),
                    },
                    "--words" => match value().parse() {
                        Ok(n) => {
                            if let scal_serve::JobKind::Seq { words, .. } = &mut spec.kind {
                                *words = demo::demo_words(n);
                            }
                        }
                        Err(_) => usage(),
                    },
                    _ => usage(),
                }
            }
            follow(&client, &spec)
        }
        "batch" => {
            let mut jobs = None;
            let mut cancel_one = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--jobs" => match it.next().map(|v| v.parse()) {
                        Some(Ok(n)) if n > 0 => jobs = Some(n),
                        _ => usage(),
                    },
                    "--cancel-one" => cancel_one = true,
                    _ => usage(),
                }
            }
            let Some(jobs) = jobs else { usage() };
            run_batch(&client, jobs, cancel_one)
        }
        "raw" => {
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).is_err() {
                eprintln!("failed to read request line from stdin");
                return ExitCode::FAILURE;
            }
            match client.request(line.trim_end()) {
                Ok(stream) => {
                    let mut ok = true;
                    for frame in stream {
                        match frame {
                            Ok(v) => println!("{}", v.to_json_line()),
                            Err(e) => {
                                eprintln!("stream error: {e}");
                                ok = false;
                                break;
                            }
                        }
                    }
                    ok
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    false
                }
            }
        }
        "cancel" => {
            let Some(Ok(id)) = rest.first().map(|v| v.parse::<u64>()) else {
                usage()
            };
            match client.cancel(id) {
                Ok(found) => {
                    println!("{{\"frame\":\"cancel_ack\",\"id\":{id},\"found\":{found}}}");
                    true
                }
                Err(e) => {
                    eprintln!("cancel failed: {e}");
                    false
                }
            }
        }
        "status" => match client.status_frame() {
            Ok(frame) => {
                println!("{}", frame.to_json_line());
                true
            }
            Err(e) => {
                eprintln!("status failed: {e}");
                false
            }
        },
        "dump" => match client.dump() {
            Ok(events) => {
                for event in events {
                    println!("{}", event.to_json_line());
                }
                true
            }
            Err(e) => {
                eprintln!("dump failed: {e}");
                false
            }
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("{{\"frame\":\"shutdown_ack\"}}");
                true
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                false
            }
        },
        "wait-ready" => client.wait_ready(Duration::from_secs(30)),
        _ => usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
