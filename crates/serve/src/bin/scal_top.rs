//! `scal_top` — a live terminal view of a running campaign service.
//!
//! ```text
//! scal_top [--addr HOST:PORT] [--metrics-addr HOST:PORT]
//!          [--interval-ms N] [--iterations N] [--no-clear]
//! ```
//!
//! Each refresh polls the JSONL `status` verb and, when a metrics address
//! is known, scrapes `GET /metrics` and the `dump` verb, rendering pool
//! occupancy, per-priority queue depths, cumulative job outcomes, latency
//! quantiles (p50/p90/p99 from the Prometheus histograms), connection I/O
//! totals, and the most recent flight-recorder events.
//!
//! `--iterations N` exits after N refreshes (CI/smoke use); `--no-clear`
//! appends instead of redrawing, keeping output pipe-friendly.

use scal_obs::json::JsonValue;
use scal_serve::client::http_get;
use scal_serve::{Client, PromText};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: scal_top [--addr HOST:PORT] [--metrics-addr HOST:PORT] \
         [--interval-ms N] [--iterations N] [--no-clear]"
    );
    std::process::exit(2);
}

fn num(frame: &JsonValue, key: &str) -> u64 {
    frame
        .get(key)
        .and_then(JsonValue::as_f64)
        .map_or(0, |n| n as u64)
}

fn fmt_duration(ms: u64) -> String {
    let s = ms / 1000;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}.{:01}s", s, (ms % 1000) / 100)
    }
}

fn fmt_micros(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}µs")
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1_048_576.0 {
        format!("{:.1} MiB", b / 1_048_576.0)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

/// One `p50 / p90 / p99 / count` table row for a histogram family.
fn latency_row(prom: &PromText, label: &str, name: &str) -> String {
    let count = prom.value(&format!("{name}_count"), &[]).unwrap_or(0.0);
    let q = |q: f64| {
        prom.histogram_quantile(name, q)
            .map_or_else(|| "-".to_owned(), fmt_micros)
    };
    format!(
        "  {label:<16} {:>10} {:>10} {:>10} {:>9}",
        q(0.5),
        q(0.9),
        q(0.99),
        count as u64
    )
}

fn render(status: &JsonValue, prom: Option<&PromText>, recent: &[JsonValue], tick: u64) {
    println!(
        "scal_top  up {}  tick {}{}",
        fmt_duration(num(status, "uptime_ms")),
        tick,
        if status.get("shutting_down") == Some(&JsonValue::Bool(true)) {
            "  [SHUTTING DOWN]"
        } else {
            ""
        }
    );
    println!(
        "pool   workers {}  running {}  queued {}  done {}",
        num(status, "workers"),
        num(status, "running"),
        num(status, "queued"),
        num(status, "done"),
    );
    if let Some(jobs) = status.get("jobs") {
        println!(
            "jobs   accepted {}  finished {}  cancelled {}  timed_out {}  panicked {}",
            num(jobs, "accepted"),
            num(jobs, "finished"),
            num(jobs, "cancelled"),
            num(jobs, "timed_out"),
            num(jobs, "panicked"),
        );
    }
    if let Some(depths) = status.get("queue_depths").and_then(JsonValue::as_array) {
        let row: Vec<String> = depths
            .iter()
            .enumerate()
            .map(|(p, d)| format!("p{p}:{}", d.as_f64().unwrap_or(0.0) as u64))
            .collect();
        println!("queue  {}", row.join(" "));
    }
    if let Some(prom) = prom {
        println!("\nlatency                  p50        p90        p99     count");
        println!(
            "{}",
            latency_row(prom, "submit→accept", "scal_serve_submit_accept_micros")
        );
        println!(
            "{}",
            latency_row(prom, "queue wait", "scal_serve_queue_wait_micros")
        );
        println!("{}", latency_row(prom, "run", "scal_serve_run_micros"));
        println!(
            "{}",
            latency_row(prom, "frame stall", "scal_serve_frame_stall_micros")
        );
        println!(
            "\nio     connections {}  frames {}  bytes {}",
            prom.value("scal_serve_connections_total", &[])
                .unwrap_or(0.0) as u64,
            prom.value("scal_serve_frames_sent_total", &[])
                .unwrap_or(0.0) as u64,
            fmt_bytes(
                prom.value("scal_serve_bytes_sent_total", &[])
                    .unwrap_or(0.0)
            ),
        );
    }
    if !recent.is_empty() {
        println!("\nrecent");
        for ev in recent {
            let detail = ev
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or_default();
            println!(
                "  {:>9}  job {:<5} trace {:<5} {:<8} {}",
                fmt_duration(num(ev, "ms")),
                num(ev, "id"),
                num(ev, "trace"),
                ev.get("state").and_then(JsonValue::as_str).unwrap_or("?"),
                detail
            );
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7444".to_owned();
    let mut metrics_addr: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations: Option<u64> = None;
    let mut clear = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")),
            "--interval-ms" => match value("--interval-ms").parse() {
                Ok(ms) => interval = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--iterations" => match value("--iterations").parse() {
                Ok(n) => iterations = Some(n),
                Err(_) => usage(),
            },
            "--no-clear" => clear = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let client = Client::new(addr.clone());
    let mut tick = 0u64;
    loop {
        tick += 1;
        let status = match client.status_frame() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("status poll failed: {e}");
                return if tick == 1 {
                    ExitCode::FAILURE
                } else {
                    // The server went away mid-watch (shutdown): clean exit.
                    ExitCode::SUCCESS
                };
            }
        };
        let prom = metrics_addr
            .as_deref()
            .and_then(|m| http_get(m, "/metrics").ok())
            .map(|body| PromText::parse(&body));
        let recent: Vec<JsonValue> = client
            .dump()
            .map(|events| {
                let skip = events.len().saturating_sub(8);
                events.into_iter().skip(skip).collect()
            })
            .unwrap_or_default();
        if clear {
            // Clear screen + home, ANSI; harmless when piped.
            print!("\x1b[2J\x1b[H");
        }
        render(&status, prom.as_ref(), &recent, tick);
        if iterations.is_some_and(|n| tick >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}
