//! `scal_serve` — the campaign service daemon.
//!
//! ```text
//! scal_serve [--addr HOST:PORT] [--workers N] [--job-threads N]
//!            [--queue-cap N] [--metrics-addr HOST:PORT] [--no-log]
//! ```
//!
//! Prints `listening on ADDR` once ready, then serves until a client sends
//! `{"cmd":"shutdown"}`. Exits 0 on a clean drain.
//!
//! With `--metrics-addr` a second listener serves `GET /metrics`
//! (Prometheus text exposition) and `GET /healthz` over HTTP/1.1. Job
//! state transitions are logged to stderr as structured JSONL unless
//! `--no-log` is given.

use scal_serve::{serve, ServeConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: scal_serve [--addr HOST:PORT] [--workers N] [--job-threads N] \
         [--queue-cap N] [--metrics-addr HOST:PORT] [--no-log]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7444".to_owned(),
        ..ServeConfig::default()
    };
    config.sched.log_transitions = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--metrics-addr" => config.metrics_addr = Some(value("--metrics-addr")),
            "--no-log" => config.sched.log_transitions = false,
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => config.sched.workers = n,
                _ => usage(),
            },
            "--job-threads" => match value("--job-threads").parse() {
                Ok(n) if n > 0 => config.sched.max_threads_per_job = n,
                _ => usage(),
            },
            "--queue-cap" => match value("--queue-cap").parse() {
                Ok(n) => config.sched.queue_cap = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    if let Some(maddr) = handle.metrics_addr() {
        println!("metrics on http://{maddr}/metrics");
    }
    handle.join();
    ExitCode::SUCCESS
}
