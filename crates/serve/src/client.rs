//! The client side: one-request connections, a frame iterator, and demo
//! request builders shared by the `scal_client` binary, the CI smoke job,
//! and the soak test.

use crate::proto::{JobSpec, PROTOCOL_VERSION};
use scal_obs::json::{self, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A campaign-service client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

/// One parsed response frame.
pub type Frame = JsonValue;

/// Iterates the frames of one request's response stream.
#[derive(Debug)]
pub struct FrameStream {
    reader: BufReader<TcpStream>,
}

impl Iterator for FrameStream {
    type Item = std::io::Result<Frame>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => {
                let line = line.trim_end();
                if line.is_empty() {
                    return self.next();
                }
                Some(json::parse(line).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame: {e}"))
                }))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

impl Client {
    /// A client for the server at `addr` (e.g. `"127.0.0.1:7444"`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// Sends one raw request line and returns the response frame stream.
    ///
    /// # Errors
    ///
    /// Propagates connection and write failures.
    pub fn request(&self, line: &str) -> std::io::Result<FrameStream> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        Ok(FrameStream {
            reader: BufReader::new(stream),
        })
    }

    /// Submits a job and returns the frame stream (`accepted`, `event`…,
    /// then a terminal `result` or `error`).
    ///
    /// # Errors
    ///
    /// Propagates connection and write failures.
    pub fn submit(&self, spec: &JobSpec) -> std::io::Result<FrameStream> {
        self.request(&spec.to_request_line())
    }

    /// Cancels job `id`. Returns whether the server still knew the job.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a non-`cancel_ack` response.
    pub fn cancel(&self, id: u64) -> std::io::Result<bool> {
        let line = format!("{{\"cmd\":\"cancel\",\"v\":{PROTOCOL_VERSION},\"id\":{id}}}");
        let frame = self.single_frame(&line)?;
        match frame.get("found") {
            Some(JsonValue::Bool(found)) => Ok(*found),
            _ => Err(bad_frame("cancel_ack without \"found\"")),
        }
    }

    /// Fetches scheduler counters `(queued, running, done)`.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a non-`status` response.
    pub fn status(&self) -> std::io::Result<(u64, u64, u64)> {
        let line = format!("{{\"cmd\":\"status\",\"v\":{PROTOCOL_VERSION}}}");
        let frame = self.single_frame(&line)?;
        let num = |k: &str| {
            frame
                .get(k)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| bad_frame("status frame missing counters"))
        };
        Ok((num("queued")?, num("running")?, num("done")?))
    }

    /// Fetches the full status frame, extended counters (uptime,
    /// per-priority queue depths, cumulative job outcomes) included.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a missing response frame.
    pub fn status_frame(&self) -> std::io::Result<Frame> {
        let line = format!("{{\"cmd\":\"status\",\"v\":{PROTOCOL_VERSION}}}");
        self.single_frame(&line)
    }

    /// Fetches the flight-recorder dump: the most recent job lifecycle
    /// events as parsed JSON objects, oldest → newest.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a non-`dump` response.
    pub fn dump(&self) -> std::io::Result<Vec<Frame>> {
        let line = format!("{{\"cmd\":\"dump\",\"v\":{PROTOCOL_VERSION}}}");
        let frame = self.single_frame(&line)?;
        match frame.get("events").and_then(JsonValue::as_array) {
            Some(events) => Ok(events.to_vec()),
            None => Err(bad_frame("dump frame without \"events\"")),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a missing ack.
    pub fn shutdown(&self) -> std::io::Result<()> {
        let line = format!("{{\"cmd\":\"shutdown\",\"v\":{PROTOCOL_VERSION}}}");
        let frame = self.single_frame(&line)?;
        match frame.get("frame").and_then(JsonValue::as_str) {
            Some("shutdown_ack") => Ok(()),
            _ => Err(bad_frame("expected shutdown_ack")),
        }
    }

    fn single_frame(&self, line: &str) -> std::io::Result<Frame> {
        self.request(line)?
            .next()
            .ok_or_else(|| bad_frame("connection closed without a frame"))?
    }

    /// Polls until the server accepts connections (handy right after
    /// spawning it). Returns `false` on timeout.
    #[must_use]
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < timeout {
            if self.status().is_ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }
}

fn bad_frame(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

/// Fetches `path` (e.g. `"/metrics"`, `"/healthz"`) from the server's
/// metrics listener at `addr` over HTTP/1.1 and returns the response body.
/// The minimal consumer-side counterpart of the server's minimal
/// responder, used by `scal_top` and the tests; a real deployment points a
/// real Prometheus scraper at the same endpoint.
///
/// # Errors
///
/// Fails on connection errors or a non-`200` status line.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("http status: {}", status.trim()),
        ));
    }
    // Skip headers (Connection: close lets us read the body to EOF).
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    std::io::Read::read_to_string(&mut reader, &mut body)?;
    Ok(body)
}

/// Ready-made job specs over the workspace's own circuits — the demo/smoke
/// request vocabulary.
pub mod demo {
    use crate::proto::{FaultSpec, JobKind, JobSpec};
    use scal_engine::EvalMode;
    use scal_netlist::{Circuit, GateKind, NetlistFormat};
    use scal_seq::SeqBackend;
    use scal_system::campaign::CpuUnit;

    /// A 3-input XOR tree — self-dual, so a valid alternating network.
    #[must_use]
    pub fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let ab = c.gate(GateKind::Xor, &[a, b]);
        let x = c.gate(GateKind::Xor, &[ab, d]);
        c.mark_output("f", x);
        c
    }

    /// A pair-campaign spec over [`xor3`].
    #[must_use]
    pub fn pair_spec(priority: u8, scalar: bool) -> JobSpec {
        JobSpec {
            kind: JobKind::Pair {
                circuit: xor3(),
                faults: FaultSpec::All,
                drop_after_detection: false,
                eval_mode: EvalMode::Cone,
                scalar,
            },
            priority,
            timeout_ms: None,
            threads: 1,
            stream: true,
            fault_collapse: None,
            netlist_format: NetlistFormat::ScalText,
        }
    }

    /// The driven word sequence used by the seq demos: every length-`n`
    /// prefix pattern of alternating 0/1 plus a 0101 burst, exercising the
    /// Kohavi detector's accept path.
    #[must_use]
    pub fn demo_words(n: usize) -> Vec<Vec<bool>> {
        (0..n).map(|i| vec![matches!(i % 4, 1 | 3)]).collect()
    }

    /// A seq-campaign spec over the Reynolds dual flip-flop Kohavi machine.
    #[must_use]
    pub fn seq_spec(priority: u8, backend: SeqBackend, words: usize) -> JobSpec {
        JobSpec {
            kind: JobKind::Seq {
                machine: scal_seq::kohavi::reynolds_circuit(),
                words: demo_words(words),
                backend,
                eval_mode: EvalMode::Cone,
            },
            priority,
            timeout_ms: None,
            threads: 1,
            stream: true,
            fault_collapse: None,
            netlist_format: NetlistFormat::ScalText,
        }
    }

    /// A CPU-campaign spec over the logic unit with one workload (the
    /// cheapest CPU campaign — CPU jobs are the service's heavyweights).
    #[must_use]
    pub fn cpu_spec(priority: u8) -> JobSpec {
        JobSpec {
            kind: JobKind::Cpu {
                unit: CpuUnit::Logic,
                budget: 50_000,
                workloads: Some(vec!["popcount(0xB7)".to_owned()]),
            },
            priority,
            timeout_ms: None,
            threads: 1,
            stream: true,
            fault_collapse: None,
            netlist_format: NetlistFormat::ScalText,
        }
    }
}
