//! The TCP/JSONL campaign server.
//!
//! One listener thread accepts connections; each connection gets its own
//! handler thread. A connection carries exactly **one** request line and
//! receives that request's frame stream (a submit streams `accepted`,
//! `event`… and a terminal `result`/`error`; control requests get a single
//! ack frame). Campaigns themselves run on the shared [`Scheduler`] pool,
//! so a thousand connections never mean a thousand campaigns at once.
//!
//! Client death is detected at the first failed frame write: the handler
//! cancels the job's token and then *drains* the job's channel (discarding
//! frames) so a worker blocked on the bounded channel's backpressure can
//! reach its next cancellation checkpoint instead of deadlocking.

use crate::proto::{
    frame_accepted, frame_cancel_ack, frame_error, frame_shutdown_ack, frame_status, Request,
};
use crate::sched::{SchedConfig, Scheduler};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-job frame-channel depth: how many rendered frames may sit between a
/// campaign worker and a slow client before backpressure throttles the
/// campaign.
pub const FRAME_BUFFER: usize = 256;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Scheduler pool configuration.
    pub sched: SchedConfig,
    /// Longest accepted request line, in bytes (hostile-input guard).
    pub max_request_bytes: usize,
    /// Per-connection socket read timeout. Bounds how long an idle
    /// connection (one that never sends its request line) can pin its
    /// handler thread.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            sched: SchedConfig::default(),
            max_request_bytes: 16 << 20,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::join`] (after a `shutdown` request) or
/// [`ServerHandle::shutdown_and_join`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sched: Option<Arc<SchedulerCell>>,
}

/// Shared ownership wrapper so connection handlers and the handle all see
/// one scheduler, which `join` can still consume to drain the pool.
#[derive(Debug)]
struct SchedulerCell {
    sched: Mutex<Option<Scheduler>>,
}

impl SchedulerCell {
    fn with<R>(&self, f: impl FnOnce(&Scheduler) -> R) -> Option<R> {
        self.sched.lock().expect("scheduler cell").as_ref().map(f)
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown exactly like a `{"cmd":"shutdown"}` request:
    /// reject new submissions, cancel live jobs, stop accepting.
    pub fn shutdown(&self) {
        if let Some(cell) = &self.sched {
            let _ = cell.with(Scheduler::shutdown);
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the accept loop, every connection handler, and the worker
    /// pool to finish. Call after [`ServerHandle::shutdown`] (or after a
    /// client sent `{"cmd":"shutdown"}`).
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a scheduler worker panicked.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread");
        }
        if let Some(cell) = self.sched.take() {
            if let Some(sched) = cell.sched.lock().expect("scheduler cell").take() {
                sched.shutdown();
                sched.join();
            }
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a scheduler worker panicked.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds and starts the server.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let cell = Arc::new(SchedulerCell {
        sched: Mutex::new(Some(Scheduler::new(config.sched.clone()))),
    });

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_cell = Arc::clone(&cell);
    let accept_thread = std::thread::spawn(move || {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let cell = Arc::clone(&accept_cell);
            let shutdown = Arc::clone(&accept_shutdown);
            let cfg = config.clone();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &cell, &shutdown, &cfg);
            }));
            // Reap finished handlers so the vec doesn't grow with every
            // connection ever accepted.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
    });

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        sched: Some(cell),
    })
}

/// Writes one frame line; `false` on failure (client gone).
fn send_line(stream: &mut TcpStream, frame: &str) -> bool {
    stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(
    mut stream: TcpStream,
    cell: &SchedulerCell,
    shutdown: &AtomicBool,
    config: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut line = String::new();
    {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        // take() bounds hostile over-long requests; a line that exhausts
        // the limit without a newline parses as garbage and errors out.
        let mut bounded = std::io::Read::take(&mut reader, config.max_request_bytes as u64);
        if bounded.read_line(&mut line).is_err() {
            return;
        }
    }
    let line = line.trim_end_matches(['\n', '\r']);
    if line.is_empty() {
        return;
    }
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = send_line(&mut stream, &frame_error(None, e.code, &e.message));
            return;
        }
    };
    match request {
        Request::Submit(spec) => {
            let kind = spec.kind.name();
            let priority = spec.priority;
            let (tx, rx) = sync_channel::<String>(FRAME_BUFFER);
            let submitted = cell.with(|s| s.submit(*spec, tx));
            match submitted {
                Some(Ok((id, queued))) => {
                    let mut client_alive =
                        send_line(&mut stream, &frame_accepted(id, kind, priority, queued));
                    if !client_alive {
                        let _ = cell.with(|s| s.cancel(id));
                    }
                    // Stream frames until the worker drops its sender. On a
                    // failed write, cancel the job but KEEP draining the
                    // channel: a worker blocked on the bounded channel's
                    // backpressure must be released to reach its next
                    // cancellation checkpoint.
                    while let Ok(frame) = rx.recv() {
                        if client_alive && !send_line(&mut stream, &frame) {
                            client_alive = false;
                            let _ = cell.with(|s| s.cancel(id));
                        }
                    }
                }
                Some(Err((code, message))) => {
                    let _ = send_line(&mut stream, &frame_error(None, code, &message));
                }
                None => {
                    let _ = send_line(
                        &mut stream,
                        &frame_error(None, "shutting_down", "server is draining"),
                    );
                }
            }
        }
        Request::Cancel { id } => {
            let found = cell.with(|s| s.cancel(id)).unwrap_or(false);
            let _ = send_line(&mut stream, &frame_cancel_ack(id, found));
        }
        Request::Status => {
            let frame = cell
                .with(|s| {
                    let (queued, running, done) = s.counters();
                    frame_status(s.workers(), queued, running, done, s.is_shutting_down())
                })
                .unwrap_or_else(|| frame_status(0, 0, 0, 0, true));
            let _ = send_line(&mut stream, &frame);
        }
        Request::Shutdown => {
            let _ = cell.with(Scheduler::shutdown);
            shutdown.store(true, Ordering::SeqCst);
            let _ = send_line(&mut stream, &frame_shutdown_ack());
            // Self-connect to pop the accept loop out of `incoming()`.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}
