//! The TCP/JSONL campaign server.
//!
//! One listener thread accepts connections; each connection gets its own
//! handler thread. A connection carries exactly **one** request line and
//! receives that request's frame stream (a submit streams `accepted`,
//! `event`… and a terminal `result`/`error`; control requests get a single
//! ack frame). Campaigns themselves run on the shared [`Scheduler`] pool,
//! so a thousand connections never mean a thousand campaigns at once.
//!
//! Client death is detected at the first failed frame write: the handler
//! cancels the job's token and then *drains* the job's channel (discarding
//! frames) so a worker blocked on the bounded channel's backpressure can
//! reach its next cancellation checkpoint instead of deadlocking.
//!
//! With [`ServeConfig::metrics_addr`] set, a second listener thread speaks
//! just enough HTTP/1.1 to serve `GET /metrics` (Prometheus text
//! exposition of the shared [`Telemetry`] registry) and `GET /healthz`
//! (liveness + uptime). The scrape path never touches the campaign path:
//! it reads atomics and renders text.

use crate::proto::{
    frame_accepted, frame_cancel_ack, frame_dump, frame_error, frame_shutdown_ack, frame_status,
    Request, StatusInfo,
};
use crate::sched::{SchedConfig, Scheduler};
use crate::telemetry::Telemetry;
use scal_obs::{Counter, Histogram};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job frame-channel depth: how many rendered frames may sit between a
/// campaign worker and a slow client before backpressure throttles the
/// campaign.
pub const FRAME_BUFFER: usize = 256;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Scheduler pool configuration.
    pub sched: SchedConfig,
    /// Longest accepted request line, in bytes (hostile-input guard).
    pub max_request_bytes: usize,
    /// Per-connection socket read timeout. Bounds how long an idle
    /// connection (one that never sends its request line) can pin its
    /// handler thread.
    pub read_timeout: Duration,
    /// When set, bind a second listener here serving `GET /metrics`
    /// (Prometheus text) and `GET /healthz` over HTTP/1.1. Port `0` picks
    /// a free port (see [`ServerHandle::metrics_addr`]).
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            sched: SchedConfig::default(),
            max_request_bytes: 16 << 20,
            read_timeout: Duration::from_secs(30),
            metrics_addr: None,
        }
    }
}

/// Connection-path instruments, pre-resolved once at startup so handlers
/// never take the registry lock.
#[derive(Debug)]
struct ConnStats {
    connections: Arc<Counter>,
    frames_sent: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    submit_accept: Arc<Histogram>,
}

impl ConnStats {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        ConnStats {
            connections: m.counter("scal_serve_connections_total"),
            frames_sent: m.counter("scal_serve_frames_sent_total"),
            bytes_sent: m.counter("scal_serve_bytes_sent_total"),
            submit_accept: m.histogram("scal_serve_submit_accept_micros"),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::join`] (after a `shutdown` request) or
/// [`ServerHandle::shutdown_and_join`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    sched: Option<Arc<SchedulerCell>>,
    telemetry: Arc<Telemetry>,
}

/// Shared ownership wrapper so connection handlers and the handle all see
/// one scheduler, which `join` can still consume to drain the pool.
#[derive(Debug)]
struct SchedulerCell {
    sched: Mutex<Option<Scheduler>>,
}

impl SchedulerCell {
    fn with<R>(&self, f: impl FnOnce(&Scheduler) -> R) -> Option<R> {
        self.sched.lock().expect("scheduler cell").as_ref().map(f)
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics address, when [`ServeConfig::metrics_addr`] was
    /// set (resolves port `0`).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The telemetry hub shared by the scheduler, the connection handlers
    /// and the `/metrics` responder — inspectable in-process (used by the
    /// bench suite to read latency quantiles without a scrape).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Requests shutdown exactly like a `{"cmd":"shutdown"}` request:
    /// reject new submissions, cancel live jobs, stop accepting.
    pub fn shutdown(&self) {
        if let Some(cell) = &self.sched {
            let _ = cell.with(Scheduler::shutdown);
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loops.
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Waits for the accept loop, every connection handler, the metrics
    /// responder, and the worker pool to finish. Call after
    /// [`ServerHandle::shutdown`] (or after a client sent
    /// `{"cmd":"shutdown"}`).
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a scheduler worker panicked.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread");
        }
        // The JSONL accept loop may have been popped by a client
        // `shutdown` request; make sure the metrics loop sees the flag
        // and gets its wakeup connection too.
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(t) = self.metrics_thread.take() {
            t.join().expect("metrics thread");
        }
        if let Some(cell) = self.sched.take() {
            if let Some(sched) = cell.sched.lock().expect("scheduler cell").take() {
                sched.shutdown();
                sched.join();
            }
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a scheduler worker panicked.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds and starts the server.
///
/// # Errors
///
/// Propagates a bind failure (either listener).
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let mut telemetry = Telemetry::new();
    telemetry.log_transitions = config.sched.log_transitions;
    let telemetry = Arc::new(telemetry);
    let shutdown = Arc::new(AtomicBool::new(false));
    let cell = Arc::new(SchedulerCell {
        sched: Mutex::new(Some(Scheduler::with_telemetry(
            config.sched.clone(),
            Arc::clone(&telemetry),
        ))),
    });
    let stats = Arc::new(ConnStats::new(&telemetry));

    let (metrics_listener, metrics_addr) = match &config.metrics_addr {
        Some(maddr) => {
            let l = TcpListener::bind(maddr)?;
            let a = l.local_addr()?;
            (Some(l), Some(a))
        }
        None => (None, None),
    };

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_cell = Arc::clone(&cell);
    let accept_stats = Arc::clone(&stats);
    let accept_thread = std::thread::spawn(move || {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            accept_stats.connections.inc();
            let cell = Arc::clone(&accept_cell);
            let shutdown = Arc::clone(&accept_shutdown);
            let stats = Arc::clone(&accept_stats);
            let cfg = config.clone();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &cell, &shutdown, &stats, &cfg);
            }));
            // Reap finished handlers so the vec doesn't grow with every
            // connection ever accepted.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
    });

    let metrics_thread = metrics_listener.map(|listener| {
        let shutdown = Arc::clone(&shutdown);
        let telemetry = Arc::clone(&telemetry);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                serve_metrics_request(&mut stream, &telemetry);
            }
        })
    });

    Ok(ServerHandle {
        addr,
        metrics_addr,
        shutdown,
        accept_thread: Some(accept_thread),
        metrics_thread,
        sched: Some(cell),
        telemetry,
    })
}

/// Answers one HTTP/1.1 request on the metrics listener: `GET /metrics` →
/// Prometheus text exposition, `GET /healthz` → liveness JSON, anything
/// else → 404. Always `Connection: close` — scrapers reconnect per
/// scrape, which keeps the responder a simple loop.
fn serve_metrics_request(stream: &mut TcpStream, telemetry: &Telemetry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut request_line = String::new();
    {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut bounded = std::io::Read::take(&mut reader, 8192);
        if bounded.read_line(&mut request_line).is_err() {
            return;
        }
        // Drain the header block so well-behaved clients don't see a reset
        // mid-request; errors and EOF just end the drain.
        let mut header = String::new();
        loop {
            header.clear();
            match bounded.read_line(&mut header) {
                Ok(0) => break,
                Ok(_) if header == "\r\n" || header == "\n" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                telemetry.metrics().render_prometheus(),
            ),
            "/healthz" => (
                "200 OK",
                "application/json",
                format!("{{\"ok\":true,\"uptime_ms\":{}}}\n", telemetry.uptime_ms()),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_owned(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Writes one frame line, counting it; `false` on failure (client gone).
fn send_line(stream: &mut TcpStream, frame: &str, stats: &ConnStats) -> bool {
    let ok = stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok();
    if ok {
        stats.frames_sent.inc();
        stats.bytes_sent.add(frame.len() as u64 + 1);
    }
    ok
}

fn handle_connection(
    mut stream: TcpStream,
    cell: &SchedulerCell,
    shutdown: &AtomicBool,
    stats: &ConnStats,
    config: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut line = String::new();
    {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        // take() bounds hostile over-long requests; a line that exhausts
        // the limit without a newline parses as garbage and errors out.
        let mut bounded = std::io::Read::take(&mut reader, config.max_request_bytes as u64);
        if bounded.read_line(&mut line).is_err() {
            return;
        }
    }
    let received = Instant::now();
    let line = line.trim_end_matches(['\n', '\r']);
    if line.is_empty() {
        return;
    }
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = send_line(
                &mut stream,
                &frame_error(None, None, e.code, &e.message),
                stats,
            );
            return;
        }
    };
    match request {
        Request::Submit(spec) => {
            let kind = spec.kind.name();
            let priority = spec.priority;
            let (tx, rx) = sync_channel::<String>(FRAME_BUFFER);
            let submitted = cell.with(|s| s.submit(*spec, tx));
            match submitted {
                Some(Ok((id, trace, queued))) => {
                    let mut client_alive = send_line(
                        &mut stream,
                        &frame_accepted(id, trace, kind, priority, queued),
                        stats,
                    );
                    stats
                        .submit_accept
                        .record(u64::try_from(received.elapsed().as_micros()).unwrap_or(u64::MAX));
                    if !client_alive {
                        let _ = cell.with(|s| s.cancel(id));
                    }
                    // Stream frames until the worker drops its sender. On a
                    // failed write, cancel the job but KEEP draining the
                    // channel: a worker blocked on the bounded channel's
                    // backpressure must be released to reach its next
                    // cancellation checkpoint.
                    while let Ok(frame) = rx.recv() {
                        if client_alive && !send_line(&mut stream, &frame, stats) {
                            client_alive = false;
                            let _ = cell.with(|s| s.cancel(id));
                        }
                    }
                }
                Some(Err((code, message))) => {
                    let _ = send_line(&mut stream, &frame_error(None, None, code, &message), stats);
                }
                None => {
                    let _ = send_line(
                        &mut stream,
                        &frame_error(None, None, "shutting_down", "server is draining"),
                        stats,
                    );
                }
            }
        }
        Request::Cancel { id } => {
            let found = cell.with(|s| s.cancel(id)).unwrap_or(false);
            let _ = send_line(&mut stream, &frame_cancel_ack(id, found), stats);
        }
        Request::Status => {
            let frame = cell.with(|s| frame_status(&s.status())).unwrap_or_else(|| {
                frame_status(&StatusInfo {
                    shutting_down: true,
                    ..StatusInfo::default()
                })
            });
            let _ = send_line(&mut stream, &frame, stats);
        }
        Request::Dump => {
            let frame = cell
                .with(|s| frame_dump(&s.telemetry().recorder().dump_jsonl()))
                .unwrap_or_else(|| frame_dump(&[]));
            let _ = send_line(&mut stream, &frame, stats);
        }
        Request::Shutdown => {
            let _ = cell.with(Scheduler::shutdown);
            shutdown.store(true, Ordering::SeqCst);
            let _ = send_line(&mut stream, &frame_shutdown_ack(), stats);
            // Self-connect to pop the accept loop out of `incoming()`.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}
