//! Service telemetry: the metrics registry every server component reports
//! into, per-job trace ids, the flight recorder of recent lifecycle
//! events, and a parser for the Prometheus text the `/metrics` endpoint
//! serves (used by `scal_top` and the smoke tests).
//!
//! Metric names are Prometheus-legal from the start (`scal_serve_*`,
//! underscores only) so [`scal_obs::Metrics::render_prometheus`] never has
//! to mangle them:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `scal_serve_queue_depth{priority}` | gauge | queued jobs per priority |
//! | `scal_serve_workers_running` / `_idle` | gauge | pool occupancy |
//! | `scal_serve_jobs_total{state}` | counter | accepted / finished / cancelled / timed_out / panicked / rejected |
//! | `scal_serve_submit_accept_micros` | histogram | request line read → accepted frame sent |
//! | `scal_serve_queue_wait_micros` | histogram | accepted → execution start |
//! | `scal_serve_run_micros` | histogram | campaign wall time |
//! | `scal_serve_frame_stall_micros` | histogram | event-frame channel send (backpressure) |
//! | `scal_serve_connections_total` | counter | accepted TCP connections |
//! | `scal_serve_frames_sent_total` / `scal_serve_bytes_sent_total` | counter | frames/bytes written to clients |

use scal_obs::json::{JsonObject, JsonValue};
use scal_obs::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Flight-recorder capacity: how many recent lifecycle events survive for
/// a `dump`.
pub const FLIGHT_CAPACITY: usize = 256;

/// One job lifecycle event kept by the [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Milliseconds since server start.
    pub ms: u64,
    /// Job id (0 for server-level events).
    pub id: u64,
    /// The job's trace id (0 for server-level events).
    pub trace: u64,
    /// Lifecycle state: `submit`, `start`, `cancel`, `timeout`, `panic`,
    /// `finish`, `error`, `shutdown`.
    pub state: &'static str,
    /// Free-form detail (job kind, error message, …).
    pub detail: String,
}

impl FlightEvent {
    /// One JSON line for the `dump` frame / stderr dump.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.num("ms", self.ms);
        o.num("id", self.id);
        o.num("trace", self.trace);
        o.str("state", self.state);
        if !self.detail.is_empty() {
            o.str("detail", &self.detail);
        }
        o.finish()
    }
}

/// A fixed-capacity ring buffer of the most recent [`FlightEvent`]s.
///
/// Writers claim a slot with one atomic increment and then take only that
/// slot's lock, so concurrent recording from every worker and handler
/// thread never contends on a global lock ("lock-free-ish"). The ring
/// overwrites oldest-first; [`FlightRecorder::dump`] returns the surviving
/// events oldest → newest.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    next: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Appends one event, overwriting the oldest once full.
    pub fn record(&self, event: FlightEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("flight slot") = Some(event);
    }

    /// Events recorded over the recorder's lifetime (not just surviving).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest → newest.
    ///
    /// # Panics
    ///
    /// Panics if a slot lock was poisoned.
    #[must_use]
    pub fn dump(&self) -> Vec<FlightEvent> {
        let cap = self.slots.len() as u64;
        let end = self.next.load(Ordering::Relaxed);
        let start = end.saturating_sub(cap);
        (start..end)
            .filter_map(|seq| {
                let slot = (seq % cap) as usize;
                self.slots[slot].lock().expect("flight slot").clone()
            })
            .collect()
    }

    /// The surviving events as JSON lines, oldest → newest.
    #[must_use]
    pub fn dump_jsonl(&self) -> Vec<String> {
        self.dump().iter().map(FlightEvent::to_json).collect()
    }
}

/// Everything the service measures: the metrics registry, the flight
/// recorder, the trace-id mint, and the server start instant.
///
/// One `Telemetry` is shared (via `Arc`) by the scheduler, every
/// connection handler, the `/metrics` HTTP responder, and the flight
/// recorder dumps.
#[derive(Debug)]
pub struct Telemetry {
    metrics: Metrics,
    recorder: FlightRecorder,
    started: Instant,
    next_trace: AtomicU64,
    /// Emit a structured stderr log line per job state transition.
    pub log_transitions: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh telemetry hub with described metric families.
    #[must_use]
    pub fn new() -> Self {
        let metrics = Metrics::new();
        metrics.describe("scal_serve_queue_depth", "Queued jobs per priority");
        metrics.describe("scal_serve_workers_running", "Workers executing a job");
        metrics.describe("scal_serve_workers_idle", "Workers waiting for work");
        metrics.describe("scal_serve_jobs_total", "Jobs by terminal state");
        metrics.describe(
            "scal_serve_submit_accept_micros",
            "Submit request read to accepted frame sent",
        );
        metrics.describe(
            "scal_serve_queue_wait_micros",
            "Accepted to execution start",
        );
        metrics.describe("scal_serve_run_micros", "Campaign wall time");
        metrics.describe(
            "scal_serve_frame_stall_micros",
            "Event-frame channel send time (client backpressure)",
        );
        metrics.describe("scal_serve_connections_total", "Accepted TCP connections");
        metrics.describe("scal_serve_frames_sent_total", "Frames written to clients");
        metrics.describe("scal_serve_bytes_sent_total", "Bytes written to clients");
        Telemetry {
            metrics,
            recorder: FlightRecorder::default(),
            started: Instant::now(),
            next_trace: AtomicU64::new(1),
            log_transitions: false,
        }
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The flight recorder.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Milliseconds since the hub (≈ server) started.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Mints the next trace id (monotonic, starting at 1).
    #[must_use]
    pub fn mint_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::SeqCst)
    }

    /// Records one job state transition: flight recorder always, plus a
    /// structured stderr JSONL line when [`Telemetry::log_transitions`].
    pub fn transition(&self, id: u64, trace: u64, state: &'static str, detail: &str) {
        let ev = FlightEvent {
            ms: self.uptime_ms(),
            id,
            trace,
            state,
            detail: detail.to_owned(),
        };
        if self.log_transitions {
            let mut o = JsonObject::new();
            o.str("log", "scal_serve");
            o.raw("job", &ev.to_json());
            eprintln!("{}", o.finish());
        }
        self.recorder.record(ev);
    }
}

/// One parsed sample from a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (for histograms: the `_bucket`/`_sum`/`_count` series
    /// name as exposed).
    pub name: String,
    /// `(label, value)` pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` bucket counts parse normally; the value is
    /// the count, not the bound).
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text exposition — the consumer-side inverse of
/// [`scal_obs::Metrics::render_prometheus`], used by `scal_top` and the
/// smoke tests. Comment (`#`) and blank lines are skipped; malformed
/// sample lines are dropped rather than erroring, so a partially
/// scraped body still yields its valid samples.
#[derive(Debug, Clone, Default)]
pub struct PromText {
    /// Every parsed sample, in exposition order.
    pub samples: Vec<PromSample>,
}

impl PromText {
    /// Parses an exposition body.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let samples = text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(parse_sample)
            .collect();
        PromText { samples }
    }

    /// The first sample named `name` whose labels include all of
    /// `labels`.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&PromSample> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|&(k, v)| s.label(k) == Some(v)))
    }

    /// The value of the first matching sample.
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.get(name, labels).map(|s| s.value)
    }

    /// Estimates quantile `q` of histogram `name` from its cumulative
    /// `_bucket` series (the classic `histogram_quantile` interpolation).
    /// `None` when the histogram is absent or empty.
    #[must_use]
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        let bucket_series = format!("{name}_bucket");
        let mut buckets: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.name == bucket_series)
            .filter_map(|s| {
                let le = s.label("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total = buckets.last().map(|&(_, c)| c)?;
        if total <= 0.0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total).max(1.0);
        let mut prev_bound = 0.0;
        let mut prev_cum = 0.0;
        for &(bound, cum) in &buckets {
            if cum >= target {
                if bound.is_infinite() {
                    return Some(prev_bound);
                }
                let in_bucket = cum - prev_cum;
                if in_bucket <= 0.0 {
                    return Some(bound);
                }
                let into = (target - prev_cum) / in_bucket;
                return Some(prev_bound + (bound - prev_bound) * into);
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        Some(prev_bound)
    }
}

/// Parses one `name{labels} value` sample line.
fn parse_sample(line: &str) -> Option<PromSample> {
    let line = line.trim();
    let (series, value) = match line.find('}') {
        Some(close) => {
            let (head, rest) = line.split_at(close + 1);
            (head, rest.trim())
        }
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            (parts.next()?, parts.next()?.trim())
        }
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().ok()?,
    };
    let (name, labels) = match series.find('{') {
        None => (series.to_owned(), Vec::new()),
        Some(open) => {
            let name = series[..open].to_owned();
            let body = series[open + 1..].strip_suffix('}')?;
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty() {
        return None;
    }
    Some(PromSample {
        name,
        labels,
        value,
    })
}

/// Parses `k="v",k2="v2"` with exposition escapes inside values.
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next()? != '"' {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.push((key.trim().to_owned(), value));
    }
}

/// Reads the status-frame JSON into `(queued, running, done)` plus the
/// extended counters, tolerating frames from servers predating them.
#[must_use]
pub fn status_field(frame: &JsonValue, key: &str) -> Option<u64> {
    frame.get(key).and_then(JsonValue::as_f64).map(|n| n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, state: &'static str) -> FlightEvent {
        FlightEvent {
            ms: id * 10,
            id,
            trace: id + 100,
            state,
            detail: String::new(),
        }
    }

    #[test]
    fn recorder_keeps_the_newest_events() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(ev(i, "submit"));
        }
        let d = r.dump();
        assert_eq!(d.len(), 4);
        assert_eq!(
            d.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest → newest"
        );
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn recorder_dump_is_valid_jsonl() {
        let r = FlightRecorder::new(8);
        r.record(FlightEvent {
            ms: 5,
            id: 1,
            trace: 1,
            state: "panic",
            detail: "boom \"quoted\"".to_owned(),
        });
        for line in r.dump_jsonl() {
            scal_obs::json::validate_jsonl(&line).expect("valid line");
        }
    }

    #[test]
    fn recorder_survives_concurrent_writers() {
        let r = std::sync::Arc::new(FlightRecorder::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        r.record(ev(t * 1000 + i, "submit"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        assert_eq!(r.recorded(), 400);
        assert_eq!(r.dump().len(), 16);
    }

    #[test]
    fn trace_ids_are_monotonic() {
        let t = Telemetry::new();
        let a = t.mint_trace();
        let b = t.mint_trace();
        assert!(b > a);
        assert_eq!(a, 1);
    }

    #[test]
    fn prom_text_round_trips_through_the_registry() {
        let t = Telemetry::new();
        t.metrics()
            .gauge_with("scal_serve_queue_depth", &[("priority", "3")])
            .set(7);
        let h = t.metrics().histogram("scal_serve_queue_wait_micros");
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(50_000);
        }
        let text = t.metrics().render_prometheus();
        let parsed = PromText::parse(&text);
        assert_eq!(
            parsed.value("scal_serve_queue_depth", &[("priority", "3")]),
            Some(7.0)
        );
        assert_eq!(
            parsed.value("scal_serve_queue_wait_micros_count", &[]),
            Some(100.0)
        );
        let p50 = parsed
            .histogram_quantile("scal_serve_queue_wait_micros", 0.5)
            .expect("p50");
        let p99 = parsed
            .histogram_quantile("scal_serve_queue_wait_micros", 0.99)
            .expect("p99");
        assert!((50.0..=150.0).contains(&p50), "p50={p50}");
        assert!((40_000.0..=70_000.0).contains(&p99), "p99={p99}");
    }

    #[test]
    fn prom_parser_tolerates_junk_lines() {
        let text = "# HELP x y\n\ngarbage\nx 1\nbad{le= 2\nx{a=\"b\\\"c\"} 3\n";
        let parsed = PromText::parse(text);
        assert_eq!(parsed.value("x", &[]), Some(1.0));
        assert_eq!(parsed.value("x", &[("a", "b\"c")]), Some(3.0));
        assert_eq!(parsed.samples.len(), 2);
    }
}
