//! The line-delimited JSON wire protocol: request parsing, request
//! serialization (the client side), and response-frame construction.
//!
//! Every request is one JSON object on one line; every response is a stream
//! of JSON objects, one per line, each carrying a `"frame"` discriminator.
//! The schema is pinned by `tests/wire_schema.rs` and documented in
//! DESIGN.md ("Campaign service").

use scal_engine::EvalMode;
use scal_faults::Fault;
use scal_netlist::{Circuit, NetlistFormat, Site};
use scal_obs::json::{self, JsonObject, JsonValue};
use scal_obs::{CampaignEvent, CoverageMap};
use scal_seq::{ScalMachine, SeqBackend};
use scal_system::campaign::CpuUnit;

/// Protocol revision spoken by this build. Requests may carry a `"v"` field;
/// a mismatch is rejected so old clients fail loudly instead of silently
/// misparsing frames.
pub const PROTOCOL_VERSION: u64 = 1;

/// Priorities span `0..=MAX_PRIORITY`; higher runs sooner.
pub const MAX_PRIORITY: u64 = 9;

/// Default priority for requests that do not set one.
pub const DEFAULT_PRIORITY: u8 = 4;

/// Smallest accepted CPU period budget. The CPU campaign's golden phase
/// treats a budget too small for a *fault-free* workload as a broken
/// workload (it panics), so the service refuses budgets anywhere near that
/// regime; the default suite needs well under a thousand periods per run.
pub const MIN_CPU_BUDGET: u64 = 10_000;

/// Largest accepted CPU period budget (runaway-request guard).
pub const MAX_CPU_BUDGET: u64 = 100_000_000;

/// Largest accepted driven-word sequence (runaway-request guard).
pub const MAX_SEQ_WORDS: usize = 1 << 16;

/// A malformed or unacceptable request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable code (`"bad_json"`, `"bad_request"`,
    /// `"bad_netlist"`, `"bad_faults"`, `"bad_machine"`, `"bad_words"`,
    /// `"bad_version"`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Which faults a pair request simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// The circuit's whole collapsed fault universe (the default).
    All,
    /// An explicit fault list, simulated in exactly this order.
    List(Vec<Fault>),
}

impl FaultSpec {
    /// Resolves the spec against `circuit` into the concrete fault list.
    #[must_use]
    pub fn resolve(&self, circuit: &Circuit) -> Vec<Fault> {
        match self {
            FaultSpec::All => scal_faults::enumerate_faults(circuit),
            FaultSpec::List(faults) => faults.clone(),
        }
    }
}

/// A fully validated campaign specification carried by a submit request.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// An alternating-pair campaign over a combinational circuit.
    Pair {
        /// The circuit under test.
        circuit: Circuit,
        /// Which faults to simulate.
        faults: FaultSpec,
        /// Classic fault dropping.
        drop_after_detection: bool,
        /// Faulty-sweep evaluation strategy (engine backend only).
        eval_mode: EvalMode,
        /// Run on the scalar differential oracle instead of the packed
        /// engine.
        scalar: bool,
    },
    /// A sequential campaign driving a SCAL machine with a word sequence.
    Seq {
        /// The machine under test.
        machine: ScalMachine,
        /// The driven information words (external inputs, φ excluded).
        words: Vec<Vec<bool>>,
        /// Simulation backend.
        backend: SeqBackend,
        /// Per-fault replay strategy (scalar backend only).
        eval_mode: EvalMode,
    },
    /// A datapath campaign over one CPU unit's workload suite.
    Cpu {
        /// Which datapath unit to inject faults into.
        unit: CpuUnit,
        /// Per-run period budget.
        budget: u64,
        /// Workload-name filter over the default suite (`None` = all).
        workloads: Option<Vec<String>>,
    },
}

impl JobKind {
    /// Stable request-kind name (`"pair"`, `"seq"`, `"cpu"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Pair { .. } => "pair",
            JobKind::Seq { .. } => "seq",
            JobKind::Cpu { .. } => "cpu",
        }
    }
}

/// One submit request: the campaign plus its scheduling envelope.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Scheduling priority, `0..=9`; higher runs sooner.
    pub priority: u8,
    /// Deadline armed when the job *starts executing*; on expiry the job's
    /// cancel token fires and the result reports a cancelled prefix.
    pub timeout_ms: Option<u64>,
    /// Worker threads for the campaign itself (`0` = 1); the server clamps
    /// to its per-job cap.
    pub threads: usize,
    /// Stream per-event frames (`false` = result frame only).
    pub stream: bool,
    /// Compile-time fault collapsing (`None` = backend default: on, or
    /// whatever `SCAL_FAULT_COLLAPSE` says in the server's environment).
    /// Honored by every kind; the seq scalar/graph oracle backends ignore
    /// it. Omitted from the wire when `None`, so v1 request lines are
    /// byte-identical to pre-collapse builds.
    pub fault_collapse: Option<bool>,
    /// Serialization of the `"netlist"` field (`"text"`, `"verilog"`,
    /// `"bench"`); omitted on the wire when it is the text default, so v1
    /// request lines are byte-identical to pre-format builds.
    pub netlist_format: NetlistFormat,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a campaign.
    Submit(Box<JobSpec>),
    /// Cancel a queued or running job by id.
    Cancel {
        /// The id from the job's `accepted` frame.
        id: u64,
    },
    /// Report scheduler counters.
    Status,
    /// Dump the flight recorder's recent lifecycle events.
    Dump,
    /// Drain and stop the server.
    Shutdown,
}

fn as_u64(v: &JsonValue) -> Option<u64> {
    let n = v.as_f64()?;
    if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
        Some(n as u64)
    } else {
        None
    }
}

fn as_bool(v: &JsonValue) -> Option<bool> {
    match v {
        JsonValue::Bool(b) => Some(*b),
        _ => None,
    }
}

fn field_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => as_u64(v)
            .map(Some)
            .ok_or_else(|| ProtoError::new("bad_request", format!("{key:?} must be an integer"))),
    }
}

fn field_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, ProtoError> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => as_bool(v)
            .ok_or_else(|| ProtoError::new("bad_request", format!("{key:?} must be a boolean"))),
    }
}

fn field_str<'a>(obj: &'a JsonValue, key: &str) -> Result<Option<&'a str>, ProtoError> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ProtoError::new("bad_request", format!("{key:?} must be a string"))),
    }
}

/// Decodes one driven word: an array of `0`/`1` numbers or booleans.
fn parse_word(v: &JsonValue) -> Result<Vec<bool>, ProtoError> {
    let items = v
        .as_array()
        .ok_or_else(|| ProtoError::new("bad_words", "each word must be an array"))?;
    items
        .iter()
        .map(|b| match b {
            JsonValue::Bool(x) => Ok(*x),
            JsonValue::Num(n) if *n == 0.0 => Ok(false),
            JsonValue::Num(n) if *n == 1.0 => Ok(true),
            _ => Err(ProtoError::new(
                "bad_words",
                "word bits must be 0, 1, true or false",
            )),
        })
        .collect()
}

/// Decodes a fault-list entry against `circuit`, validating that the node
/// exists and (for branches) that the pin is a real fanin position.
fn parse_fault(v: &JsonValue, circuit: &Circuit) -> Result<Fault, ProtoError> {
    let node_of = |idx: u64| {
        usize::try_from(idx)
            .ok()
            .and_then(|i| circuit.node_id(i))
            .ok_or_else(|| ProtoError::new("bad_faults", format!("no node with index {idx}")))
    };
    let stuck = as_bool(
        v.get("stuck")
            .ok_or_else(|| ProtoError::new("bad_faults", "fault entry missing \"stuck\""))?,
    )
    .ok_or_else(|| ProtoError::new("bad_faults", "\"stuck\" must be a boolean"))?;
    let node = field_u64(v, "node")?
        .ok_or_else(|| ProtoError::new("bad_faults", "fault entry missing \"node\""))?;
    let site = match field_str(v, "site")? {
        Some("stem") => Site::Stem(node_of(node)?),
        Some("branch") => {
            let node = node_of(node)?;
            let pin = field_u64(v, "pin")?
                .ok_or_else(|| ProtoError::new("bad_faults", "branch fault missing \"pin\""))?;
            let pin = usize::try_from(pin)
                .map_err(|_| ProtoError::new("bad_faults", "\"pin\" out of range"))?;
            if pin >= circuit.fanins(node).len() {
                return Err(ProtoError::new(
                    "bad_faults",
                    format!("node {node} has no fanin pin {pin}"),
                ));
            }
            Site::Branch { node, pin }
        }
        _ => {
            return Err(ProtoError::new(
                "bad_faults",
                "fault \"site\" must be \"stem\" or \"branch\"",
            ))
        }
    };
    Ok(Fault::new(site, stuck))
}

fn parse_netlist_format(obj: &JsonValue) -> Result<NetlistFormat, ProtoError> {
    match field_str(obj, "netlist_format")? {
        None => Ok(NetlistFormat::ScalText),
        Some(s) => s
            .parse()
            .map_err(|e: String| ProtoError::new("bad_request", e)),
    }
}

fn parse_netlist(obj: &JsonValue, format: NetlistFormat) -> Result<Circuit, ProtoError> {
    let text = field_str(obj, "netlist")?
        .ok_or_else(|| ProtoError::new("bad_request", "submit missing \"netlist\""))?;
    let circuit = Circuit::read(text, format)
        .map_err(|e| ProtoError::new("bad_netlist", format!("netlist parse: {e}")))?;
    circuit
        .validate()
        .map_err(|e| ProtoError::new("bad_netlist", format!("netlist invalid: {e}")))?;
    Ok(circuit)
}

fn parse_eval_mode(obj: &JsonValue) -> Result<EvalMode, ProtoError> {
    match field_str(obj, "eval_mode")? {
        None => Ok(EvalMode::default()),
        Some(s) => s
            .parse()
            .map_err(|e| ProtoError::new("bad_request", format!("{e:?}"))),
    }
}

fn parse_submit(obj: &JsonValue) -> Result<JobSpec, ProtoError> {
    let netlist_format = parse_netlist_format(obj)?;
    let kind = match field_str(obj, "kind")? {
        Some("pair") => {
            let circuit = parse_netlist(obj, netlist_format)?;
            let faults = match obj.get("faults") {
                None | Some(JsonValue::Null) | Some(JsonValue::Str(_)) => {
                    match field_str(obj, "faults")? {
                        None | Some("all") => FaultSpec::All,
                        Some(other) => {
                            return Err(ProtoError::new(
                                "bad_faults",
                                format!("\"faults\" must be \"all\" or a list, got {other:?}"),
                            ))
                        }
                    }
                }
                Some(JsonValue::Array(items)) => FaultSpec::List(
                    items
                        .iter()
                        .map(|v| parse_fault(v, &circuit))
                        .collect::<Result<_, _>>()?,
                ),
                Some(_) => {
                    return Err(ProtoError::new(
                        "bad_faults",
                        "\"faults\" must be \"all\" or a list",
                    ))
                }
            };
            let scalar = match field_str(obj, "backend")? {
                None | Some("engine") => false,
                Some("scalar") => true,
                Some(other) => {
                    return Err(ProtoError::new(
                        "bad_request",
                        format!("pair \"backend\" must be \"engine\" or \"scalar\", got {other:?}"),
                    ))
                }
            };
            JobKind::Pair {
                circuit,
                faults,
                drop_after_detection: field_bool(obj, "drop", false)?,
                eval_mode: parse_eval_mode(obj)?,
                scalar,
            }
        }
        Some("seq") => {
            let circuit = parse_netlist(obj, netlist_format)?;
            let inputs = circuit.inputs().len();
            if inputs == 0 {
                return Err(ProtoError::new(
                    "bad_machine",
                    "a SCAL machine needs at least the φ input",
                ));
            }
            let outputs = circuit.outputs().len();
            let z_count = field_u64(obj, "z")?
                .ok_or_else(|| ProtoError::new("bad_machine", "seq missing \"z\""))?;
            let y_count = field_u64(obj, "y")?
                .ok_or_else(|| ProtoError::new("bad_machine", "seq missing \"y\""))?;
            let (z_count, y_count) = (z_count as usize, y_count as usize);
            if z_count + y_count > outputs {
                return Err(ProtoError::new(
                    "bad_machine",
                    format!(
                        "z + y = {} exceeds the {outputs} outputs",
                        z_count + y_count
                    ),
                ));
            }
            let code_pair = match obj.get("code_pair") {
                None | Some(JsonValue::Null) => None,
                Some(JsonValue::Array(items)) if items.len() == 2 => {
                    let f = as_u64(&items[0]).map(|v| v as usize);
                    let g = as_u64(&items[1]).map(|v| v as usize);
                    match (f, g) {
                        (Some(f), Some(g)) if f < outputs && g < outputs => Some((f, g)),
                        _ => {
                            return Err(ProtoError::new(
                                "bad_machine",
                                "\"code_pair\" indices must name outputs",
                            ))
                        }
                    }
                }
                Some(_) => {
                    return Err(ProtoError::new(
                        "bad_machine",
                        "\"code_pair\" must be a two-element array",
                    ))
                }
            };
            let words_v = obj
                .get("words")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| ProtoError::new("bad_words", "seq missing \"words\" array"))?;
            if words_v.len() > MAX_SEQ_WORDS {
                return Err(ProtoError::new(
                    "bad_words",
                    format!("at most {MAX_SEQ_WORDS} driven words per request"),
                ));
            }
            let words: Vec<Vec<bool>> = words_v.iter().map(parse_word).collect::<Result<_, _>>()?;
            // The campaign panics on a word-width mismatch; reject it here.
            if let Some(w) = words.iter().find(|w| w.len() != inputs - 1) {
                return Err(ProtoError::new(
                    "bad_words",
                    format!(
                        "words must have width {} (external inputs), got {}",
                        inputs - 1,
                        w.len()
                    ),
                ));
            }
            let backend = match field_str(obj, "seq_backend")? {
                None => SeqBackend::default(),
                Some(s) => s
                    .parse()
                    .map_err(|e| ProtoError::new("bad_request", format!("{e:?}")))?,
            };
            let design = field_str(obj, "design")?.unwrap_or("wire").to_owned();
            JobKind::Seq {
                machine: ScalMachine {
                    circuit,
                    z_count,
                    y_count,
                    code_pair,
                    design,
                },
                words,
                backend,
                eval_mode: parse_eval_mode(obj)?,
            }
        }
        Some("cpu") => {
            let unit = match field_str(obj, "unit")? {
                Some("adder") => CpuUnit::Adder,
                Some("logic") => CpuUnit::Logic,
                other => {
                    return Err(ProtoError::new(
                        "bad_request",
                        format!("cpu \"unit\" must be \"adder\" or \"logic\", got {other:?}"),
                    ))
                }
            };
            let budget = field_u64(obj, "budget")?.unwrap_or(1_000_000);
            if !(MIN_CPU_BUDGET..=MAX_CPU_BUDGET).contains(&budget) {
                return Err(ProtoError::new(
                    "bad_request",
                    format!("\"budget\" must be in {MIN_CPU_BUDGET}..={MAX_CPU_BUDGET}"),
                ));
            }
            let workloads = match obj.get("workloads") {
                None | Some(JsonValue::Null) => None,
                Some(JsonValue::Array(items)) => {
                    let names: Vec<String> = items
                        .iter()
                        .map(|v| {
                            v.as_str().map(str::to_owned).ok_or_else(|| {
                                ProtoError::new("bad_request", "workload names must be strings")
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let known = scal_system::campaign::default_workloads();
                    for n in &names {
                        if !known.iter().any(|w| w.name == n) {
                            return Err(ProtoError::new(
                                "bad_request",
                                format!("unknown workload {n:?}"),
                            ));
                        }
                    }
                    if names.is_empty() {
                        return Err(ProtoError::new(
                            "bad_request",
                            "\"workloads\" must not be empty",
                        ));
                    }
                    Some(names)
                }
                Some(_) => {
                    return Err(ProtoError::new(
                        "bad_request",
                        "\"workloads\" must be an array of names",
                    ))
                }
            };
            JobKind::Cpu {
                unit,
                budget,
                workloads,
            }
        }
        other => {
            return Err(ProtoError::new(
                "bad_request",
                format!("\"kind\" must be \"pair\", \"seq\" or \"cpu\", got {other:?}"),
            ))
        }
    };
    let priority = field_u64(obj, "priority")?.unwrap_or(u64::from(DEFAULT_PRIORITY));
    if priority > MAX_PRIORITY {
        return Err(ProtoError::new(
            "bad_request",
            format!("\"priority\" must be 0..={MAX_PRIORITY}"),
        ));
    }
    let fault_collapse = match obj.get("fault_collapse") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(as_bool(v).ok_or_else(|| {
            ProtoError::new("bad_request", "\"fault_collapse\" must be a boolean")
        })?),
    };
    Ok(JobSpec {
        kind,
        priority: priority as u8,
        timeout_ms: field_u64(obj, "timeout_ms")?,
        threads: field_u64(obj, "threads")?.unwrap_or(0) as usize,
        stream: field_bool(obj, "stream", true)?,
        fault_collapse,
        netlist_format,
    })
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] naming what is wrong; the server turns it
    /// into an `error` frame.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let obj = json::parse(line).map_err(|e| ProtoError::new("bad_json", e))?;
        if let Some(v) = field_u64(&obj, "v")? {
            if v != PROTOCOL_VERSION {
                return Err(ProtoError::new(
                    "bad_version",
                    format!("protocol v{v} not supported (server speaks v{PROTOCOL_VERSION})"),
                ));
            }
        }
        match field_str(&obj, "cmd")? {
            Some("submit") => Ok(Request::Submit(Box::new(parse_submit(&obj)?))),
            Some("cancel") => {
                let id = field_u64(&obj, "id")?
                    .ok_or_else(|| ProtoError::new("bad_request", "cancel missing \"id\""))?;
                Ok(Request::Cancel { id })
            }
            Some("status") => Ok(Request::Status),
            Some("dump") => Ok(Request::Dump),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(ProtoError::new(
                "bad_request",
                format!("\"cmd\" must be \"submit\", \"cancel\", \"status\", \"dump\" or \"shutdown\", got {other:?}"),
            )),
        }
    }
}

/// Serializes a driven word list as a JSON array of 0/1 digits.
fn words_json(words: &[Vec<bool>]) -> String {
    let mut out = String::from("[");
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &b) in w.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push(if b { '1' } else { '0' });
        }
        out.push(']');
    }
    out.push(']');
    out
}

impl JobSpec {
    /// Serializes the spec as one submit request line (no trailing newline)
    /// — the client-side inverse of [`Request::parse`].
    #[must_use]
    pub fn to_request_line(&self) -> String {
        let mut o = JsonObject::new();
        o.str("cmd", "submit");
        o.num("v", PROTOCOL_VERSION);
        o.str("kind", self.kind.name());
        o.num("priority", u64::from(self.priority));
        if let Some(ms) = self.timeout_ms {
            o.num("timeout_ms", ms);
        }
        o.num("threads", self.threads as u64);
        o.bool("stream", self.stream);
        if let Some(fc) = self.fault_collapse {
            o.bool("fault_collapse", fc);
        }
        match &self.kind {
            JobKind::Pair {
                circuit,
                faults,
                drop_after_detection,
                eval_mode,
                scalar,
            } => {
                if self.netlist_format != NetlistFormat::ScalText {
                    o.str("netlist_format", self.netlist_format.name());
                }
                o.str("netlist", &circuit.write_string(self.netlist_format));
                match faults {
                    FaultSpec::All => o.str("faults", "all"),
                    FaultSpec::List(list) => {
                        let mut arr = String::from("[");
                        for (i, f) in list.iter().enumerate() {
                            if i > 0 {
                                arr.push(',');
                            }
                            let mut fo = JsonObject::new();
                            match f.site {
                                Site::Stem(n) => {
                                    fo.str("site", "stem");
                                    fo.num("node", n.index() as u64);
                                }
                                Site::Branch { node, pin } => {
                                    fo.str("site", "branch");
                                    fo.num("node", node.index() as u64);
                                    fo.num("pin", pin as u64);
                                }
                            }
                            fo.bool("stuck", f.stuck);
                            arr.push_str(&fo.finish());
                        }
                        arr.push(']');
                        o.raw("faults", &arr);
                    }
                }
                o.bool("drop", *drop_after_detection);
                o.str("eval_mode", eval_mode.name());
                o.str("backend", if *scalar { "scalar" } else { "engine" });
            }
            JobKind::Seq {
                machine,
                words,
                backend,
                eval_mode,
            } => {
                if self.netlist_format != NetlistFormat::ScalText {
                    o.str("netlist_format", self.netlist_format.name());
                }
                o.str(
                    "netlist",
                    &machine.circuit.write_string(self.netlist_format),
                );
                o.num("z", machine.z_count as u64);
                o.num("y", machine.y_count as u64);
                if let Some((f, g)) = machine.code_pair {
                    o.raw("code_pair", &format!("[{f},{g}]"));
                }
                o.str("design", &machine.design);
                o.raw("words", &words_json(words));
                o.str("seq_backend", backend.name());
                o.str("eval_mode", eval_mode.name());
            }
            JobKind::Cpu {
                unit,
                budget,
                workloads,
            } => {
                o.str(
                    "unit",
                    match unit {
                        CpuUnit::Adder => "adder",
                        CpuUnit::Logic => "logic",
                    },
                );
                o.num("budget", *budget);
                if let Some(names) = workloads {
                    let mut arr = String::from("[");
                    for (i, n) in names.iter().enumerate() {
                        if i > 0 {
                            arr.push(',');
                        }
                        arr.push('"');
                        arr.push_str(&json::escape(n));
                        arr.push('"');
                    }
                    arr.push(']');
                    o.raw("workloads", &arr);
                }
            }
        }
        o.finish()
    }
}

/// `{"frame":"accepted",...}` — the job was queued under `id`, traced as
/// `trace` in every subsequent frame, flight-recorder entry, and log line.
#[must_use]
pub fn frame_accepted(id: u64, trace: u64, kind: &str, priority: u8, queued: usize) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "accepted");
    o.num("id", id);
    o.num("trace", trace);
    o.str("kind", kind);
    o.num("priority", u64::from(priority));
    o.num("queued", queued as u64);
    o.finish()
}

/// `{"frame":"event",...}` — one campaign event, spliced verbatim into an
/// envelope carrying the job's id and trace.
#[must_use]
pub fn frame_event(id: u64, trace: u64, event: &CampaignEvent) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "event");
    o.num("id", id);
    o.num("trace", trace);
    o.raw("event", &event.to_json());
    o.finish()
}

/// `{"frame":"result",...}` — the final summary. `report` and `coverage`
/// are deterministic (bit-identical to a local run); `micros` carries the
/// only wall-clock measurement and is a separate field so consumers can
/// strip it.
#[must_use]
pub fn frame_result(
    id: u64,
    trace: u64,
    report: &str,
    coverage: &CoverageMap,
    micros: u64,
) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "result");
    o.num("id", id);
    o.num("trace", trace);
    o.raw("report", report);
    o.raw("coverage", &coverage.to_json());
    o.num("micros", micros);
    o.finish()
}

/// `{"frame":"error",...}` — the request (or job `id`, traced as `trace`)
/// failed. Request-level errors (malformed line, full queue) have neither
/// id nor trace.
#[must_use]
pub fn frame_error(id: Option<u64>, trace: Option<u64>, code: &str, message: &str) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "error");
    if let Some(id) = id {
        o.num("id", id);
    }
    if let Some(trace) = trace {
        o.num("trace", trace);
    }
    o.str("code", code);
    o.str("message", message);
    o.finish()
}

/// `{"frame":"cancel_ack",...}` — reply to a cancel request. `found` is
/// `false` when the id names no queued or running job (already finished,
/// or never existed).
#[must_use]
pub fn frame_cancel_ack(id: u64, found: bool) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "cancel_ack");
    o.num("id", id);
    o.bool("found", found);
    o.finish()
}

/// Everything a `status` frame reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// Worker-pool size.
    pub workers: usize,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs fully processed (result or error frame sent).
    pub done: u64,
    /// `true` once the server is draining.
    pub shutting_down: bool,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Queue depth per priority `0..=9` (index = priority).
    pub queue_depths: [u64; 10],
    /// Cumulative jobs accepted.
    pub jobs_accepted: u64,
    /// Cumulative jobs finished un-cancelled.
    pub jobs_finished: u64,
    /// Cumulative jobs cancelled by request or client death.
    pub jobs_cancelled: u64,
    /// Cumulative jobs cancelled by their deadline.
    pub jobs_timed_out: u64,
    /// Cumulative jobs that panicked (isolated, reported as errors).
    pub jobs_panicked: u64,
}

/// `{"frame":"status",...}` — scheduler counters. The first five fields
/// predate telemetry and keep their order, so old clients keep parsing.
#[must_use]
pub fn frame_status(info: &StatusInfo) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "status");
    o.num("workers", info.workers as u64);
    o.num("queued", info.queued as u64);
    o.num("running", info.running as u64);
    o.num("done", info.done);
    o.bool("shutting_down", info.shutting_down);
    o.num("uptime_ms", info.uptime_ms);
    let depths: Vec<String> = info.queue_depths.iter().map(u64::to_string).collect();
    o.raw("queue_depths", &format!("[{}]", depths.join(",")));
    let mut jobs = JsonObject::new();
    jobs.num("accepted", info.jobs_accepted);
    jobs.num("finished", info.jobs_finished);
    jobs.num("cancelled", info.jobs_cancelled);
    jobs.num("timed_out", info.jobs_timed_out);
    jobs.num("panicked", info.jobs_panicked);
    o.raw("jobs", &jobs.finish());
    o.finish()
}

/// `{"frame":"dump",...}` — the flight recorder's surviving lifecycle
/// events, oldest → newest, each already a JSON object line.
#[must_use]
pub fn frame_dump(events: &[String]) -> String {
    let mut o = JsonObject::new();
    o.str("frame", "dump");
    o.raw("events", &format!("[{}]", events.join(",")));
    o.finish()
}

/// `{"frame":"shutdown_ack"}` — the server is draining and will exit.
#[must_use]
pub fn frame_shutdown_ack() -> String {
    let mut o = JsonObject::new();
    o.str("frame", "shutdown_ack");
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::GateKind;

    fn xor3() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        c
    }

    #[test]
    fn pair_spec_round_trips_through_the_wire() {
        let c = xor3();
        let faults = scal_faults::enumerate_faults(&c);
        let spec = JobSpec {
            kind: JobKind::Pair {
                circuit: c.clone(),
                faults: FaultSpec::List(faults.clone()),
                drop_after_detection: true,
                eval_mode: EvalMode::Full,
                scalar: false,
            },
            priority: 7,
            timeout_ms: Some(1000),
            threads: 2,
            stream: true,
            fault_collapse: Some(false),
            netlist_format: NetlistFormat::ScalText,
        };
        let line = spec.to_request_line();
        let parsed = match Request::parse(&line).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("expected submit, got {other:?}"),
        };
        assert_eq!(parsed.priority, 7);
        assert_eq!(parsed.timeout_ms, Some(1000));
        assert_eq!(parsed.threads, 2);
        assert_eq!(parsed.fault_collapse, Some(false));
        match parsed.kind {
            JobKind::Pair {
                circuit,
                faults: FaultSpec::List(parsed_faults),
                drop_after_detection: true,
                eval_mode: EvalMode::Full,
                scalar: false,
            } => {
                scal_netlist::assert_circuit_eq(&circuit, &c);
                assert_eq!(parsed_faults, faults);
            }
            other => panic!("bad kind: {other:?}"),
        }
    }

    #[test]
    fn seq_spec_round_trips_through_the_wire() {
        let machine = scal_seq::kohavi::reynolds_circuit();
        let words = vec![vec![false], vec![true], vec![false]];
        let spec = JobSpec {
            kind: JobKind::Seq {
                machine: machine.clone(),
                words: words.clone(),
                backend: SeqBackend::Scalar,
                eval_mode: EvalMode::Cone,
            },
            priority: DEFAULT_PRIORITY,
            timeout_ms: None,
            threads: 0,
            stream: false,
            fault_collapse: None,
            netlist_format: NetlistFormat::Bench,
        };
        let line = spec.to_request_line();
        assert!(line.contains("\"netlist_format\":\"bench\""));
        assert!(
            !line.contains("fault_collapse"),
            "None must stay off the wire"
        );
        let parsed = match Request::parse(&line).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("expected submit, got {other:?}"),
        };
        assert!(!parsed.stream);
        assert_eq!(parsed.fault_collapse, None);
        match parsed.kind {
            JobKind::Seq {
                machine: m,
                words: w,
                backend: SeqBackend::Scalar,
                ..
            } => {
                scal_netlist::assert_circuit_eq(&m.circuit, &machine.circuit);
                assert_eq!(m.z_count, machine.z_count);
                assert_eq!(m.y_count, machine.y_count);
                assert_eq!(m.code_pair, machine.code_pair);
                assert_eq!(w, words);
            }
            other => panic!("bad kind: {other:?}"),
        }
    }

    #[test]
    fn cpu_spec_round_trips_through_the_wire() {
        let spec = JobSpec {
            kind: JobKind::Cpu {
                unit: CpuUnit::Logic,
                budget: 50_000,
                workloads: Some(vec!["popcount(0xB7)".to_owned()]),
            },
            priority: 9,
            timeout_ms: None,
            threads: 1,
            stream: true,
            fault_collapse: Some(true),
            netlist_format: NetlistFormat::ScalText,
        };
        let parsed = match Request::parse(&spec.to_request_line()).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("expected submit, got {other:?}"),
        };
        match parsed.kind {
            JobKind::Cpu {
                unit: CpuUnit::Logic,
                budget: 50_000,
                workloads: Some(names),
            } => assert_eq!(names, ["popcount(0xB7)"]),
            other => panic!("bad kind: {other:?}"),
        }
    }

    #[test]
    fn hostile_requests_get_typed_errors() {
        let cases = [
            ("not json at all", "bad_json"),
            ("{\"cmd\":\"fly\"}", "bad_request"),
            ("{\"cmd\":\"submit\",\"kind\":\"pair\"}", "bad_request"),
            (
                "{\"cmd\":\"submit\",\"kind\":\"pair\",\"netlist\":\"garbage\"}",
                "bad_netlist",
            ),
            (
                "{\"cmd\":\"submit\",\"kind\":\"pair\",\"netlist_format\":\"edif\",\"netlist\":\"x\"}",
                "bad_request",
            ),
            ("{\"cmd\":\"cancel\"}", "bad_request"),
            ("{\"cmd\":\"status\",\"v\":99}", "bad_version"),
            (
                "{\"cmd\":\"submit\",\"kind\":\"cpu\",\"unit\":\"logic\",\"budget\":3}",
                "bad_request",
            ),
            (
                "{\"cmd\":\"submit\",\"kind\":\"cpu\",\"unit\":\"logic\",\"workloads\":[\"rm -rf\"]}",
                "bad_request",
            ),
            (
                "{\"cmd\":\"submit\",\"kind\":\"cpu\",\"unit\":\"logic\",\"fault_collapse\":\"yes\"}",
                "bad_request",
            ),
        ];
        for (line, code) in cases {
            match Request::parse(line) {
                Err(e) => assert_eq!(e.code, code, "line {line:?}"),
                Ok(r) => panic!("{line:?} parsed as {r:?}"),
            }
        }
    }

    #[test]
    fn word_width_mismatches_are_rejected_not_panicked() {
        let machine = scal_seq::kohavi::reynolds_circuit();
        let spec = JobSpec {
            kind: JobKind::Seq {
                machine,
                words: vec![vec![false, true]], // Kohavi has 1 external input
                backend: SeqBackend::Packed,
                eval_mode: EvalMode::Cone,
            },
            priority: 0,
            timeout_ms: None,
            threads: 0,
            stream: true,
            fault_collapse: None,
            netlist_format: NetlistFormat::ScalText,
        };
        let err = Request::parse(&spec.to_request_line()).unwrap_err();
        assert_eq!(err.code, "bad_words");
    }

    #[test]
    fn fault_entries_name_real_pins() {
        let c = xor3();
        let line = format!(
            "{{\"cmd\":\"submit\",\"kind\":\"pair\",\"netlist\":\"{}\",\"faults\":[{{\"site\":\"branch\",\"node\":3,\"pin\":9,\"stuck\":true}}]}}",
            json::escape(&c.write_string(NetlistFormat::ScalText))
        );
        assert_eq!(Request::parse(&line).unwrap_err().code, "bad_faults");
    }

    #[test]
    fn frames_are_valid_jsonl() {
        let cov = CoverageMap::default();
        let status = StatusInfo {
            workers: 4,
            running: 1,
            done: 7,
            uptime_ms: 1234,
            jobs_accepted: 8,
            jobs_finished: 7,
            ..StatusInfo::default()
        };
        let frames = [
            frame_accepted(1, 42, "pair", 4, 0),
            frame_event(1, 42, &CampaignEvent::Progress { done: 1, total: 10 }),
            frame_result(1, 42, "{\"campaign\":\"pair\"}", &cov, 12),
            frame_error(Some(1), Some(42), "bad_request", "nope"),
            frame_error(None, None, "bad_json", "nope"),
            frame_cancel_ack(1, true),
            frame_status(&status),
            frame_dump(&["{\"ms\":1,\"id\":1,\"trace\":42,\"state\":\"submit\"}".to_owned()]),
            frame_dump(&[]),
            frame_shutdown_ack(),
        ];
        for f in &frames {
            json::validate_jsonl(f).expect("valid frame");
            assert_eq!(f.lines().count(), 1);
        }
    }

    #[test]
    fn job_frames_carry_their_trace() {
        let cov = CoverageMap::default();
        for f in [
            frame_accepted(3, 99, "seq", 1, 2),
            frame_event(3, 99, &CampaignEvent::Progress { done: 1, total: 2 }),
            frame_result(3, 99, "{}", &cov, 1),
            frame_error(Some(3), Some(99), "engine", "x"),
        ] {
            let v = json::parse(&f).unwrap();
            assert_eq!(
                v.get("trace").and_then(JsonValue::as_f64),
                Some(99.0),
                "{f}"
            );
            assert_eq!(v.get("id").and_then(JsonValue::as_f64), Some(3.0), "{f}");
        }
        // Request-level errors have no id and no trace.
        let v = json::parse(&frame_error(None, None, "bad_json", "x")).unwrap();
        assert!(v.get("trace").is_none() && v.get("id").is_none());
    }

    #[test]
    fn status_frame_reports_extended_counters() {
        let mut info = StatusInfo {
            workers: 2,
            queued: 3,
            uptime_ms: 500,
            jobs_accepted: 10,
            jobs_cancelled: 2,
            jobs_timed_out: 1,
            ..StatusInfo::default()
        };
        info.queue_depths[9] = 3;
        let v = json::parse(&frame_status(&info)).unwrap();
        assert_eq!(v.get("uptime_ms").and_then(JsonValue::as_f64), Some(500.0));
        let depths = v.get("queue_depths").and_then(JsonValue::as_array).unwrap();
        assert_eq!(depths.len(), 10);
        assert_eq!(depths[9].as_f64(), Some(3.0));
        let jobs = v.get("jobs").expect("jobs object");
        assert_eq!(jobs.get("accepted").and_then(JsonValue::as_f64), Some(10.0));
        assert_eq!(jobs.get("timed_out").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn dump_requests_parse() {
        match Request::parse("{\"cmd\":\"dump\",\"v\":1}").unwrap() {
            Request::Dump => {}
            other => panic!("expected dump, got {other:?}"),
        }
    }
}
