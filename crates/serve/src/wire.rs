//! Bridging a campaign's event stream onto a connection channel.

use crate::proto::frame_event;
use scal_obs::{CampaignEvent, CampaignObserver, Histogram};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

/// A [`CampaignObserver`] that renders every event as an `event` frame and
/// sends it down a **bounded** channel toward the connection handler.
///
/// The bounded channel is the service's backpressure: when a client reads
/// slower than the campaign produces events, the send blocks the worker at
/// the next event, throttling the campaign instead of buffering without
/// limit. A closed channel (client gone, job detached) makes sends fail
/// silently — the campaign keeps running and the result is still recorded
/// by the scheduler, so a vanished client never corrupts a run.
///
/// When a stall histogram is attached, the time each send spends blocked on
/// the full channel is recorded (`scal_serve_frame_stall_micros`), making
/// slow-reader backpressure visible in `/metrics`.
#[derive(Debug)]
pub struct WireObserver {
    id: u64,
    trace: u64,
    tx: SyncSender<String>,
    stall: Option<Arc<Histogram>>,
}

impl WireObserver {
    /// Wraps channel `tx` as the event sink for job `id` with trace id
    /// `trace`; `stall` (if any) receives per-send blocked-time samples in
    /// microseconds.
    #[must_use]
    pub fn new(id: u64, trace: u64, tx: SyncSender<String>, stall: Option<Arc<Histogram>>) -> Self {
        WireObserver {
            id,
            trace,
            tx,
            stall,
        }
    }
}

impl CampaignObserver for WireObserver {
    fn on_event(&self, event: &CampaignEvent) {
        let frame = frame_event(self.id, self.trace, event);
        match &self.stall {
            Some(h) => {
                // try_send first: the common un-blocked case costs no clock
                // reads beyond the miss, and a full channel falls back to
                // the timed blocking send.
                match self.tx.try_send(frame) {
                    Ok(()) => h.record(0),
                    Err(std::sync::mpsc::TrySendError::Full(frame)) => {
                        let start = Instant::now();
                        let _ = self.tx.send(frame);
                        h.record(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {}
                }
            }
            None => {
                let _ = self.tx.send(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn events_become_frames() {
        let (tx, rx) = sync_channel(4);
        let obs = WireObserver::new(7, 42, tx, None);
        obs.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"frame\":\"event\""));
        assert!(frame.contains("\"id\":7"));
        assert!(frame.contains("\"trace\":42"));
        assert!(frame.contains("\"ev\":\"progress\""));
    }

    #[test]
    fn a_closed_channel_is_harmless() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let obs = WireObserver::new(1, 1, tx, None);
        obs.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
    }

    #[test]
    fn stall_time_is_recorded() {
        let h = Arc::new(Histogram::default());
        let (tx, rx) = sync_channel(1);
        let obs = WireObserver::new(1, 1, tx, Some(Arc::clone(&h)));
        obs.on_event(&CampaignEvent::Progress { done: 1, total: 4 });
        assert_eq!(h.count(), 1); // un-blocked send records a zero sample
                                  // The channel (capacity 1) is now full; a reader drains it only
                                  // after a delay, so the next send measurably blocks.
        let reader = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            while let Ok(f) = rx.recv() {
                got.push(f);
            }
            got
        });
        obs.on_event(&CampaignEvent::Progress { done: 2, total: 4 });
        drop(obs);
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(h.count(), 2);
        assert!(h.sum() >= 1000, "stall sum {} too small", h.sum());
    }
}
