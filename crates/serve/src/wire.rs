//! Bridging a campaign's event stream onto a connection channel.

use crate::proto::frame_event;
use scal_obs::{CampaignEvent, CampaignObserver};
use std::sync::mpsc::SyncSender;

/// A [`CampaignObserver`] that renders every event as an `event` frame and
/// sends it down a **bounded** channel toward the connection handler.
///
/// The bounded channel is the service's backpressure: when a client reads
/// slower than the campaign produces events, the send blocks the worker at
/// the next event, throttling the campaign instead of buffering without
/// limit. A closed channel (client gone, job detached) makes sends fail
/// silently — the campaign keeps running and the result is still recorded
/// by the scheduler, so a vanished client never corrupts a run.
#[derive(Debug)]
pub struct WireObserver {
    id: u64,
    tx: SyncSender<String>,
}

impl WireObserver {
    /// Wraps channel `tx` as the event sink for job `id`.
    #[must_use]
    pub fn new(id: u64, tx: SyncSender<String>) -> Self {
        WireObserver { id, tx }
    }
}

impl CampaignObserver for WireObserver {
    fn on_event(&self, event: &CampaignEvent) {
        let _ = self.tx.send(frame_event(self.id, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn events_become_frames() {
        let (tx, rx) = sync_channel(4);
        let obs = WireObserver::new(7, tx);
        obs.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"frame\":\"event\""));
        assert!(frame.contains("\"id\":7"));
        assert!(frame.contains("\"ev\":\"progress\""));
    }

    #[test]
    fn a_closed_channel_is_harmless() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let obs = WireObserver::new(1, tx);
        obs.on_event(&CampaignEvent::Progress { done: 1, total: 2 });
    }
}
