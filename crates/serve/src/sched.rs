//! The shared campaign scheduler: a bounded worker pool draining a priority
//! queue of submitted jobs.
//!
//! * **Bounded concurrency** — at most `workers` campaigns run at once, no
//!   matter how many requests are in flight; everything else waits in the
//!   queue.
//! * **Priorities with aging** — the pool picks the queued job with the
//!   highest *effective* priority (requested priority plus one point per
//!   [`AGING_STRIDE`] scheduler decisions spent waiting), ties broken by
//!   arrival order. Aging makes progress fair: a flood of high-priority
//!   work can delay a low-priority job, but never starve it.
//! * **Cancellation** — every job owns a sticky [`CancelToken`], cancellable
//!   by id from any connection while queued *or* running. A cancelled queued
//!   job still runs — its token is already cancelled, so the campaign
//!   returns the empty prefix and the client still gets its result frame.
//!   Deadlines ([`JobSpec::timeout_ms`]) arm when execution starts.
//! * **Panic isolation** — a panicking campaign (impossible via the
//!   validated protocol, but workers outlive bugs) is caught, reported as
//!   an `error` frame, and the worker survives; the flight recorder is
//!   dumped to stderr so the events leading up to the panic are visible.
//! * **Telemetry** — every job is traced: a monotonically-minted trace id
//!   returned at submit, echoed in every frame, recorded in the
//!   [`FlightRecorder`](crate::telemetry::FlightRecorder) per state
//!   transition, and measured by queue-depth/utilization gauges and
//!   queue-wait/run-time histograms (see [`crate::telemetry`]).

use crate::job::{run_job, ServeError};
use crate::proto::{frame_error, frame_result, JobSpec, StatusInfo, MAX_PRIORITY};
use crate::telemetry::Telemetry;
use crate::wire::WireObserver;
use scal_obs::{CancelToken, Counter, Gauge, Histogram, NullObserver};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler decisions a queued job must wait through to gain one effective
/// priority point.
pub const AGING_STRIDE: u64 = 4;

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Concurrent campaign slots.
    pub workers: usize,
    /// Per-job thread-count cap (requests asking for more are clamped).
    pub max_threads_per_job: usize,
    /// Queued-job cap; submissions beyond it are rejected with a
    /// `queue_full` error frame.
    pub queue_cap: usize,
    /// Emit a structured stderr JSONL line per job state transition (the
    /// flight recorder records transitions regardless).
    pub log_transitions: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 4,
            max_threads_per_job: 2,
            queue_cap: 1024,
            log_transitions: false,
        }
    }
}

struct QueuedJob {
    id: u64,
    trace: u64,
    spec: JobSpec,
    token: CancelToken,
    tx: SyncSender<String>,
    arrival: u64,
    submitted: Instant,
}

#[derive(Default)]
struct SchedState {
    queue: Vec<QueuedJob>,
    /// Monotonic decision clock: bumps on every submit and every pick.
    ticks: u64,
    running: usize,
}

/// Pre-resolved metric handles so the hot path never takes the registry
/// lock.
struct Instruments {
    queue_depth: Vec<Arc<Gauge>>,
    workers_running: Arc<Gauge>,
    workers_idle: Arc<Gauge>,
    jobs_accepted: Arc<Counter>,
    jobs_finished: Arc<Counter>,
    jobs_cancelled: Arc<Counter>,
    jobs_timed_out: Arc<Counter>,
    jobs_panicked: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    run_time: Arc<Histogram>,
    frame_stall: Arc<Histogram>,
}

impl Instruments {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        let queue_depth = (0..=MAX_PRIORITY)
            .map(|p| m.gauge_with("scal_serve_queue_depth", &[("priority", &p.to_string())]))
            .collect();
        Instruments {
            queue_depth,
            workers_running: m.gauge("scal_serve_workers_running"),
            workers_idle: m.gauge("scal_serve_workers_idle"),
            jobs_accepted: m.counter_with("scal_serve_jobs_total", &[("state", "accepted")]),
            jobs_finished: m.counter_with("scal_serve_jobs_total", &[("state", "finished")]),
            jobs_cancelled: m.counter_with("scal_serve_jobs_total", &[("state", "cancelled")]),
            jobs_timed_out: m.counter_with("scal_serve_jobs_total", &[("state", "timed_out")]),
            jobs_panicked: m.counter_with("scal_serve_jobs_total", &[("state", "panicked")]),
            queue_wait: m.histogram("scal_serve_queue_wait_micros"),
            run_time: m.histogram("scal_serve_run_micros"),
            frame_stall: m.histogram("scal_serve_frame_stall_micros"),
        }
    }

    fn depth_gauge(&self, priority: u8) -> &Gauge {
        &self.queue_depth[usize::from(priority).min(self.queue_depth.len() - 1)]
    }
}

struct SchedInner {
    config: SchedConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    done: AtomicU64,
    /// Token and trace id of queued *and* running jobs, for cancel-by-id.
    tokens: Mutex<HashMap<u64, (CancelToken, u64)>>,
    telemetry: Arc<Telemetry>,
    instruments: Instruments,
}

/// The shared scheduler. Cloneable handles all drive one pool.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (queued, running, done) = self.counters();
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("queued", &queued)
            .field("running", &running)
            .field("done", &done)
            .finish()
    }
}

impl Scheduler {
    /// Starts the worker pool with its own telemetry hub.
    #[must_use]
    pub fn new(config: SchedConfig) -> Self {
        let mut telemetry = Telemetry::new();
        telemetry.log_transitions = config.log_transitions;
        Scheduler::with_telemetry(config, Arc::new(telemetry))
    }

    /// Starts the worker pool reporting into an existing telemetry hub
    /// (shared with the server's connection handlers and `/metrics`
    /// responder).
    #[must_use]
    pub fn with_telemetry(config: SchedConfig, telemetry: Arc<Telemetry>) -> Self {
        let workers_n = config.workers.max(1);
        let instruments = Instruments::new(&telemetry);
        instruments.workers_idle.set(workers_n as i64);
        let inner = Arc::new(SchedInner {
            config,
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            done: AtomicU64::new(0),
            tokens: Mutex::new(HashMap::new()),
            telemetry,
            instruments,
        });
        let workers = (0..workers_n)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Scheduler { inner, workers }
    }

    /// The telemetry hub this pool reports into.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// Queues a job. Frames stream down `tx`. Returns `(id, trace_id,
    /// queue_len)`, or an error when the queue is full or the scheduler is
    /// shutting down.
    ///
    /// # Errors
    ///
    /// `"queue_full"` or `"shutting_down"` as a [`ServeError::Proto`]-style
    /// pair `(code, message)`.
    pub fn submit(
        &self,
        spec: JobSpec,
        tx: SyncSender<String>,
    ) -> Result<(u64, u64, usize), (&'static str, String)> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(("shutting_down", "server is draining".to_owned()));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let trace = self.inner.telemetry.mint_trace();
        let token = CancelToken::new();
        let priority = spec.priority;
        let kind = spec.kind.name();
        let queued = {
            let mut state = self.inner.state.lock().expect("sched lock");
            if state.queue.len() >= self.inner.config.queue_cap {
                return Err((
                    "queue_full",
                    format!("{} jobs already queued", state.queue.len()),
                ));
            }
            state.ticks += 1;
            let arrival = state.ticks;
            self.inner
                .tokens
                .lock()
                .expect("token lock")
                .insert(id, (token.clone(), trace));
            state.queue.push(QueuedJob {
                id,
                trace,
                spec,
                token,
                tx,
                arrival,
                submitted: Instant::now(),
            });
            state.queue.len()
        };
        self.inner.instruments.jobs_accepted.inc();
        self.inner.instruments.depth_gauge(priority).inc();
        self.inner.telemetry.transition(
            id,
            trace,
            "submit",
            &format!("kind={kind} priority={priority} queued={queued}"),
        );
        self.inner.cv.notify_one();
        Ok((id, trace, queued))
    }

    /// Cancels job `id` wherever it is (queued or running). Returns `false`
    /// when the id names no live job.
    #[must_use]
    pub fn cancel(&self, id: u64) -> bool {
        match self.inner.tokens.lock().expect("token lock").get(&id) {
            Some((token, trace)) => {
                token.cancel();
                self.inner.telemetry.transition(id, *trace, "cancel", "");
                true
            }
            None => false,
        }
    }

    /// `(queued, running, done)` counters.
    #[must_use]
    pub fn counters(&self) -> (usize, usize, u64) {
        let state = self.inner.state.lock().expect("sched lock");
        (
            state.queue.len(),
            state.running,
            self.inner.done.load(Ordering::SeqCst),
        )
    }

    /// The full status-frame payload: pool counters, uptime, per-priority
    /// queue depths, cumulative job outcomes.
    #[must_use]
    pub fn status(&self) -> StatusInfo {
        let ins = &self.inner.instruments;
        let mut info = StatusInfo {
            workers: self.workers.len(),
            shutting_down: self.is_shutting_down(),
            done: self.inner.done.load(Ordering::SeqCst),
            uptime_ms: self.inner.telemetry.uptime_ms(),
            jobs_accepted: ins.jobs_accepted.get(),
            jobs_finished: ins.jobs_finished.get(),
            jobs_cancelled: ins.jobs_cancelled.get(),
            jobs_timed_out: ins.jobs_timed_out.get(),
            jobs_panicked: ins.jobs_panicked.get(),
            ..StatusInfo::default()
        };
        let state = self.inner.state.lock().expect("sched lock");
        info.queued = state.queue.len();
        info.running = state.running;
        for job in &state.queue {
            let p = usize::from(job.spec.priority).min(info.queue_depths.len() - 1);
            info.queue_depths[p] += 1;
        }
        info
    }

    /// `true` once [`Scheduler::shutdown`] has been called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Begins draining: no new submissions, every queued and running job's
    /// token is cancelled (queued jobs still run, returning instant empty
    /// prefixes, so every accepted job gets its result frame). When
    /// transition logging is on, the flight recorder is dumped to stderr.
    pub fn shutdown(&self) {
        let already = self.inner.shutdown.swap(true, Ordering::SeqCst);
        for (token, _) in self.inner.tokens.lock().expect("token lock").values() {
            token.cancel();
        }
        self.inner.cv.notify_all();
        if !already {
            self.inner.telemetry.transition(0, 0, "shutdown", "");
            if self.inner.config.log_transitions {
                for line in self.inner.telemetry.recorder().dump_jsonl() {
                    eprintln!("{line}");
                }
            }
        }
    }

    /// Waits for the pool to drain after [`Scheduler::shutdown`].
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked (worker loops catch
    /// campaign panics, so this means a scheduler bug).
    pub fn join(self) {
        for w in self.workers {
            w.join().expect("scheduler worker");
        }
    }
}

/// Picks the queue index with the highest effective priority (priority +
/// waited-ticks/AGING_STRIDE), ties to the earliest arrival.
fn pick(queue: &[QueuedJob], now: u64) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .max_by_key(|(_, j)| {
            let waited = now.saturating_sub(j.arrival);
            let effective = u64::from(j.spec.priority) + waited / AGING_STRIDE;
            (effective, u64::MAX - j.arrival)
        })
        .map(|(i, _)| i)
}

fn worker_loop(inner: &SchedInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("sched lock");
            loop {
                if let Some(i) = pick(&state.queue, state.ticks) {
                    state.ticks += 1;
                    state.running += 1;
                    break state.queue.swap_remove(i);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                state = inner.cv.wait(state).expect("sched lock");
            }
        };
        inner.instruments.depth_gauge(job.spec.priority).dec();
        inner.instruments.workers_running.inc();
        inner.instruments.workers_idle.dec();
        run_one(inner, &job);
        {
            let mut state = inner.state.lock().expect("sched lock");
            state.running -= 1;
        }
        inner.instruments.workers_running.dec();
        inner.instruments.workers_idle.inc();
        inner.tokens.lock().expect("token lock").remove(&job.id);
        inner.done.fetch_add(1, Ordering::SeqCst);
    }
}

/// Executes one job and sends its terminal frame.
fn run_one(inner: &SchedInner, job: &QueuedJob) {
    let waited = u64::try_from(job.submitted.elapsed().as_micros()).unwrap_or(u64::MAX);
    inner.instruments.queue_wait.record(waited);
    inner.telemetry_start(job, waited);
    let threads = match job.spec.threads {
        0 => 1,
        t => t.min(inner.config.max_threads_per_job.max(1)),
    };
    let guard = job
        .spec
        .timeout_ms
        .map(|ms| job.token.cancel_after(Duration::from_millis(ms)));
    let wire = WireObserver::new(
        job.id,
        job.trace,
        job.tx.clone(),
        Some(Arc::clone(&inner.instruments.frame_stall)),
    );
    let observer: &dyn scal_obs::CampaignObserver = if job.spec.stream {
        &wire
    } else {
        &NullObserver
    };
    let started = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job(
            &job.spec.kind,
            threads,
            job.spec.fault_collapse,
            observer,
            Some(&job.token),
        )
    }));
    inner
        .instruments
        .run_time
        .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    let timed_out = guard.as_ref().is_some_and(scal_obs::DeadlineGuard::fired);
    drop(guard);
    let frame = match outcome {
        Ok(Ok(out)) => {
            let (state, counter) = if timed_out && out.cancelled {
                ("timeout", &inner.instruments.jobs_timed_out)
            } else if out.cancelled {
                ("cancelled", &inner.instruments.jobs_cancelled)
            } else {
                ("finish", &inner.instruments.jobs_finished)
            };
            counter.inc();
            inner.telemetry().transition(
                job.id,
                job.trace,
                state,
                &format!("micros={}", out.micros),
            );
            frame_result(job.id, job.trace, &out.report, &out.coverage, out.micros)
        }
        Ok(Err(e)) => {
            inner
                .telemetry()
                .transition(job.id, job.trace, "error", &e.to_string());
            frame_error(Some(job.id), Some(job.trace), e.code(), &e.to_string())
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            inner.instruments.jobs_panicked.inc();
            inner
                .telemetry()
                .transition(job.id, job.trace, "panic", &msg);
            // Panic isolation is the flight recorder's reason to exist:
            // dump what the server was doing right before the blow-up.
            for line in inner.telemetry.recorder().dump_jsonl() {
                eprintln!("{line}");
            }
            let e = ServeError::Panicked(msg);
            frame_error(Some(job.id), Some(job.trace), e.code(), &e.to_string())
        }
    };
    let _ = job.tx.send(frame);
}

impl SchedInner {
    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn telemetry_start(&self, job: &QueuedJob, waited_micros: u64) {
        self.telemetry.transition(
            job.id,
            job.trace,
            "start",
            &format!("waited_micros={waited_micros}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FaultSpec, JobKind};
    use scal_engine::EvalMode;
    use scal_netlist::{Circuit, GateKind};
    use std::sync::mpsc::sync_channel;

    fn pair_spec(priority: u8) -> JobSpec {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        JobSpec {
            kind: JobKind::Pair {
                circuit: c,
                faults: FaultSpec::All,
                drop_after_detection: false,
                eval_mode: EvalMode::Cone,
                scalar: false,
            },
            priority,
            timeout_ms: None,
            threads: 1,
            stream: true,
            fault_collapse: None,
            netlist_format: scal_netlist::NetlistFormat::ScalText,
        }
    }

    fn drain_result(rx: &std::sync::mpsc::Receiver<String>) -> String {
        loop {
            let frame = rx.recv().expect("frame");
            if frame.contains("\"frame\":\"result\"") || frame.contains("\"frame\":\"error\"") {
                return frame;
            }
        }
    }

    #[test]
    fn jobs_run_to_result_frames() {
        let sched = Scheduler::new(SchedConfig {
            workers: 2,
            ..SchedConfig::default()
        });
        let (tx, rx) = sync_channel(256);
        let (id, trace, _) = sched.submit(pair_spec(4), tx).unwrap();
        let result = drain_result(&rx);
        assert!(result.contains(&format!("\"id\":{id}")));
        assert!(result.contains(&format!("\"trace\":{trace}")));
        assert!(result.contains("\"fault_secure\":true"));
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn cancel_by_id_reaches_queued_jobs() {
        // One worker, so the second submission must wait in the queue;
        // cancelling it there yields an empty cancelled prefix.
        let sched = Scheduler::new(SchedConfig {
            workers: 1,
            ..SchedConfig::default()
        });
        let (tx1, rx1) = sync_channel(4096);
        let (tx2, rx2) = sync_channel(4096);
        let (_id1, _, _) = sched.submit(pair_spec(9), tx1).unwrap();
        let (id2, _, _) = sched.submit(pair_spec(0), tx2).unwrap();
        assert!(sched.cancel(id2));
        let r2 = drain_result(&rx2);
        assert!(r2.contains("\"cancelled\":true"), "{r2}");
        let r1 = drain_result(&rx1);
        assert!(r1.contains("\"frame\":\"result\""));
        assert!(!sched.cancel(9999));
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn full_queues_and_draining_pools_reject_submissions() {
        let sched = Scheduler::new(SchedConfig {
            workers: 1,
            max_threads_per_job: 1,
            queue_cap: 0,
            ..SchedConfig::default()
        });
        let (tx, _rx) = sync_channel(4);
        let err = sched.submit(pair_spec(0), tx.clone()).unwrap_err();
        assert_eq!(err.0, "queue_full");
        sched.shutdown();
        let err = sched.submit(pair_spec(0), tx).unwrap_err();
        assert_eq!(err.0, "shutting_down");
        sched.join();
    }

    #[test]
    fn aging_prevents_starvation() {
        // With an empty queue the pick is trivial; verify the formula
        // directly: an old priority-0 job eventually outranks a fresh
        // priority-9 one.
        let (tx, _rx) = sync_channel(1);
        let old = QueuedJob {
            id: 1,
            trace: 1,
            spec: pair_spec(0),
            token: CancelToken::new(),
            tx: tx.clone(),
            arrival: 0,
            submitted: Instant::now(),
        };
        let fresh = QueuedJob {
            id: 2,
            trace: 2,
            spec: pair_spec(9),
            token: CancelToken::new(),
            tx,
            arrival: 100,
            submitted: Instant::now(),
        };
        let queue = vec![fresh, old];
        // At tick 100 the old job has waited 100 ticks: 0 + 100/4 = 25 > 9.
        assert_eq!(pick(&queue, 100), Some(1));
        // At tick 101 the fresh job has barely waited; old still wins.
        assert_eq!(pick(&queue, 101), Some(1));
        // Equal effective priority: earliest arrival wins.
        let queue2 = vec![
            QueuedJob {
                id: 3,
                trace: 3,
                spec: pair_spec(4),
                token: CancelToken::new(),
                tx: sync_channel(1).0,
                arrival: 10,
                submitted: Instant::now(),
            },
            QueuedJob {
                id: 4,
                trace: 4,
                spec: pair_spec(4),
                token: CancelToken::new(),
                tx: sync_channel(1).0,
                arrival: 5,
                submitted: Instant::now(),
            },
        ];
        assert_eq!(pick(&queue2, 11), Some(1));
    }

    #[test]
    fn telemetry_counts_job_outcomes() {
        let sched = Scheduler::new(SchedConfig {
            workers: 1,
            ..SchedConfig::default()
        });
        let (tx, rx) = sync_channel(4096);
        let (_, _, _) = sched.submit(pair_spec(4), tx).unwrap();
        let _ = drain_result(&rx);
        // Cancelled job: cancel before it can start is racy with a live
        // worker, so cancel a *pre-cancelled* submission instead.
        let (tx2, rx2) = sync_channel(4096);
        let (id2, _, _) = sched.submit(pair_spec(4), tx2).unwrap();
        let _ = sched.cancel(id2);
        let _ = drain_result(&rx2);
        // Let the worker fully retire both jobs.
        while sched.counters().2 < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = sched.status();
        assert_eq!(status.jobs_accepted, 2);
        assert_eq!(
            status.jobs_finished + status.jobs_cancelled,
            2,
            "{status:?}"
        );
        assert_eq!(status.workers, 1);
        assert!(status.uptime_ms < 3_600_000);
        let m = sched.telemetry().metrics();
        assert_eq!(m.histogram("scal_serve_queue_wait_micros").count(), 2);
        assert_eq!(m.histogram("scal_serve_run_micros").count(), 2);
        assert_eq!(m.gauge("scal_serve_workers_running").get(), 0);
        assert_eq!(m.gauge("scal_serve_workers_idle").get(), 1);
        // Flight recorder saw at least submit/start/terminal per job.
        assert!(sched.telemetry().recorder().recorded() >= 6);
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn timeouts_count_as_timed_out_not_cancelled() {
        let sched = Scheduler::new(SchedConfig {
            workers: 1,
            ..SchedConfig::default()
        });
        let mut spec = pair_spec(4);
        spec.timeout_ms = Some(0); // fires immediately at execution start
        let (tx, rx) = sync_channel(4096);
        let (_, _, _) = sched.submit(spec, tx).unwrap();
        let result = drain_result(&rx);
        while sched.counters().2 < 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = sched.status();
        // A zero deadline usually beats the campaign's first batch, but a
        // fast machine may finish first — either way the books balance.
        assert_eq!(
            status.jobs_finished + status.jobs_timed_out + status.jobs_cancelled,
            1,
            "{status:?} ({result})"
        );
        if result.contains("\"cancelled\":true") {
            assert_eq!(status.jobs_timed_out, 1, "{status:?}");
        }
        sched.shutdown();
        sched.join();
    }
}
