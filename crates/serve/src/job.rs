//! Running one submitted job: the shared execution path behind the server's
//! workers *and* the reference path tests replay locally, so streamed
//! results are bit-identical to a local run by construction.

use crate::proto::{JobKind, ProtoError};
use scal_engine::EngineError;
use scal_obs::json::JsonObject;
use scal_obs::{
    CampaignObserver, CancelToken, CoverageMap, CoverageObserver, MultiObserver, Profiler,
};
use scal_seq::SeqOutcome;
use std::time::Instant;

/// Why a job failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The campaign backend rejected the job.
    Engine(EngineError),
    /// The request was malformed (parse-time rejection).
    Proto(ProtoError),
    /// The campaign panicked; the worker survived and reports the payload.
    Panicked(String),
}

impl ServeError {
    /// Stable machine-readable code for the `error` frame.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Engine(_) => "engine",
            ServeError::Proto(e) => e.code,
            ServeError::Panicked(_) => "panicked",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Proto(e) => write!(f, "{e}"),
            ServeError::Panicked(msg) => write!(f, "campaign panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Everything one finished job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// `true` iff a cancel token (or deadline) stopped the run early.
    pub cancelled: bool,
    /// The per-fault coverage map — deterministic across backends and
    /// thread counts, a valid fault-ordered prefix under cancellation.
    pub coverage: CoverageMap,
    /// Deterministic summary JSON object (no wall-clock fields).
    pub report: String,
    /// Total job wall time in microseconds — the only nondeterministic
    /// field, kept out of `report` so consumers can strip it.
    pub micros: u64,
}

/// Runs one job to completion, streaming events to `observer`.
///
/// `fault_collapse` is the submit knob: `None` leaves the backend's default
/// (collapsing on, subject to `SCAL_FAULT_COLLAPSE` in the server's
/// environment), `Some` forces it for this job.
///
/// # Errors
///
/// Returns [`ServeError::Engine`] when the campaign backend rejects the
/// job (e.g. a sequential circuit handed to a pair campaign).
pub fn run_job(
    kind: &JobKind,
    threads: usize,
    fault_collapse: Option<bool>,
    observer: &dyn CampaignObserver,
    cancel: Option<&CancelToken>,
) -> Result<JobOutput, ServeError> {
    let t = Instant::now();
    let cov = CoverageObserver::new();
    // The profiler rides along to surface the collapse ratio in the result
    // frame; everything it collects is derived from the same deterministic
    // event stream the client sees.
    let prof = Profiler::new();
    let mut fan = MultiObserver::new();
    fan.push(observer);
    fan.push(&prof);
    let observer: &dyn CampaignObserver = &fan;
    let (mut o, cancelled) = match kind {
        JobKind::Pair {
            circuit,
            faults,
            drop_after_detection,
            eval_mode,
            scalar,
        } => {
            let fault_list = faults.resolve(circuit);
            let total = fault_list.len();
            let mut c = scal_faults::Campaign::new(circuit)
                .faults(fault_list)
                .threads(threads)
                .drop_after_detection(*drop_after_detection)
                .eval_mode(*eval_mode)
                .observer(observer)
                .coverage(&cov);
            if *scalar {
                c = c.scalar();
            }
            if let Some(fc) = fault_collapse {
                c = c.fault_collapse(fc);
            }
            if let Some(token) = cancel {
                c = c.cancel(token);
            }
            let report = c.run()?;
            let mut o = JsonObject::new();
            o.str("campaign", if *scalar { "pair_scalar" } else { "pair" });
            o.num("faults", report.results.len() as u64);
            o.num("total_faults", total as u64);
            o.bool("fault_secure", report.all_fault_secure());
            o.bool("tested", report.all_tested());
            o.num("pairs", report.stats.pairs_evaluated);
            o.num("words", report.stats.words_evaluated);
            o.num("dropped", report.stats.faults_dropped as u64);
            o.bool("cancelled", report.cancelled);
            (o, report.cancelled)
        }
        JobKind::Seq {
            machine,
            words,
            backend,
            eval_mode,
        } => {
            let total = machine.checkable_faults().len();
            let mut c = scal_seq::Campaign::new(machine, words)
                .threads(threads)
                .backend(*backend)
                .eval_mode(*eval_mode)
                .observer(observer)
                .coverage(&cov);
            if let Some(fc) = fault_collapse {
                c = c.fault_collapse(fc);
            }
            if let Some(token) = cancel {
                c = c.cancel(token);
            }
            let out = c.run()?;
            let (dormant, detected, violations) = out.tally();
            let mut o = JsonObject::new();
            o.str("campaign", "seq");
            o.num("faults", out.outcomes.len() as u64);
            o.num("total_faults", total as u64);
            o.num("dormant", dormant as u64);
            o.num("detected", detected as u64);
            o.num("violations", violations as u64);
            o.bool("fault_secure", out.fault_secure());
            let first_violation = out
                .outcomes
                .iter()
                .filter_map(|(_, o)| match o {
                    SeqOutcome::Violation { word } => Some(*word as u64),
                    _ => None,
                })
                .min();
            if let Some(w) = first_violation {
                o.num("first_violation_word", w);
            }
            o.bool("cancelled", out.cancelled);
            (o, out.cancelled)
        }
        JobKind::Cpu {
            unit,
            budget,
            workloads,
        } => {
            let mut c = scal_system::campaign::Campaign::new(*unit)
                .budget(*budget)
                .observer(observer)
                .coverage(&cov);
            if let Some(names) = workloads {
                let suite = scal_system::campaign::default_workloads()
                    .into_iter()
                    .filter(|w| names.iter().any(|n| n == w.name))
                    .collect();
                c = c.workloads(suite);
            }
            if let Some(fc) = fault_collapse {
                c = c.fault_collapse(fc);
            }
            if let Some(token) = cancel {
                c = c.cancel(token);
            }
            let out = c.run();
            let mut o = JsonObject::new();
            o.str(
                "campaign",
                match unit {
                    scal_system::campaign::CpuUnit::Adder => "cpu_adder",
                    scal_system::campaign::CpuUnit::Logic => "cpu_logic",
                },
            );
            o.num("faults", out.results.len() as u64);
            o.num("undetected_wrong", out.undetected_wrong() as u64);
            o.num("periods", out.periods);
            o.bool("cancelled", out.cancelled);
            (o, out.cancelled)
        }
    };
    // The collapse counters come from the campaign's own event stream and
    // are deterministic; they are absent when collapsing did not run (knob
    // off, or an oracle backend that never collapses).
    if let Some(profile) = prof.latest() {
        if let Some(ratio) = profile.collapse_ratio() {
            o.num("collapse_faults", profile.collapse_faults);
            o.num("collapse_representatives", profile.collapse_representatives);
            o.float("collapse_ratio", ratio);
        }
    }
    let report = o.finish();
    let coverage = cov.latest().unwrap_or_default();
    Ok(JobOutput {
        cancelled,
        coverage,
        report,
        micros: u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FaultSpec;
    use scal_engine::EvalMode;
    use scal_netlist::{Circuit, GateKind};
    use scal_obs::NullObserver;
    use scal_seq::SeqBackend;

    fn xor3_pair_kind() -> JobKind {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let x = c.gate(GateKind::Xor, &[a, b, d]);
        c.mark_output("f", x);
        JobKind::Pair {
            circuit: c,
            faults: FaultSpec::All,
            drop_after_detection: false,
            eval_mode: EvalMode::Cone,
            scalar: false,
        }
    }

    #[test]
    fn pair_jobs_report_and_cover() {
        let out = run_job(&xor3_pair_kind(), 1, None, &NullObserver, None).unwrap();
        assert!(!out.cancelled);
        assert!(out.report.contains("\"campaign\":\"pair\""));
        assert!(out.report.contains("\"fault_secure\":true"));
        assert!(!out.coverage.records.is_empty());
        assert!((out.coverage.coverage_fraction() - 1.0).abs() < 1e-12);
        scal_obs::json::validate_jsonl(&out.report).expect("valid report");
    }

    #[test]
    fn seq_jobs_match_a_direct_campaign() {
        let machine = scal_seq::kohavi::reynolds_circuit();
        let words: Vec<Vec<bool>> = [false, true, false, true, true, false]
            .iter()
            .map(|&b| vec![b])
            .collect();
        let kind = JobKind::Seq {
            machine: machine.clone(),
            words: words.clone(),
            backend: SeqBackend::Packed,
            eval_mode: EvalMode::Cone,
        };
        let out = run_job(&kind, 1, None, &NullObserver, None).unwrap();
        let direct = scal_seq::Campaign::new(&machine, &words).run().unwrap();
        assert!(out
            .report
            .contains(&format!("\"faults\":{}", direct.outcomes.len())));
        assert_eq!(out.coverage.records.len(), direct.outcomes.len());
    }

    #[test]
    fn cancelled_jobs_return_a_prefix() {
        let token = CancelToken::new();
        token.cancel();
        let out = run_job(&xor3_pair_kind(), 1, None, &NullObserver, Some(&token)).unwrap();
        assert!(out.cancelled);
        assert!(out.coverage.records.is_empty());
        assert!(out.coverage.cancelled);
    }

    #[test]
    fn sequential_circuits_error_instead_of_hanging() {
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let nq = c.not(ff);
        c.connect_dff(ff, nq);
        c.mark_output("q", ff);
        let kind = JobKind::Pair {
            circuit: c,
            faults: FaultSpec::All,
            drop_after_detection: false,
            eval_mode: EvalMode::Cone,
            scalar: false,
        };
        let err = run_job(&kind, 1, None, &NullObserver, None).unwrap_err();
        assert_eq!(err.code(), "engine");
    }

    #[test]
    fn collapse_knob_controls_report_fields() {
        let on = run_job(&xor3_pair_kind(), 1, Some(true), &NullObserver, None).unwrap();
        assert!(on.report.contains("\"collapse_ratio\""));
        assert!(on.report.contains("\"collapse_representatives\""));
        scal_obs::json::validate_jsonl(&on.report).expect("valid report");

        let off = run_job(&xor3_pair_kind(), 1, Some(false), &NullObserver, None).unwrap();
        assert!(!off.report.contains("collapse_ratio"));

        // The knob must not change the verdicts, only the work done.
        assert_eq!(
            on.coverage.without_annotations(),
            off.coverage.without_annotations()
        );
    }
}
