//! # scal-serve — the concurrent fault-campaign service
//!
//! Every campaign flavour in the workspace — combinational alternating-pair
//! sweeps (`scal-faults`), driven sequential machines (`scal-seq`), and CPU
//! datapath workloads (`scal-system`) — runs behind one TCP server speaking
//! line-delimited JSON:
//!
//! * a **request** is one JSON line carrying a netlist (the `scal-netlist`
//!   text interchange format), a fault spec, and campaign knobs mirroring
//!   the `Campaign` builders (backend, eval mode, fault dropping, threads);
//! * the **response** streams typed frames back as JSONL: `accepted`, one
//!   `event` frame per [`scal_obs::CampaignEvent`], and a terminal `result`
//!   frame with the deterministic report and
//!   [`scal_obs::CoverageMap`] (or `error`);
//! * campaigns from all connections share one **bounded worker pool** with
//!   per-request priorities, aging for fair progress, per-job deadlines,
//!   and cancel-by-id wired to the sticky [`scal_obs::CancelToken`] — so a
//!   cancelled request still returns its valid fault-ordered prefix.
//!
//! Determinism is inherited, not re-implemented: the server runs the exact
//! same [`job::run_job`] path a local caller would, and campaign event
//! replay is already deterministic (modulo `Progress` interleaving, worker
//! attribution, and wall times), so a streamed run is bit-identical to a
//! local one. The soak test (`tests/soak.rs`) drives hundreds of
//! concurrent mixed requests with random cancellations and asserts exactly
//! that.
//!
//! Everything is `std`-only (`std::net` + threads): no async runtime, no
//! serde, no registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod proto;
pub mod sched;
pub mod server;
pub mod telemetry;
pub mod wire;

pub use client::{Client, Frame, FrameStream};
pub use job::{run_job, JobOutput, ServeError};
pub use proto::{FaultSpec, JobKind, JobSpec, ProtoError, Request, StatusInfo, PROTOCOL_VERSION};
pub use sched::{SchedConfig, Scheduler};
pub use server::{serve, ServeConfig, ServerHandle};
pub use telemetry::{FlightEvent, FlightRecorder, PromSample, PromText, Telemetry};
pub use wire::WireObserver;
