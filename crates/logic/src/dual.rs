//! Self-dualization: the Yamamoto single-extra-input construction.

use crate::Tt;

/// Conventional name for the period-clock input added by [`self_dualize`].
///
/// The paper writes it `φ`: it is `0` in the first period (true inputs) and
/// `1` in the second period (complemented inputs).
pub const PERIOD_CLOCK_NAME: &str = "phi";

/// Makes any function self-dual by adding one input — the *period clock* `φ`
/// — as the new highest-numbered variable.
///
/// The construction (Yamamoto, Watanabe & Urano; cited as \[YAMA\] and used
/// throughout the paper) is
///
/// ```text
/// F*(X, φ) = φ̄·F(X)  ∨  φ·¬F(X̄)
/// ```
///
/// so that in the first period (`φ = 0`, true inputs) the network computes
/// `F(X)`, and in the second period (`φ = 1`, complemented inputs `X̄`) it
/// computes `¬F(X)` — exactly the alternating output pair of Definition 2.5.
///
/// The result ranges over `nvars + 1` variables, with `φ` at index `nvars`,
/// and is always self-dual.
///
/// ```
/// use scal_logic::{self_dualize, Tt};
/// let f = Tt::var(2, 0) & Tt::var(2, 1); // AND, not self-dual
/// let sd = self_dualize(&f);
/// assert!(sd.is_self_dual());
/// // φ = 0: original function.
/// assert!(sd.eval(0b011) && !sd.eval(0b001));
/// // φ = 1 with complemented inputs: complemented output.
/// assert!(!sd.eval(0b100)); // inputs (0,0) complemented from (1,1): ¬F = 0
/// ```
///
/// # Panics
///
/// Panics if `f` already ranges over [`crate::MAX_VARS`] variables.
#[must_use]
pub fn self_dualize(f: &Tt) -> Tt {
    let n = f.nvars();
    let phi = n;
    let mask = (f.len() - 1) as u32;
    Tt::from_fn(n + 1, |m| {
        let x = m & mask;
        if (m >> phi) & 1 == 0 {
            f.eval(x)
        } else {
            !f.eval(!x & mask)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dualized_is_self_dual_for_random_functions() {
        // Deterministic pseudo-random ON sets.
        let mut seed = 0x9E37_79B9u32;
        for n in 1..=6 {
            for _ in 0..20 {
                let mut minterms = Vec::new();
                for m in 0..(1u32 << n) {
                    seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    if seed & 1 == 1 {
                        minterms.push(m);
                    }
                }
                let f = Tt::from_minterms(n, &minterms);
                let sd = self_dualize(&f);
                assert!(sd.is_self_dual(), "n={n} f={f:?}");
            }
        }
    }

    #[test]
    fn dualized_restricts_to_original_when_phi_zero() {
        let f = Tt::from_minterms(3, &[1, 4, 6]);
        let sd = self_dualize(&f);
        for m in 0..8u32 {
            assert_eq!(sd.eval(m), f.eval(m));
        }
    }

    #[test]
    fn already_self_dual_functions_gain_vacuous_clock_sometimes() {
        // For a self-dual F, F*(X,φ) = φ̄F(X) ∨ φ¬F(X̄) = φ̄F(X) ∨ φF(X) = F(X):
        // the clock input is vacuous.
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        let maj = (&a & &b) | (&b & &c) | (&a & &c);
        let sd = self_dualize(&maj);
        assert!(sd.is_vacuous_in(3));
    }

    #[test]
    fn alternating_pair_property() {
        // For any X: F*(X, 0) = ¬F*(X̄, 1).
        let f = Tt::from_minterms(4, &[0, 2, 3, 9, 15]);
        let sd = self_dualize(&f);
        for m in 0..16u32 {
            let first = sd.eval(m);
            let second = sd.eval((!m & 0xF) | 0b1_0000);
            assert_ne!(first, second);
        }
    }
}
