//! Boolean expression AST and parser — an ergonomic front end for building
//! functions (`"a & b | ~c"`) in examples, tests, and experiments.

use crate::{LogicError, Tt};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// A Boolean expression over named variables.
///
/// Grammar (loosest binding first):
///
/// ```text
/// expr := xor ('|' xor)*
/// xor  := and ('^' and)*
/// and  := unary ('&' unary)*
/// unary := '~' unary | '!' unary | atom
/// atom := identifier | '0' | '1' | '(' expr ')'
/// ```
///
/// ```
/// use scal_logic::Expr;
/// let e: Expr = "a & b | ~c".parse().unwrap();
/// assert_eq!(e.vars(), vec!["a".to_string(), "b".into(), "c".into()]);
/// let tt = e.to_tt(&["a", "b", "c"]).unwrap();
/// assert!(tt.eval(0b011)); // a=1, b=1, c=0
/// assert!(tt.eval(0b000)); // ~c
/// assert!(!tt.eval(0b100)); // only c
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A named variable.
    Var(String),
    /// Constant 0 or 1.
    Const(bool),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction of two or more terms.
    And(Vec<Expr>),
    /// Disjunction of two or more terms.
    Or(Vec<Expr>),
    /// Exclusive-or of two or more terms.
    Xor(Vec<Expr>),
}

impl Expr {
    /// The variables appearing in the expression, sorted and deduplicated.
    #[must_use]
    pub fn vars(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Const(_) => {}
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
        }
    }

    /// Evaluates under an environment (`lookup(name) -> value`).
    pub fn eval_with<F: Fn(&str) -> bool + Copy>(&self, lookup: F) -> bool {
        match self {
            Expr::Var(v) => lookup(v),
            Expr::Const(b) => *b,
            Expr::Not(e) => !e.eval_with(lookup),
            Expr::And(es) => es.iter().all(|e| e.eval_with(lookup)),
            Expr::Or(es) => es.iter().any(|e| e.eval_with(lookup)),
            Expr::Xor(es) => es.iter().fold(false, |a, e| a ^ e.eval_with(lookup)),
        }
    }

    /// Builds the truth table under the given variable order (variable `i`
    /// of the table is `order[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`]-style errors if a variable of the
    /// expression is missing from `order`, or the order exceeds
    /// [`crate::MAX_VARS`].
    pub fn to_tt(&self, order: &[&str]) -> Result<Tt, LogicError> {
        if order.len() > crate::MAX_VARS {
            return Err(LogicError::TooManyVars {
                requested: order.len(),
            });
        }
        for v in self.vars() {
            if !order.contains(&v.as_str()) {
                return Err(LogicError::UnknownVariable { name: v });
            }
        }
        Ok(Tt::from_fn(order.len(), |m| {
            self.eval_with(|name| {
                let idx = order.iter().position(|&o| o == name).expect("checked");
                (m >> idx) & 1 == 1
            })
        }))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Not(e) => write!(f, "~{e}"),
            Expr::And(es) => join(f, es, " & "),
            Expr::Or(es) => join(f, es, " | "),
            Expr::Xor(es) => join(f, es, " ^ "),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, es: &[Expr], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, e) in es.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{e}")?;
    }
    write!(f, ")")
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn err(&self) -> LogicError {
        LogicError::ParseExpr {
            input: self.src.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expr(&mut self) -> Result<Expr, LogicError> {
        let mut terms = vec![self.xor()?];
        while self.peek() == Some('|') {
            self.bump();
            terms.push(self.xor()?);
        }
        Ok(flatten(terms, Expr::Or))
    }

    fn xor(&mut self) -> Result<Expr, LogicError> {
        let mut terms = vec![self.and()?];
        while self.peek() == Some('^') {
            self.bump();
            terms.push(self.and()?);
        }
        Ok(flatten(terms, Expr::Xor))
    }

    fn and(&mut self) -> Result<Expr, LogicError> {
        let mut terms = vec![self.unary()?];
        while self.peek() == Some('&') {
            self.bump();
            terms.push(self.unary()?);
        }
        Ok(flatten(terms, Expr::And))
    }

    fn unary(&mut self) -> Result<Expr, LogicError> {
        match self.peek() {
            Some('~') | Some('!') => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, LogicError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let e = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(self.err());
                }
                self.bump();
                Ok(e)
            }
            Some('0') => {
                self.bump();
                Ok(Expr::Const(false))
            }
            Some('1') => {
                self.bump();
                Ok(Expr::Const(true))
            }
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                self.skip_ws();
                let start = self.pos;
                while self.src[self.pos..]
                    .starts_with(|ch: char| ch.is_ascii_alphanumeric() || ch == '_')
                {
                    self.pos += 1;
                }
                Ok(Expr::Var(self.src[start..self.pos].to_owned()))
            }
            _ => Err(self.err()),
        }
    }
}

fn flatten(mut terms: Vec<Expr>, ctor: fn(Vec<Expr>) -> Expr) -> Expr {
    if terms.len() == 1 {
        terms.pop().expect("one element")
    } else {
        ctor(terms)
    }
}

impl FromStr for Expr {
    type Err = LogicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser::new(s);
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != s.len() {
            return Err(p.err());
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(s: &str, order: &[&str]) -> Tt {
        s.parse::<Expr>().unwrap().to_tt(order).unwrap()
    }

    #[test]
    fn precedence_and_over_xor_over_or() {
        // a | b & c == a | (b & c)
        let t = tt("a | b & c", &["a", "b", "c"]);
        assert!(t.eval(0b001));
        assert!(t.eval(0b110));
        assert!(!t.eval(0b010));
        // a ^ b & c == a ^ (b & c)
        let t = tt("a ^ b & c", &["a", "b", "c"]);
        assert!(t.eval(0b001));
        assert!(!t.eval(0b111));
        // a | b ^ c == a | (b ^ c)
        let t = tt("a | b ^ c", &["a", "b", "c"]);
        assert!(t.eval(0b010)); // b ^ c = 1
        assert!(t.eval(0b001)); // a = 1
        assert!(!t.eval(0b110)); // a=0, b=1, c=1: b ^ c = 0
    }

    #[test]
    fn negation_and_parens() {
        let t = tt("~(a & b)", &["a", "b"]);
        for m in 0..4u32 {
            assert_eq!(t.eval(m), m != 3);
        }
        let t = tt("!a & !b", &["a", "b"]);
        assert!(t.eval(0));
        assert!(!t.eval(1));
    }

    #[test]
    fn constants_and_long_names() {
        let t = tt("carry_in | 0", &["carry_in"]);
        assert!(t.eval(1));
        assert!(!t.eval(0));
        let t = tt("1 ^ x1", &["x1"]);
        assert!(t.eval(0));
        assert!(!t.eval(1));
    }

    #[test]
    fn majority_is_self_dual() {
        let t = tt("a & b | b & c | a & c", &["a", "b", "c"]);
        assert!(t.is_self_dual());
    }

    #[test]
    fn vars_sorted_dedup() {
        let e: Expr = "b & a | b ^ c0".parse().unwrap();
        assert_eq!(e.vars(), vec!["a", "b", "c0"]);
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in ["", "a &", "a b", "(a", "a @ b", "~"] {
            let r = bad.parse::<Expr>();
            assert!(r.is_err(), "{bad:?} should fail");
        }
        match "a $ b".parse::<Expr>() {
            Err(LogicError::ParseExpr { at, .. }) => assert_eq!(at, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_variable_rejected_in_to_tt() {
        let e: Expr = "a & q".parse().unwrap();
        assert!(matches!(
            e.to_tt(&["a", "b"]),
            Err(LogicError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn display_round_trips_semantics() {
        for s in ["a & b | ~c", "a ^ b ^ c", "~(a | b) & c"] {
            let e: Expr = s.parse().unwrap();
            let printed = e.to_string();
            let e2: Expr = printed.parse().unwrap();
            let order = ["a", "b", "c"];
            assert_eq!(e.to_tt(&order).unwrap(), e2.to_tt(&order).unwrap(), "{s}");
        }
    }
}
