//! Cubes (product terms) over a fixed variable set.

use crate::{LogicError, Tt};
use std::fmt;
use std::str::FromStr;

/// A product term over up to 32 variables.
///
/// Variable `i` participates iff bit `i` of `mask` is set; its required
/// polarity is bit `i` of `value`. Bits of `value` outside `mask` are zero.
///
/// ```
/// use scal_logic::Cube;
/// // x0 · x̄2 over 3 variables, written MSB-first as "0-1".
/// let c: Cube = "0-1".parse().unwrap();
/// assert!(c.contains(0b001));
/// assert!(c.contains(0b011));
/// assert!(!c.contains(0b101));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    nvars: u8,
    mask: u32,
    value: u32,
}

impl Cube {
    /// Creates a cube from a care `mask` and a `value` (bits outside the mask
    /// are cleared).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 32` or if `mask`/`value` have bits above `nvars`.
    #[must_use]
    pub fn new(nvars: usize, mask: u32, value: u32) -> Self {
        assert!(nvars <= 32, "cubes support at most 32 variables");
        let all = if nvars == 32 {
            u32::MAX
        } else {
            (1u32 << nvars) - 1
        };
        assert_eq!(mask & !all, 0, "mask has bits above nvars");
        assert_eq!(value & !all, 0, "value has bits above nvars");
        Cube {
            nvars: nvars as u8,
            mask,
            value: value & mask,
        }
    }

    /// The full-care cube of a single minterm.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 32` or `m` is out of range.
    #[must_use]
    pub fn minterm(nvars: usize, m: u32) -> Self {
        let all = if nvars == 32 {
            u32::MAX
        } else {
            (1u32 << nvars) - 1
        };
        Self::new(nvars, all, m & all)
    }

    /// Number of variables the cube ranges over.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    /// The care mask.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// The required values on cared-for variables.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Number of literals (cared-for variables).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// `true` iff the cube covers minterm `m`.
    #[must_use]
    pub fn contains(&self, m: u32) -> bool {
        m & self.mask == self.value
    }

    /// `true` iff `self` covers every minterm of `other`.
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        self.mask & other.mask == self.mask && other.value & self.mask == self.value
    }

    /// Attempts the Quine–McCluskey merge: two cubes with identical masks
    /// differing in exactly one cared-for bit combine into one cube with that
    /// bit dropped.
    #[must_use]
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.nvars != other.nvars || self.mask != other.mask {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() != 1 {
            return None;
        }
        Some(Cube {
            nvars: self.nvars,
            mask: self.mask & !diff,
            value: self.value & !diff,
        })
    }

    /// Expands the cube into the truth table it covers.
    #[must_use]
    pub fn to_tt(&self) -> Tt {
        Tt::from_fn(self.nvars(), |m| self.contains(m))
    }

    /// Iterator over covered minterms.
    pub fn minterms(&self) -> impl Iterator<Item = u32> + '_ {
        let n = 1u32 << self.nvars;
        (0..n).filter(move |&m| self.contains(m))
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    /// MSB-first `1`/`0`/`-` string, matching the paper's cube notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.nvars()).rev() {
            let bit = 1u32 << i;
            let ch = if self.mask & bit == 0 {
                '-'
            } else if self.value & bit != 0 {
                '1'
            } else {
                '0'
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

impl FromStr for Cube {
    type Err = LogicError;

    /// Parses an MSB-first `1`/`0`/`-` string.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`] on invalid characters or length > 32.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = s.chars().count();
        if n == 0 || n > 32 {
            return Err(LogicError::ParseCube {
                input: s.to_owned(),
            });
        }
        let mut mask = 0u32;
        let mut value = 0u32;
        for (i, ch) in s.chars().enumerate() {
            let bit = 1u32 << (n - 1 - i);
            match ch {
                '1' => {
                    mask |= bit;
                    value |= bit;
                }
                '0' => mask |= bit,
                '-' => {}
                _ => {
                    return Err(LogicError::ParseCube {
                        input: s.to_owned(),
                    })
                }
            }
        }
        Ok(Cube::new(n, mask, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1-0", "----", "1010", "0"] {
            let c: Cube = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("1x0".parse::<Cube>().is_err());
        assert!("".parse::<Cube>().is_err());
    }

    #[test]
    fn merge_adjacent_minterms() {
        let a = Cube::minterm(3, 0b101);
        let b = Cube::minterm(3, 0b111);
        let m = a.merge(&b).unwrap();
        assert_eq!(m.to_string(), "1-1");
        assert!(m.contains(0b101) && m.contains(0b111));
        assert!(!m.contains(0b001));
    }

    #[test]
    fn merge_rejects_distance_two() {
        let a = Cube::minterm(3, 0b000);
        let b = Cube::minterm(3, 0b011);
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn merge_rejects_different_masks() {
        let a: Cube = "1-1".parse().unwrap();
        let b: Cube = "11-".parse().unwrap();
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn covers_partial_order() {
        let big: Cube = "1--".parse().unwrap();
        let small: Cube = "1-0".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn to_tt_matches_contains() {
        let c: Cube = "-10".parse().unwrap();
        let t = c.to_tt();
        for m in 0..8u32 {
            assert_eq!(t.eval(m), c.contains(m));
        }
        assert_eq!(c.minterms().count(), 2);
    }
}
