//! Dense bit-packed truth tables.

use crate::LogicError;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum number of variables a [`Tt`] may range over.
///
/// `2^20` bits = 128 KiB per table; exhaustive analyses in the SCAL stack stay
/// far below this, but the cap keeps accidental blow-ups loud.
pub const MAX_VARS: usize = 20;

/// A truth table over `n ≤ MAX_VARS` Boolean variables, one bit per minterm.
///
/// Minterm `m` (a `u32` whose bit `i` is the value of variable `i`) is stored
/// at bit position `m`. All Boolean operators are bitwise over the packed
/// words, so combining tables is cheap.
///
/// ```
/// use scal_logic::Tt;
/// let a = Tt::var(3, 0);
/// let b = Tt::var(3, 1);
/// let c = Tt::var(3, 2);
/// let maj = (&a & &b) | (&b & &c) | (&a & &c);
/// assert!(maj.is_self_dual());
/// assert!(maj.eval(0b011));
/// assert!(!maj.eval(0b001));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tt {
    nvars: u8,
    words: Vec<u64>,
}

fn word_count(nvars: usize) -> usize {
    if nvars >= 6 {
        1 << (nvars - 6)
    } else {
        1
    }
}

/// Mask of the valid bits in the (single) word of a table with fewer than six
/// variables.
fn tail_mask(nvars: usize) -> u64 {
    if nvars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << nvars)) - 1
    }
}

impl Tt {
    /// Creates the constant-`false` table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`; use [`Tt::try_zero`] for a fallible
    /// variant.
    #[must_use]
    pub fn zero(nvars: usize) -> Self {
        Self::try_zero(nvars).expect("variable count within MAX_VARS")
    }

    /// Fallible variant of [`Tt::zero`].
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `nvars > MAX_VARS`.
    pub fn try_zero(nvars: usize) -> Result<Self, LogicError> {
        if nvars > MAX_VARS {
            return Err(LogicError::TooManyVars { requested: nvars });
        }
        Ok(Tt {
            nvars: nvars as u8,
            words: vec![0; word_count(nvars)],
        })
    }

    /// Creates the constant-`true` table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    #[must_use]
    pub fn one(nvars: usize) -> Self {
        let mut t = Self::zero(nvars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        *t.words.last_mut().expect("at least one word") &= tail_mask(nvars);
        if nvars >= 6 {
            for w in &mut t.words {
                *w = u64::MAX;
            }
        }
        t
    }

    /// Creates the table of the single variable `var` over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` or `var >= nvars`.
    #[must_use]
    pub fn var(nvars: usize, var: usize) -> Self {
        assert!(
            var < nvars,
            "variable index {var} out of range for {nvars} vars"
        );
        let mut t = Self::zero(nvars);
        if var < 6 {
            // Within a word the pattern is periodic.
            let period = 1u64 << var;
            let mut pattern = 0u64;
            let mut i = 0u64;
            while i < 64 {
                if (i >> var) & 1 == 1 {
                    pattern |= 1 << i;
                }
                i += 1;
            }
            let _ = period;
            for w in &mut t.words {
                *w = pattern;
            }
            let tm = tail_mask(nvars);
            let last = t.words.len() - 1;
            t.words[last] &= tm;
        } else {
            let stride = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / stride) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS`.
    pub fn from_fn<F: FnMut(u32) -> bool>(nvars: usize, mut f: F) -> Self {
        let mut t = Self::zero(nvars);
        for m in 0..(1u32 << nvars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a table from an explicit list of ON-set minterms.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` or any minterm is out of range.
    pub fn from_minterms(nvars: usize, minterms: &[u32]) -> Self {
        let mut t = Self::zero(nvars);
        for &m in minterms {
            assert!(
                (m as usize) < (1usize << nvars),
                "minterm {m} out of range for {nvars} vars"
            );
            t.set(m, true);
        }
        t
    }

    /// Number of variables this table ranges over.
    #[must_use]
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    /// Number of minterms (`2^nvars`).
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.nvars
    }

    /// `true` iff the table has zero variables — never; kept for clippy parity
    /// with `len`. A zero-variable table still has one minterm.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn eval(&self, m: u32) -> bool {
        assert!((m as usize) < self.len(), "minterm {m} out of range");
        (self.words[(m >> 6) as usize] >> (m & 63)) & 1 == 1
    }

    /// Sets the value of minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn set(&mut self, m: u32, value: bool) {
        assert!((m as usize) < self.len(), "minterm {m} out of range");
        let w = (m >> 6) as usize;
        let b = m & 63;
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// `true` iff the function is constant `false`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` iff the function is constant `true`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self == &Tt::one(self.nvars())
    }

    /// Number of ON-set minterms.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the ON-set minterms in ascending order.
    pub fn minterms(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.len() as u32;
        (0..n).filter(move |&m| self.eval(m))
    }

    /// The function obtained by complementing *all inputs*: `X ↦ F(X̄)`.
    ///
    /// Together with [`Not`], this yields the dual: `F^d(X) = ¬F(X̄)`.
    #[must_use]
    pub fn flip_inputs(&self) -> Self {
        let mask = (self.len() - 1) as u32;
        Tt::from_fn(self.nvars(), |m| self.eval(!m & mask))
    }

    /// The dual function `F^d(X) = ¬F(X̄)`.
    #[must_use]
    pub fn dual(&self) -> Self {
        !&self.flip_inputs()
    }

    /// `true` iff `F` is self-dual (`F(X̄) = ¬F(X)` for every `X`), the
    /// precondition for an alternating network (paper Definition 2.7 /
    /// Theorem 2.1).
    #[must_use]
    pub fn is_self_dual(&self) -> bool {
        self == &self.dual()
    }

    /// Positive cofactor `F|_{var=1}` (result still ranges over `nvars`
    /// variables; the cofactored variable becomes vacuous).
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.nvars(), "variable index out of range");
        let bit = 1u32 << var;
        Tt::from_fn(self.nvars(), |m| {
            let m2 = if value { m | bit } else { m & !bit };
            self.eval(m2)
        })
    }

    /// `true` iff the function does not depend on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn is_vacuous_in(&self, var: usize) -> bool {
        self.cofactor(var, false) == self.cofactor(var, true)
    }

    /// `true` iff the function is unate (monotone or antitone) in `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    #[must_use]
    pub fn is_unate_in(&self, var: usize) -> bool {
        let f0 = self.cofactor(var, false);
        let f1 = self.cofactor(var, true);
        // positive unate: f0 ≤ f1 ; negative unate: f1 ≤ f0
        (&f0 & !&f1).is_zero() || (&f1 & !&f0).is_zero()
    }

    /// Extends the table to `new_nvars` variables (the added high variables
    /// are vacuous).
    ///
    /// # Panics
    ///
    /// Panics if `new_nvars < nvars` or `new_nvars > MAX_VARS`.
    #[must_use]
    pub fn extend_vars(&self, new_nvars: usize) -> Self {
        assert!(new_nvars >= self.nvars(), "cannot shrink a truth table");
        let mask = (self.len() - 1) as u32;
        Tt::from_fn(new_nvars, |m| self.eval(m & mask))
    }

    /// Renders the table as a `0`/`1` string, minterm `2^n - 1` first (the
    /// conventional "truth-table" hex-like order).
    #[must_use]
    pub fn to_bit_string(&self) -> String {
        (0..self.len() as u32)
            .rev()
            .map(|m| if self.eval(m) { '1' } else { '0' })
            .collect()
    }

    /// Parses the [`Tt::to_bit_string`] format: a string of `2^n` bits,
    /// minterm `2^n − 1` first.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`] if the length is not a power of
    /// two within [`MAX_VARS`] or a character is not `0`/`1`.
    pub fn from_bit_string(s: &str) -> Result<Self, LogicError> {
        let len = s.chars().count();
        if len == 0 || !len.is_power_of_two() {
            return Err(LogicError::ParseCube {
                input: s.to_owned(),
            });
        }
        let nvars = len.trailing_zeros() as usize;
        if nvars > MAX_VARS {
            return Err(LogicError::TooManyVars { requested: nvars });
        }
        let mut t = Tt::zero(nvars);
        for (i, ch) in s.chars().enumerate() {
            let m = (len - 1 - i) as u32;
            match ch {
                '1' => t.set(m, true),
                '0' => {}
                _ => {
                    return Err(LogicError::ParseCube {
                        input: s.to_owned(),
                    })
                }
            }
        }
        Ok(t)
    }
}

impl std::str::FromStr for Tt {
    type Err = LogicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Tt::from_bit_string(s)
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt({} vars: {})", self.nvars, self.to_bit_string())
    }
}

impl fmt::Display for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

fn assert_same_arity(a: &Tt, b: &Tt) {
    assert_eq!(
        a.nvars, b.nvars,
        "truth tables range over different variable counts ({} vs {})",
        a.nvars, b.nvars
    );
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tt {
            type Output = Tt;
            fn $method(self, rhs: &Tt) -> Tt {
                assert_same_arity(self, rhs);
                Tt {
                    nvars: self.nvars,
                    words: self
                        .words
                        .iter()
                        .zip(&rhs.words)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }
        impl $trait for Tt {
            type Output = Tt;
            fn $method(self, rhs: Tt) -> Tt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Tt> for Tt {
            type Output = Tt;
            fn $method(self, rhs: &Tt) -> Tt {
                (&self).$method(rhs)
            }
        }
        impl $trait<Tt> for &Tt {
            type Output = Tt;
            fn $method(self, rhs: Tt) -> Tt {
                self.$method(&rhs)
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl Not for &Tt {
    type Output = Tt;
    fn not(self) -> Tt {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        let tm = tail_mask(self.nvars());
        let last = words.len() - 1;
        words[last] &= tm;
        Tt {
            nvars: self.nvars,
            words,
        }
    }
}

impl Not for Tt {
    type Output = Tt;
    fn not(self) -> Tt {
        !&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_tables_have_half_density() {
        for n in 1..=8 {
            for v in 0..n {
                let t = Tt::var(n, v);
                assert_eq!(t.count_ones(), 1 << (n - 1), "var {v} of {n}");
            }
        }
    }

    #[test]
    fn var_pattern_matches_bit() {
        for n in 1..=9 {
            for v in 0..n {
                let t = Tt::var(n, v);
                for m in 0..(1u32 << n) {
                    assert_eq!(t.eval(m), (m >> v) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn one_and_zero() {
        for n in 0..=8 {
            assert!(Tt::zero(n).is_zero());
            assert!(Tt::one(n).is_one());
            assert_eq!(Tt::one(n).count_ones(), 1 << n);
        }
    }

    #[test]
    fn too_many_vars_is_error() {
        assert!(matches!(
            Tt::try_zero(MAX_VARS + 1),
            Err(LogicError::TooManyVars { .. })
        ));
    }

    #[test]
    fn demorgan() {
        let a = Tt::var(4, 0);
        let b = Tt::var(4, 3);
        assert_eq!(!(&a & &b), !&a | !&b);
        assert_eq!(!(&a | &b), !&a & !&b);
    }

    #[test]
    fn xor_is_parity() {
        let t = Tt::var(3, 0) ^ Tt::var(3, 1) ^ Tt::var(3, 2);
        for m in 0..8u32 {
            assert_eq!(t.eval(m), m.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn majority_is_self_dual_and_xor3_is_self_dual() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        let maj = (&a & &b) | (&b & &c) | (&a & &c);
        assert!(maj.is_self_dual());
        let x3 = &a ^ &b ^ &c;
        assert!(x3.is_self_dual());
        let and = &a & &b;
        assert!(!and.is_self_dual());
    }

    #[test]
    fn dual_of_and_is_or() {
        let a = Tt::var(2, 0);
        let b = Tt::var(2, 1);
        assert_eq!((&a & &b).dual(), &a | &b);
        assert_eq!((&a | &b).dual(), &a & &b);
    }

    #[test]
    fn dual_is_involution() {
        let f = Tt::from_minterms(4, &[0, 3, 5, 9, 14]);
        assert_eq!(f.dual().dual(), f);
    }

    #[test]
    fn cofactors_shannon_expand() {
        let f = Tt::from_minterms(4, &[1, 2, 7, 8, 13]);
        for v in 0..4 {
            let x = Tt::var(4, v);
            let expanded = (&x & f.cofactor(v, true)) | (!&x & f.cofactor(v, false));
            assert_eq!(expanded, f);
        }
    }

    #[test]
    fn vacuous_detection() {
        let f = Tt::var(4, 1) & Tt::var(4, 2);
        assert!(f.is_vacuous_in(0));
        assert!(f.is_vacuous_in(3));
        assert!(!f.is_vacuous_in(1));
    }

    #[test]
    fn unateness() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        let f = (&a & &b) | (!&a & &c);
        // f is unate in b (positive) and c (positive) but binate in a.
        assert!(f.is_unate_in(1));
        assert!(f.is_unate_in(2));
        assert!(!f.is_unate_in(0));
        let x = &a ^ &b;
        assert!(!x.is_unate_in(0));
    }

    #[test]
    fn flip_inputs_round_trips() {
        let f = Tt::from_minterms(5, &[0, 7, 11, 21, 30]);
        assert_eq!(f.flip_inputs().flip_inputs(), f);
    }

    #[test]
    fn extend_vars_keeps_function() {
        let f = Tt::var(2, 0) & Tt::var(2, 1);
        let g = f.extend_vars(4);
        assert_eq!(g.nvars(), 4);
        for m in 0..16u32 {
            assert_eq!(g.eval(m), f.eval(m & 3));
        }
    }

    #[test]
    fn minterms_iterator_matches_eval() {
        let f = Tt::from_minterms(6, &[0, 1, 33, 62]);
        let got: Vec<u32> = f.minterms().collect();
        assert_eq!(got, vec![0, 1, 33, 62]);
    }

    #[test]
    fn works_above_word_boundary() {
        // 7 variables -> 2 words; 8 -> 4 words.
        let f = Tt::var(8, 7);
        assert_eq!(f.count_ones(), 128);
        assert!(!f.eval(0));
        assert!(f.eval(0b1000_0000));
        let g = !&f;
        assert_eq!(g.count_ones(), 128);
        assert!(g.eval(0));
    }

    #[test]
    fn bit_string_order() {
        // f = x0 over 2 vars: minterms 1 and 3 -> msb-first "1010".
        let f = Tt::var(2, 0);
        assert_eq!(f.to_bit_string(), "1010");
    }

    #[test]
    fn bit_string_round_trip() {
        for f in [
            Tt::var(3, 1),
            Tt::from_minterms(4, &[0, 7, 9, 15]),
            Tt::zero(1),
            Tt::one(5),
        ] {
            let s = f.to_bit_string();
            let back: Tt = s.parse().unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn bit_string_parse_errors() {
        assert!(Tt::from_bit_string("").is_err());
        assert!(Tt::from_bit_string("101").is_err()); // not a power of two
        assert!(Tt::from_bit_string("10x0").is_err());
    }
}
