//! Boolean-function substrate for self-checking alternating logic (SCAL).
//!
//! This crate provides the *function-level* machinery the rest of the SCAL
//! stack is built on:
//!
//! * [`Tt`] — dense, bit-packed truth tables over up to [`MAX_VARS`] variables,
//!   with the full Boolean algebra, cofactors, duals and the self-duality test
//!   that Definition 2.7 of the paper rests on;
//! * [`self_dualize`] — the Yamamoto construction that turns *any* function
//!   into a self-dual one by adding a single period-clock input (the basis of
//!   Theorem 2.1's applicability to arbitrary logic);
//! * [`Cube`] and [`qm`] — cubes (product terms) and Quine–McCluskey two-level
//!   minimization, used by `scal-seq` to synthesize the paper's sequential
//!   examples into gate-level networks.
//!
//! # Example
//!
//! ```
//! use scal_logic::{Tt, self_dualize};
//!
//! // A 2-input AND is not self-dual …
//! let and = Tt::var(2, 0) & Tt::var(2, 1);
//! assert!(!and.is_self_dual());
//!
//! // … but adding a period clock makes it self-dual (Yamamoto).
//! let sd = self_dualize(&and);
//! assert!(sd.is_self_dual());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod dual;
mod expr;
pub mod qm;
mod tt;

pub use cube::Cube;
pub use dual::{self_dualize, PERIOD_CLOCK_NAME};
pub use expr::Expr;
pub use tt::{Tt, MAX_VARS};

/// Errors produced by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// Requested variable count exceeds [`MAX_VARS`].
    TooManyVars {
        /// The requested variable count.
        requested: usize,
    },
    /// A cube or minterm string could not be parsed.
    ParseCube {
        /// The offending input.
        input: String,
    },
    /// An expression string could not be parsed.
    ParseExpr {
        /// The offending input.
        input: String,
        /// Byte offset of the failure.
        at: usize,
    },
    /// An expression references a variable missing from the given order.
    UnknownVariable {
        /// The variable name.
        name: String,
    },
}

impl core::fmt::Display for LogicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LogicError::TooManyVars { requested } => {
                write!(f, "requested {requested} variables, maximum is {MAX_VARS}")
            }
            LogicError::ParseCube { input } => write!(f, "invalid cube string {input:?}"),
            LogicError::ParseExpr { input, at } => {
                write!(f, "invalid expression {input:?} at byte {at}")
            }
            LogicError::UnknownVariable { name } => {
                write!(f, "expression variable {name:?} not in the given order")
            }
        }
    }
}

impl std::error::Error for LogicError {}
