//! Quine–McCluskey two-level minimization.
//!
//! Used by `scal-seq` to synthesize the paper's sequential-machine examples
//! (Kohavi's 0101 detector, the translator machines) into sum-of-products
//! netlists whose gate counts feed Table 4.1.

use crate::{Cube, Tt};
use std::collections::BTreeSet;

/// Computes all prime implicants of `on ∪ dc` that intersect `on`.
///
/// `dc` (don't-cares) may be `None`. Tables must agree on variable count.
///
/// # Panics
///
/// Panics if `on` and `dc` range over different variable counts, or the
/// function has more than 32 variables (cube limit).
#[must_use]
pub fn prime_implicants(on: &Tt, dc: Option<&Tt>) -> Vec<Cube> {
    let n = on.nvars();
    assert!(n <= 32, "QM supports at most 32 variables");
    if let Some(d) = dc {
        assert_eq!(d.nvars(), n, "ON and DC tables must agree on arity");
    }
    let care_on = on.clone();
    let full = match dc {
        Some(d) => on | d,
        None => on.clone(),
    };

    let mut current: BTreeSet<Cube> = full.minterms().map(|m| Cube::minterm(n, m)).collect();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flags = vec![false; cubes.len()];
        let mut next: BTreeSet<Cube> = BTreeSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge(&cubes[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, c) in cubes.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(*c);
            }
        }
        current = next;
    }

    primes
        .into_iter()
        .filter(|p| p.minterms().any(|m| care_on.eval(m)))
        .collect()
}

/// Minimizes `on` (with optional don't-cares `dc`) into a near-minimal prime
/// cover: essential primes first, then a greedy set cover over the rest.
///
/// The result covers every ON minterm and never covers an OFF minterm.
///
/// # Panics
///
/// See [`prime_implicants`].
#[must_use]
pub fn minimize(on: &Tt, dc: Option<&Tt>) -> Vec<Cube> {
    if on.is_zero() {
        return Vec::new();
    }
    let primes = prime_implicants(on, dc);
    let targets: Vec<u32> = on.minterms().collect();
    if targets.is_empty() {
        return Vec::new();
    }

    // coverage[t] = primes covering target minterm t.
    let coverage: Vec<Vec<usize>> = targets
        .iter()
        .map(|&m| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    let mut covered = vec![false; targets.len()];

    // Essential primes.
    for (t, covers) in coverage.iter().enumerate() {
        if covers.len() == 1 {
            let p = covers[0];
            if chosen.insert(p) {
                for (t2, &m2) in targets.iter().enumerate() {
                    if primes[p].contains(m2) {
                        covered[t2] = true;
                    }
                }
            }
            let _ = t;
        }
    }

    // Greedy cover for what remains; ties broken toward fewer literals.
    while covered.iter().any(|&c| !c) {
        let mut best: Option<(usize, usize)> = None; // (prime index, gain)
        for (i, p) in primes.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = targets
                .iter()
                .enumerate()
                .filter(|(t, &m)| !covered[*t] && p.contains(m))
                .count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bg)) => {
                    gain > bg || (gain == bg && p.literal_count() < primes[bi].literal_count())
                }
            };
            if better {
                best = Some((i, gain));
            }
        }
        let (pick, _) = best.expect("remaining minterm must be coverable by some prime");
        chosen.insert(pick);
        for (t, &m) in targets.iter().enumerate() {
            if primes[pick].contains(m) {
                covered[t] = true;
            }
        }
    }

    chosen.into_iter().map(|i| primes[i]).collect()
}

/// Total literal count of a cover (a standard two-level cost measure).
#[must_use]
pub fn cover_literals(cover: &[Cube]) -> usize {
    cover.iter().map(Cube::literal_count).sum()
}

/// Rebuilds the function a cover realizes.
///
/// # Panics
///
/// Panics if the cover is empty-of-arity (cannot infer `nvars`); pass the
/// arity explicitly.
#[must_use]
pub fn cover_to_tt(nvars: usize, cover: &[Cube]) -> Tt {
    let mut t = Tt::zero(nvars);
    for c in cover {
        t = t | c.to_tt();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_exact(on: &Tt) {
        let cover = minimize(on, None);
        assert_eq!(&cover_to_tt(on.nvars(), &cover), on);
    }

    #[test]
    fn minimizes_classic_example() {
        // f(w,x,y,z) with ON = {4,8,10,11,12,15}, DC = {9,14} — the canonical
        // Wikipedia QM example; minimal cover has 3 cubes.
        let on = Tt::from_minterms(4, &[4, 8, 10, 11, 12, 15]);
        let dc = Tt::from_minterms(4, &[9, 14]);
        let cover = minimize(&on, Some(&dc));
        // Cover must include all ON, exclude all OFF.
        let realized = cover_to_tt(4, &cover);
        for m in 0..16u32 {
            if on.eval(m) {
                assert!(realized.eval(m), "minterm {m} uncovered");
            }
            if !on.eval(m) && !dc.eval(m) {
                assert!(!realized.eval(m), "off minterm {m} covered");
            }
        }
        assert!(cover.len() <= 3, "expected ≤3 cubes, got {cover:?}");
    }

    #[test]
    fn xor_needs_all_minterms() {
        let on = Tt::var(2, 0) ^ Tt::var(2, 1);
        let cover = minimize(&on, None);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover_literals(&cover), 4);
        check_exact(&on);
    }

    #[test]
    fn majority_minimizes_to_three_cubes() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        let maj = (&a & &b) | (&b & &c) | (&a & &c);
        let cover = minimize(&maj, None);
        assert_eq!(cover.len(), 3);
        assert_eq!(cover_literals(&cover), 6);
        check_exact(&maj);
    }

    #[test]
    fn constant_functions() {
        assert!(minimize(&Tt::zero(3), None).is_empty());
        let cover = minimize(&Tt::one(3), None);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].literal_count(), 0);
    }

    #[test]
    fn prime_implicants_of_and() {
        let f = Tt::var(2, 0) & Tt::var(2, 1);
        let primes = prime_implicants(&f, None);
        assert_eq!(primes.len(), 1);
        assert_eq!(primes[0].to_string(), "11");
    }

    #[test]
    fn exactness_on_pseudo_random_functions() {
        let mut seed = 12345u32;
        for n in 1..=5 {
            for _ in 0..30 {
                let f = Tt::from_fn(n, |_| {
                    seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (seed >> 16) & 1 == 1
                });
                check_exact(&f);
            }
        }
    }

    #[test]
    fn cover_never_exceeds_minterm_count() {
        let f = Tt::from_minterms(4, &[1, 2, 4, 8, 15]);
        let cover = minimize(&f, None);
        assert!(cover.len() <= 5);
    }
}
