//! System composition: a SCAL network, its checker, the latching stage and
//! the hardcore clock disable, assembled into **one gate-level netlist** —
//! the integration Chapter 5 builds up to (Figs. 5.1b, 5.5, 5.7).

use crate::hardcore::clock_disable;
use crate::two_rail::two_rail_tree;
use scal_netlist::{Circuit, NodeId, Sim};

/// A SCAL network wrapped with its on-line checking machinery.
///
/// Circuit interface:
///
/// * inputs: the network's own inputs, then `phase` (the period clock the
///   checker timing runs on — also drive the network's own `φ` here if it
///   has one), then `clk` (the system clock to be gated);
/// * outputs: the network's outputs (pass-through), then the dual-rail pair
///   `f`, `g` (a valid 1-out-of-2 code in every second period while
///   healthy), then `clk_out` — which drops to 0 one pair after the first
///   non-code word and stays there (Fig. 5.7's latch feeding Fig. 5.5's
///   clock gate).
#[derive(Debug, Clone)]
pub struct CheckedNetwork {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// Number of pass-through functional outputs.
    pub z_count: usize,
    /// Output indices of the checker pair.
    pub pair: (usize, usize),
    /// Output index of the gated clock.
    pub clk_out: usize,
    /// Mapping from the wrapped network's node ids (by index) into the
    /// composed circuit — translate fault sites through this.
    pub net_map: Vec<NodeId>,
}

impl CheckedNetwork {
    /// Translates a fault site of the standalone network into the composed
    /// circuit.
    ///
    /// # Panics
    ///
    /// Panics if the site indexes a node outside the wrapped network.
    #[must_use]
    pub fn map_site(&self, site: scal_netlist::Site) -> scal_netlist::Site {
        match site {
            scal_netlist::Site::Stem(n) => scal_netlist::Site::Stem(self.net_map[n.index()]),
            scal_netlist::Site::Branch { node, pin } => scal_netlist::Site::Branch {
                node: self.net_map[node.index()],
                pin,
            },
        }
    }
}

/// Wraps a combinational alternating network with the Reynolds dual-rail
/// checker, the Fig. 5.7 latching stage, and the Fig. 5.5 clock-disable
/// module.
///
/// # Panics
///
/// Panics if the network is sequential or has no outputs.
#[must_use]
pub fn attach_dual_rail(network: &Circuit) -> CheckedNetwork {
    assert!(!network.is_sequential(), "wrap the combinational core");
    assert!(!network.outputs().is_empty(), "nothing to check");

    let mut c = Circuit::new();
    let xs: Vec<NodeId> = network
        .inputs()
        .iter()
        .map(|&i| c.input(network.name(i).unwrap_or("x").to_owned()))
        .collect();
    let phase = c.input("phase");
    let clk = c.input("clk");
    let net_map = c.import_mapped(network, &xs);
    let outs: Vec<NodeId> = network
        .outputs()
        .iter()
        .map(|o| net_map[o.node.index()])
        .collect();

    // Reynolds checker: latch each output during the first period (enable =
    // ¬phase), compare against the live second-period value.
    let nphase = c.not(phase);
    let mut pairs = Vec::with_capacity(outs.len());
    for &z in &outs {
        let ff = c.dff(false);
        let take = c.and(&[nphase, z]);
        let hold = c.and(&[phase, ff]);
        let d = c.or(&[take, hold]);
        c.connect_dff(ff, d);
        pairs.push((ff, z));
    }
    let (f, g) = two_rail_tree(&mut c, &pairs);

    // Fig. 5.7 latching stage, sampled at second-period boundaries while the
    // latched word is still a code word.
    let ff_f = c.dff(true);
    let ff_g = c.dff(false);
    let ok = c.xor(&[ff_f, ff_g]);
    let en = c.and(&[phase, ok]);
    let nen = c.not(en);
    let t1 = c.and(&[en, f]);
    let t2 = c.and(&[nen, ff_f]);
    let df = c.or(&[t1, t2]);
    let t3 = c.and(&[en, g]);
    let t4 = c.and(&[nen, ff_g]);
    let dg = c.or(&[t3, t4]);
    c.connect_dff(ff_f, df);
    c.connect_dff(ff_g, dg);

    // Fig. 5.5 clock disable on the latched pair.
    let (_, clk_out) = clock_disable(&mut c, clk, ff_f, ff_g);

    let z_count = outs.len();
    for (k, &z) in outs.iter().enumerate() {
        let name = network.outputs()[k].name.clone();
        c.mark_output(name, z);
    }
    c.mark_output("f", f);
    c.mark_output("g", g);
    c.mark_output("clk_out", clk_out);

    CheckedNetwork {
        circuit: c,
        z_count,
        pair: (z_count, z_count + 1),
        clk_out: z_count + 2,
        net_map,
    }
}

/// Drives a [`CheckedNetwork`] over an alternating pair (two simulator
/// steps) and returns `(period-1 outputs, period-2 outputs)`.
pub fn drive_pair(sim: &mut Sim<'_>, word: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let mut p1 = word.to_vec();
    p1.push(false); // phase
    p1.push(true); // clk
    let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
    p2.push(true);
    p2.push(true);
    let o1 = sim.step(&p1);
    let o2 = sim.step(&p2);
    (o1, o2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_faults::enumerate_faults;

    /// MAJ(a,b,c) and XOR3 as a two-output SCAL network.
    fn network() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let maj = c.nand(&[nab, nac, nbc]);
        let x = c.xor(&[a, b, d]);
        c.mark_output("maj", maj);
        c.mark_output("xor", x);
        c
    }

    fn words() -> Vec<Vec<bool>> {
        (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn healthy_system_keeps_the_clock_running() {
        let checked = attach_dual_rail(&network());
        let mut sim = Sim::new(&checked.circuit);
        for _round in 0..3 {
            for w in words() {
                let (o1, o2) = drive_pair(&mut sim, &w);
                // Functional outputs alternate.
                for k in 0..checked.z_count {
                    assert_ne!(o1[k], o2[k]);
                }
                // Checker pair valid in period 2.
                let (f, g) = checked.pair;
                assert_ne!(o2[f], o2[g]);
                // Clock never gated.
                assert!(o1[checked.clk_out] && o2[checked.clk_out]);
            }
        }
    }

    #[test]
    fn every_network_fault_eventually_stops_the_clock() {
        let net = network();
        let checked = attach_dual_rail(&net);
        // Map network faults onto the composed circuit by re-enumerating
        // only the imported region: the first nodes after inputs+phase+clk
        // mirror the network exactly, so inject by matching node functions —
        // simplest robust approach: enumerate faults of the *composed*
        // circuit restricted to the imported cone of the functional outputs.
        let faults: Vec<_> = enumerate_faults(&checked.circuit)
            .into_iter()
            .filter(|fault| {
                let site_node = match fault.site {
                    scal_netlist::Site::Stem(n) => n,
                    scal_netlist::Site::Branch { node, .. } => node,
                };
                // Restrict to nodes that feed a functional output: the
                // network region (skip checker-internal faults here; the
                // checker's own testability is covered in two_rail tests).
                let structure = scal_netlist::Structure::new(&checked.circuit);
                (0..checked.z_count).any(|k| {
                    let out = checked.circuit.outputs()[k].node;
                    structure.cone(out)[site_node.index()]
                })
            })
            .collect();
        assert!(!faults.is_empty());
        for fault in faults {
            let mut sim = Sim::new(&checked.circuit);
            sim.attach(fault.to_override());
            let mut gated = false;
            let mut observable = false;
            // Two sweeps of all words: detection latches one pair after the
            // noncode word, so check clk_out across the run.
            for _round in 0..2 {
                for w in words() {
                    let (o1, o2) = drive_pair(&mut sim, &w);
                    for k in 0..checked.z_count {
                        if o1[k] == o2[k] {
                            observable = true;
                        }
                    }
                    if !o1[checked.clk_out] || !o2[checked.clk_out] {
                        gated = true;
                    }
                }
            }
            // Input-stem faults of `phase`/`clk` and truly redundant lines
            // aside (none here), every observable fault must gate the clock.
            if observable {
                assert!(gated, "fault {fault} flagged but clock kept running");
            }
        }
    }

    #[test]
    fn clock_stays_off_after_detection() {
        let net = network();
        let checked = attach_dual_rail(&net);
        // Stick the MAJ output.
        let maj_node = checked.circuit.outputs()[0].node;
        let mut sim = Sim::new(&checked.circuit);
        sim.attach(scal_netlist::Override::stem(maj_node, true));
        let mut seen_gated = false;
        for w in words() {
            let (_, o2) = drive_pair(&mut sim, &w);
            if !o2[checked.clk_out] {
                seen_gated = true;
            }
        }
        assert!(seen_gated);
        // Repair the fault: the latch still holds the clock off (Fig. 5.7:
        // "presumably this status is displayed and the fault recognized by
        // the operator").
        sim.clear_overrides();
        let (o1, o2) = drive_pair(&mut sim, &words()[0]);
        assert!(!o1[checked.clk_out] && !o2[checked.clk_out]);
    }

    #[test]
    fn composition_cost_accounts() {
        let net = network();
        let checked = attach_dual_rail(&net);
        let cost = checked.circuit.cost();
        // n outputs -> n checker FFs + 2 latch FFs.
        assert_eq!(cost.flip_flops, net.outputs().len() + 2);
        assert!(cost.gates > net.cost().gates);
    }
}
