//! Mixed checker design — Algorithm 5.1 and the §5.4 cost comparison.

use crate::two_rail::two_rail_tree;
use crate::xor_tree::{odd_checker_needs_clock, xor_checker_odd};
use scal_analysis::analyze;
use scal_netlist::{Circuit, NodeId, Structure};

/// The output partition produced by Algorithm 5.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Outputs checkable by the cheap XOR (independent-line) checker.
    pub a: Vec<usize>,
    /// Groups of interdependent outputs requiring the dual-rail checker.
    pub b: Vec<Vec<usize>>,
}

impl Partition {
    /// Total outputs partitioned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.a.len() + self.b.iter().map(Vec::len).sum::<usize>()
    }

    /// `true` iff no outputs were partitioned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs Algorithm 5.1 given the raw facts:
///
/// * `n` outputs;
/// * `share_groups` — sets of outputs that share logic (outputs not listed
///   share logic with nobody);
/// * `unsafe_outputs` — outputs that can alternate incorrectly for some
///   fault on shared logic (these must stay under the dual-rail checker).
///
/// Steps (paper numbering): 1. independent outputs go to `A`; 2. the rest
/// split into share-closed groups `B_i`; 3. from each `B_i`, one output that
/// never alternates incorrectly may move to `A`; 4. `A` gets the XOR
/// checker, each remaining `B` member the dual-rail checker.
#[must_use]
pub fn partition(n: usize, share_groups: &[Vec<usize>], unsafe_outputs: &[usize]) -> Partition {
    // Union-find over outputs.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for group in share_groups {
        for w in group.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for x in 0..n {
        let r = find(&mut parent, x);
        groups.entry(r).or_default().push(x);
    }

    let mut a = Vec::new();
    let mut b = Vec::new();
    for (_, members) in groups {
        if members.len() == 1 {
            // Step 1: fully independent output.
            a.push(members[0]);
            continue;
        }
        // Step 3: promote one safe member, if any.
        let mut rest = members.clone();
        if let Some(pos) = rest.iter().position(|m| !unsafe_outputs.contains(m)) {
            a.push(rest.remove(pos));
        }
        b.push(rest);
    }
    a.sort_unstable();
    Partition { a, b }
}

/// Derives the partition for a concrete network: share groups come from
/// outputs whose cones overlap on a non-input node, and an output is unsafe
/// if Algorithm 3.1 finds some line whose fault can alternate incorrectly on
/// it (condition E fails for that output).
///
/// # Panics
///
/// Panics if the circuit fails the prerequisites of
/// [`scal_analysis::analyze`].
#[must_use]
pub fn derive_partition(circuit: &Circuit) -> Partition {
    let n = circuit.outputs().len();
    let structure = Structure::new(circuit);
    let cones: Vec<Vec<bool>> = circuit
        .outputs()
        .iter()
        .map(|o| structure.cone(o.node))
        .collect();
    let is_input = |idx: usize| {
        matches!(
            circuit.view(scal_netlist_node_by_index(circuit, idx)),
            scal_netlist::NodeView::Input
        )
    };
    let mut share_groups = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let shares = (0..circuit.len()).any(|k| cones[i][k] && cones[j][k] && !is_input(k));
            if shares {
                share_groups.push(vec![i, j]);
            }
        }
    }
    let report = analyze(circuit).expect("analyzable network");
    let mut unsafe_outputs: Vec<usize> = report
        .lines
        .iter()
        .flat_map(|l| l.outputs.iter())
        .filter(|oc| !oc.e)
        .map(|oc| oc.output)
        .collect();
    unsafe_outputs.sort_unstable();
    unsafe_outputs.dedup();
    partition(n, &share_groups, &unsafe_outputs)
}

fn scal_netlist_node_by_index(circuit: &Circuit, idx: usize) -> NodeId {
    circuit
        .node_ids()
        .nth(idx)
        .expect("index within circuit length")
}

/// Hardware cost summary of a checker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckerCost {
    /// Two-input gates (the paper counts the two-rail tree this way).
    pub two_input_gates: usize,
    /// Odd-input XOR gates.
    pub xor_gates: usize,
    /// Flip-flops.
    pub flip_flops: usize,
}

/// Cost of checking all `n` outputs with the dual-rail checker only
/// (Fig. 5.3a): `n` flip-flops plus `(n−1)·6` two-input gates.
#[must_use]
pub fn dual_rail_only_cost(n: usize) -> CheckerCost {
    CheckerCost {
        two_input_gates: 6 * n.saturating_sub(1),
        xor_gates: 0,
        flip_flops: n,
    }
}

/// Cost of the mixed configuration of Fig. 5.3b for a [`Partition`], with
/// the combined output formed by folding the XOR checker's (latched) result
/// into the dual-rail tree as one more pair (Fig. 5.4b).
#[must_use]
pub fn mixed_cost(p: &Partition) -> CheckerCost {
    let nb: usize = p.b.iter().map(Vec::len).sum();
    let na = p.a.len();
    // XOR tree over the A outputs: each ternary gate retires two lines, and
    // an even line count spends one extra (clock-padded) gate — i.e.
    // ⌈(na−1)/2⌉ gates, with a lone line still buffered through one gate.
    let xor_gates = if na <= 1 { na } else { (na - 1).div_ceil(2) };
    // Dual-rail pairs: nb network outputs + 1 latched XOR result (when A is
    // non-empty), each pair needing one flip-flop for its first-period value.
    let pairs = nb + usize::from(na > 0);
    CheckerCost {
        two_input_gates: 6 * pairs.saturating_sub(1),
        xor_gates,
        flip_flops: pairs,
    }
}

/// Builds the mixed checker of Fig. 5.3b/5.4b as a sequential circuit over
/// `n = partition.len()` checked lines (inputs in output-index order) plus a
/// trailing `phi` input. Outputs `f`, `g`: a valid 1-out-of-2 code in the
/// second period of each pair iff every checked line alternated.
///
/// # Panics
///
/// Panics if the partition is empty or the B side is empty while A has a
/// single line (degenerate; use the XOR checker directly).
#[must_use]
pub fn build_mixed_checker(p: &Partition) -> Circuit {
    assert!(!p.is_empty(), "partition must cover at least one output");
    let n = p.len();
    let mut c = Circuit::new();
    let lines: Vec<NodeId> = (0..n).map(|i| c.input(format!("y{i}"))).collect();
    let phi = c.input("phi");

    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    if !p.a.is_empty() {
        let a_lines: Vec<NodeId> = p.a.iter().map(|&i| lines[i]).collect();
        let q = if a_lines.len() == 1 && !odd_checker_needs_clock(1) {
            a_lines[0]
        } else {
            xor_checker_odd(&mut c, &a_lines, phi)
        };
        let ff = c.dff(false);
        c.connect_dff(ff, q);
        pairs.push((ff, q));
    }
    for group in &p.b {
        for &i in group {
            let ff = c.dff(false);
            c.connect_dff(ff, lines[i]);
            pairs.push((ff, lines[i]));
        }
    }
    let (f, g) = two_rail_tree(&mut c, &pairs);
    c.mark_output("f", f);
    c.mark_output("g", g);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Sim;

    #[test]
    fn paper_nine_output_example() {
        // §5.4: outputs 1..9 (0-indexed 0..8). 1,2,3 independent; share
        // groups (4,5,6), (6,7), (8,9); outputs 5 and 8 unsafe.
        // Expected: A = {1,2,3,4,9}, B1 = {5,6,7}, B2 = {8} (paper numbers).
        let share = vec![vec![3, 4, 5], vec![5, 6], vec![7, 8]];
        let unsafe_outputs = [4, 7]; // 0-indexed 5 and 8
        let p = partition(9, &share, &unsafe_outputs);
        assert_eq!(p.a, vec![0, 1, 2, 3, 8]);
        assert_eq!(p.b, vec![vec![4, 5, 6], vec![7]]);
    }

    #[test]
    fn paper_cost_comparison_halves() {
        // Dual-rail only: 9 FFs + 48 two-input gates. Mixed: about half.
        let dr = dual_rail_only_cost(9);
        assert_eq!(dr.two_input_gates, 48);
        assert_eq!(dr.flip_flops, 9);
        let share = vec![vec![3, 4, 5], vec![5, 6], vec![7, 8]];
        let p = partition(9, &share, &[4, 7]);
        let mixed = mixed_cost(&p);
        assert_eq!(mixed.flip_flops, 5); // 4 B-outputs + 1 latched XOR result
        assert_eq!(mixed.two_input_gates, 24); // paper option (2): 24
        assert!(mixed.two_input_gates * 2 <= dr.two_input_gates + 6);
        assert_eq!(mixed.xor_gates, 2); // paper option (2): two XOR gates
    }

    #[test]
    fn fully_independent_outputs_all_go_to_a() {
        let p = partition(4, &[], &[]);
        assert_eq!(p.a, vec![0, 1, 2, 3]);
        assert!(p.b.is_empty());
    }

    #[test]
    fn unsafe_member_never_promoted() {
        let p = partition(3, &[vec![0, 1, 2]], &[0, 1, 2]);
        assert!(p.a.is_empty());
        assert_eq!(p.b, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn derive_partition_on_fig3_7_like_network() {
        // A 3-output network with sharing: after the fix, no output is
        // unsafe, so each share group promotes one member.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nad = c.nand(&[a, d]);
        let nbd = c.nand(&[b, d]);
        let f3 = c.nand(&[nab, nad, nbd]);
        let na = c.not(a);
        let m1 = c.nand(&[na, b]);
        let m2 = c.nand(&[na, d]);
        let f1 = c.nand(&[m1, m2, nbd]); // shares nbd with f3
        let x = c.gate(scal_netlist::GateKind::Xor, &[a, b, d]); // independent
        c.mark_output("F1", f1);
        c.mark_output("F2", x);
        c.mark_output("F3", f3);
        let p = derive_partition(&c);
        // F2 independent => A; F1/F3 share nbd, both safe => one promoted.
        assert_eq!(p.b.len(), 1);
        assert_eq!(p.b[0].len(), 1);
        assert_eq!(p.a.len(), 2);
    }

    #[test]
    fn mixed_checker_passes_good_words_and_flags_bad_lines() {
        let share = vec![vec![3, 4, 5], vec![5, 6], vec![7, 8]];
        let p = partition(9, &share, &[4, 7]);
        let c = build_mixed_checker(&p);
        let n = 9;
        let word = [true, false, true, true, false, false, true, false, true];

        // Good alternating word: code output in period 2.
        let mut sim = Sim::new(&c);
        let mut p1: Vec<bool> = word.to_vec();
        p1.push(false); // phi = 0
        sim.step(&p1);
        let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
        p2.push(true);
        let out = sim.step(&p2);
        assert_ne!(out[0], out[1], "good word must check valid");

        // Any single held line must be flagged.
        for k in 0..n {
            let mut sim = Sim::new(&c);
            sim.step(&p1);
            let mut bad = p2.clone();
            bad[k] = p1[k];
            let out = sim.step(&bad);
            assert_eq!(out[0], out[1], "held line {k} must be flagged");
        }
    }
}
