//! Anderson's two-rail TSCC and Reynolds' dual-rail SCAL checker (Fig. 5.1).

use scal_netlist::{Circuit, NodeId};

/// One two-rail checker module: combines two 1-out-of-2 pairs into one.
///
/// For input pairs `(a1,b1)` and `(a2,b2)` the outputs are
///
/// ```text
/// f = a1·a2 ∨ b1·b2        g = a1·b2 ∨ a2·b1
/// ```
///
/// If both inputs are valid codes (`ai ≠ bi`) the output is a valid code;
/// any single non-code input yields a non-code output. Cost: six two-input
/// gates, the figure behind the paper's `(n−1)·6` checker cost.
pub fn two_rail_module(
    c: &mut Circuit,
    (a1, b1): (NodeId, NodeId),
    (a2, b2): (NodeId, NodeId),
) -> (NodeId, NodeId) {
    let t1 = c.and(&[a1, a2]);
    let t2 = c.and(&[b1, b2]);
    let f = c.or(&[t1, t2]);
    let t3 = c.and(&[a1, b2]);
    let t4 = c.and(&[a2, b1]);
    let g = c.or(&[t3, t4]);
    (f, g)
}

/// A balanced tree of [`two_rail_module`]s reducing `n` pairs to one.
///
/// Uses `n − 1` modules (6(n−1) two-input gates).
///
/// # Panics
///
/// Panics if `pairs` is empty.
pub fn two_rail_tree(c: &mut Circuit, pairs: &[(NodeId, NodeId)]) -> (NodeId, NodeId) {
    assert!(!pairs.is_empty(), "checker needs at least one pair");
    let mut layer: Vec<(NodeId, NodeId)> = pairs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.chunks(2);
        for chunk in &mut it {
            if chunk.len() == 2 {
                next.push(two_rail_module(c, chunk[0], chunk[1]));
            } else {
                next.push(chunk[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Reynolds' dual-rail SCAL checker (Fig. 5.1a): a sequential circuit that
/// latches each checked line in the first period and compares it with the
/// second-period value through a two-rail tree.
///
/// The returned circuit has `n` inputs (the checked lines) and two outputs
/// `f`, `g`. In the *second* period of each alternating pair, `(f, g)` is a
/// valid 1-out-of-2 code iff every line alternated.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn reynolds_checker(n: usize) -> Circuit {
    assert!(n > 0, "checker needs at least one line");
    let mut c = Circuit::new();
    let lines: Vec<NodeId> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
    let pairs: Vec<(NodeId, NodeId)> = lines
        .iter()
        .map(|&x| {
            let ff = c.dff(false);
            c.connect_dff(ff, x);
            (ff, x)
        })
        .collect();
    let (f, g) = two_rail_tree(&mut c, &pairs);
    c.mark_output("f", f);
    c.mark_output("g", g);
    c
}

/// The Fig. 5.1c conversion of a dual-rail checker output to a single
/// *alternating* signal `q`:
///
/// ```text
/// q = (f ⊕ g) ⊕ φ
/// ```
///
/// When the checker output is a valid code (`f ≠ g`), `q = φ̄` — the pair
/// `(1, 0)` — and any non-code checker word breaks the alternation, exactly
/// the paper's "(0,1) or constant if there is a fault".
pub fn alternating_output(c: &mut Circuit, f: NodeId, g: NodeId, phi: NodeId) -> NodeId {
    let valid = c.xor(&[f, g]);
    c.xor(&[valid, phi])
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::Sim;

    fn module_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a1 = c.input("a1");
        let b1 = c.input("b1");
        let a2 = c.input("a2");
        let b2 = c.input("b2");
        let (f, g) = two_rail_module(&mut c, (a1, b1), (a2, b2));
        c.mark_output("f", f);
        c.mark_output("g", g);
        c
    }

    #[test]
    fn module_maps_codes_to_codes() {
        let c = module_circuit();
        for a1 in [false, true] {
            for a2 in [false, true] {
                let out = c.eval(&[a1, !a1, a2, !a2]);
                assert_ne!(out[0], out[1], "code inputs must give code output");
            }
        }
    }

    #[test]
    fn module_maps_any_noncode_to_noncode() {
        // Code-disjointness: one invalid input pair => invalid output.
        let c = module_circuit();
        for m in 0..16u32 {
            let a1 = m & 1 == 1;
            let b1 = m & 2 != 0;
            let a2 = m & 4 != 0;
            let b2 = m & 8 != 0;
            if a1 != b1 && a2 != b2 {
                continue;
            }
            let out = c.eval(&[a1, b1, a2, b2]);
            assert_eq!(
                out[0], out[1],
                "noncode input {m:04b} must give noncode output"
            );
        }
    }

    #[test]
    fn module_is_self_testing_on_code_inputs() {
        // Every collapsed single fault is detected by some code input (the
        // TSC property restricted to the code space).
        let c = module_circuit();
        let code_inputs: Vec<Vec<bool>> = (0..4u32)
            .map(|m| {
                let a1 = m & 1 == 1;
                let a2 = m & 2 != 0;
                vec![a1, !a1, a2, !a2]
            })
            .collect();
        for fault in scal_faults::enumerate_faults(&c) {
            let ov = [fault.to_override()];
            let detected = code_inputs.iter().any(|ins| {
                let out = c.eval_with(ins, &ov);
                out[0] == out[1] // noncode output flags the fault
            });
            assert!(detected, "fault {fault} undetected by code inputs");
        }
    }

    #[test]
    fn tree_cost_is_six_times_n_minus_one() {
        for n in [2usize, 3, 5, 8] {
            let mut c = Circuit::new();
            let pairs: Vec<_> = (0..n)
                .map(|i| {
                    let a = c.input(format!("a{i}"));
                    let b = c.input(format!("b{i}"));
                    (a, b)
                })
                .collect();
            let (f, g) = two_rail_tree(&mut c, &pairs);
            c.mark_output("f", f);
            c.mark_output("g", g);
            assert_eq!(c.cost().gates, 6 * (n - 1), "n={n}");
        }
    }

    #[test]
    fn tree_detects_single_noncode_pair() {
        let n = 5;
        let mut c = Circuit::new();
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let a = c.input(format!("a{i}"));
                let b = c.input(format!("b{i}"));
                (a, b)
            })
            .collect();
        let (f, g) = two_rail_tree(&mut c, &pairs);
        c.mark_output("f", f);
        c.mark_output("g", g);
        // All-code baseline.
        for word in 0..(1u32 << n) {
            let mut ins = Vec::new();
            for i in 0..n {
                let a = (word >> i) & 1 == 1;
                ins.push(a);
                ins.push(!a);
            }
            let out = c.eval(&ins);
            assert_ne!(out[0], out[1]);
            // Break pair k both ways.
            for k in 0..n {
                for broken in [false, true] {
                    let mut bad = ins.clone();
                    bad[2 * k] = broken;
                    bad[2 * k + 1] = broken;
                    let out = c.eval(&bad);
                    assert_eq!(out[0], out[1], "word={word} k={k}");
                }
            }
        }
    }

    #[test]
    fn reynolds_checker_flags_nonalternating_lines() {
        let n = 4;
        let c = reynolds_checker(n);
        assert_eq!(c.cost().flip_flops, n);
        assert_eq!(c.cost().gates, 6 * (n - 1));
        let mut sim = Sim::new(&c);
        // Drive an alternating word pair: outputs valid in second period.
        let word = [true, false, false, true];
        sim.step(&word); // period 1: latch
        let flipped: Vec<bool> = word.iter().map(|&b| !b).collect();
        let out = sim.step(&flipped); // period 2: compare
        assert_ne!(out[0], out[1], "alternating word must check as code");

        // A line that fails to alternate must be flagged.
        let mut sim = Sim::new(&c);
        sim.step(&word);
        let mut stuck = flipped;
        stuck[2] = word[2]; // line 2 repeats its period-1 value
        let out = sim.step(&stuck);
        assert_eq!(out[0], out[1], "non-alternating line must yield noncode");
    }

    #[test]
    fn alternating_output_conversion() {
        let mut c = Circuit::new();
        let f = c.input("f");
        let g = c.input("g");
        let phi = c.input("phi");
        let q = alternating_output(&mut c, f, g, phi);
        c.mark_output("q", q);
        // Valid code in both periods: q = (1, 0).
        assert_eq!(c.eval(&[true, false, false]), vec![true]);
        assert_eq!(c.eval(&[false, true, true]), vec![false]);
        // Noncode word: q breaks the (1,0) pattern.
        assert_eq!(c.eval(&[true, true, false]), vec![false]);
        assert_eq!(c.eval(&[false, false, true]), vec![true]);
    }
}
