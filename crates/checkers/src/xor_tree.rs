//! Independent-line XOR checkers (Theorem 5.1, Fig. 5.2).

use scal_netlist::{Circuit, GateKind, NodeId};

/// Builds the odd-input XOR checker of Theorem 5.1 inside `c`: a tree of
/// XOR gates, each with an odd number of inputs (padded with the period
/// clock `phi` where needed), over the given `lines`.
///
/// If every checked line alternates, every line *inside* the checker
/// alternates too (an XOR of an odd number of alternating signals
/// alternates), so by Theorem 3.6 the checker is self-checking with respect
/// to all of its own lines; the single output alternates iff all checked
/// lines do.
///
/// # Panics
///
/// Panics if `lines` is empty.
pub fn xor_checker_odd(c: &mut Circuit, lines: &[NodeId], phi: NodeId) -> NodeId {
    assert!(!lines.is_empty(), "checker needs at least one line");
    let mut layer: Vec<NodeId> = lines.to_vec();
    if layer.len() == 1 {
        // Single line: a 1-input XOR is a buffer with odd arity.
        return c.gate(GateKind::Xor, &[layer[0]]);
    }
    // Reduce in groups of three, carrying stragglers, and fold the period
    // clock in exactly once — only when the final pair needs an odd third
    // input (which happens iff the line count is even, keeping the output
    // self-dual and the clock non-redundant).
    while layer.len() > 2 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(3) + 2);
        let mut i = 0;
        while i + 3 <= layer.len() {
            next.push(c.xor(&[layer[i], layer[i + 1], layer[i + 2]]));
            i += 3;
        }
        next.extend_from_slice(&layer[i..]);
        layer = next;
    }
    if layer.len() == 2 {
        c.xor(&[layer[0], layer[1], phi])
    } else {
        layer[0]
    }
}

/// `true` iff an odd-input XOR checker over `n` lines needs the period
/// clock as a padding input (exactly when `n` is even).
#[must_use]
pub fn odd_checker_needs_clock(n: usize) -> bool {
    n % 2 == 0
}

/// The even-input XOR variant of Fig. 5.2c: a tree of two-input XOR gates
/// over the lines, with the (complemented) period clock folded in so the
/// output forms the code pair `(0, 1)` when all lines alternate.
///
/// Internal lines of this tree do *not* all alternate (a 2-input XOR of two
/// alternating signals is constant over the pair), so some of the checker's
/// own faults escape alternation testing — the reason the paper calls this
/// form "less cost-effective" than [`xor_checker_odd`]. The `fig5_1`
/// experiment quantifies the difference.
///
/// # Panics
///
/// Panics if `lines` is empty.
pub fn xor_checker_even(c: &mut Circuit, lines: &[NodeId], phi: NodeId) -> NodeId {
    assert!(!lines.is_empty(), "checker needs at least one line");
    let mut layer: Vec<NodeId> = lines.to_vec();
    layer.push(phi);
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut i = 0;
        while i < layer.len() {
            if layer.len() - i >= 2 {
                next.push(c.xor(&[layer[i], layer[i + 1]]));
                i += 2;
            } else {
                next.push(layer[i]);
                i += 1;
            }
        }
        layer = next;
    }
    layer[0]
}

/// A standalone odd-input XOR checker circuit over `n` lines. When `n` is
/// even a trailing `phi` (period clock) input is added as the odd-arity pad
/// (see [`odd_checker_needs_clock`]). Output `q` alternates iff every line
/// alternates.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn xor_checker_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let lines: Vec<NodeId> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
    let phi = if odd_checker_needs_clock(n) {
        c.input("phi")
    } else {
        lines[0] // never consulted for odd n
    };
    let q = xor_checker_odd(&mut c, &lines, phi);
    c.mark_output("q", q);
    c
}

/// Counts the checker's own faults that alternation monitoring can never
/// detect, assuming all checked lines alternate: a fault is *untestable
/// in-operation* if, for every alternating input pair, the checker output
/// still alternates with the correct phase.
///
/// Used to compare the odd- and even-input variants (Fig. 5.2a vs 5.2c).
#[must_use]
pub fn untestable_checker_faults(circuit: &Circuit) -> usize {
    let results = scal_faults::Campaign::new(circuit)
        .run()
        .expect("checker circuits are alternating")
        .results;
    results.iter().filter(|r| !r.tested()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(c: &Circuit, word: u32, n: usize, phi: bool, breaks: &[usize]) -> (bool, bool) {
        // Returns the checker output over the two periods, with `breaks`
        // listing line indices that hold (fail to alternate).
        let mut p1 = Vec::with_capacity(n + 1);
        for i in 0..n {
            p1.push((word >> i) & 1 == 1);
        }
        if c.inputs().len() == n + 1 {
            p1.push(phi);
        }
        let mut p2: Vec<bool> = p1.iter().map(|&b| !b).collect();
        for &k in breaks {
            p2[k] = p1[k];
        }
        let o1 = c.eval(&p1)[0];
        let o2 = c.eval(&p2)[0];
        (o1, o2)
    }

    #[test]
    fn odd_checker_alternates_when_all_lines_do() {
        for n in 1..=9 {
            let c = xor_checker_circuit(n);
            for word in 0..(1u32 << n) {
                let (o1, o2) = drive(&c, word, n, false, &[]);
                assert_ne!(o1, o2, "n={n} word={word:b}");
            }
        }
    }

    #[test]
    fn odd_checker_flags_single_nonalternating_line() {
        for n in [3usize, 4, 7] {
            let c = xor_checker_circuit(n);
            for word in 0..(1u32 << n) {
                for k in 0..n {
                    let (o1, o2) = drive(&c, word, n, false, &[k]);
                    assert_eq!(o1, o2, "n={n} word={word:b} line {k}");
                }
            }
        }
    }

    #[test]
    fn odd_checker_misses_even_numbers_of_stuck_lines() {
        // Table 5.1's "2 stuck, 0 incorrect → not detected" row.
        let n = 4;
        let c = xor_checker_circuit(n);
        let (o1, o2) = drive(&c, 0b1010, n, false, &[0, 1]);
        assert_ne!(o1, o2, "even number of holds must slip through");
    }

    #[test]
    fn all_gates_have_odd_arity() {
        for n in 1..=10 {
            let c = xor_checker_circuit(n);
            for id in c.node_ids() {
                if let scal_netlist::NodeView::Gate(GateKind::Xor) = c.view(id) {
                    assert_eq!(c.fanins(id).len() % 2, 1, "n={n} gate {id}");
                }
            }
        }
    }

    #[test]
    fn odd_checker_internal_lines_all_alternate() {
        // Theorem 5.1's proof obligation, checked structurally: every gate
        // output's function of the inputs is self-dual.
        let c = xor_checker_circuit(5);
        let tts = scal_analysis::all_node_tts(&c);
        for id in c.node_ids() {
            if matches!(c.view(id), scal_netlist::NodeView::Gate(_)) {
                assert!(tts[id.index()].is_self_dual(), "gate {id}");
            }
        }
    }

    #[test]
    fn odd_checker_is_fully_self_testing_even_variant_is_not() {
        let n = 4;
        let odd = xor_checker_circuit(n);
        assert_eq!(untestable_checker_faults(&odd), 0);

        let mut even = Circuit::new();
        let lines: Vec<NodeId> = (0..n).map(|i| even.input(format!("x{i}"))).collect();
        let phi = even.input("phi");
        let q = xor_checker_even(&mut even, &lines, phi);
        even.mark_output("q", q);
        // The even-input tree contains constant-over-pair internal lines,
        // but XOR propagates any stuck bit to the output, so in-operation
        // testability is judged by alternation: stuck internal lines flip
        // the output's phase rather than its alternation, which *is* wrong
        // alternation — i.e. fault-security violations instead of detection.
        let results = scal_faults::Campaign::new(&even)
            .run()
            .expect("checker circuits are alternating")
            .results;
        let violations = results.iter().filter(|r| !r.fault_secure()).count();
        assert!(
            violations > 0,
            "even-input tree must have phase-violating faults"
        );
    }

    #[test]
    fn gate_count_scales_linearly() {
        let c9 = xor_checker_circuit(9);
        assert_eq!(c9.count_kind(GateKind::Xor), 4); // 3+3+3 -> 3 gates, then 1
    }
}
