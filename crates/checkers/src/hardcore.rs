//! Hardcore elements: the clock-disable module (Table 5.2, Fig. 5.5), its
//! untestable fault (the witness behind Theorem 5.2), replication, and the
//! latching checker-output loop (Fig. 5.7).

use scal_faults::{enumerate_faults, Fault};
use scal_netlist::{Circuit, NodeId};

/// Builds the clock-disable module of Fig. 5.5a inside `c`:
///
/// ```text
/// clock_out = clock_in AND (f XOR g)
/// ```
///
/// implementing Table 5.2 — the clock passes only while the checker output
/// `(f, g)` is a valid 1-out-of-2 code. Returns `(xor_node, clock_out)`.
pub fn clock_disable(c: &mut Circuit, clock_in: NodeId, f: NodeId, g: NodeId) -> (NodeId, NodeId) {
    let x = c.xor(&[f, g]);
    let out = c.and(&[clock_in, x]);
    (x, out)
}

/// The standalone clock-disable module circuit: inputs `clk`, `f`, `g`;
/// output `clk_out`. The XOR node is named `"xor"`.
#[must_use]
pub fn clock_disable_module() -> Circuit {
    let mut c = Circuit::new();
    let clk = c.input("clk");
    let f = c.input("f");
    let g = c.input("g");
    let (x, out) = clock_disable(&mut c, clk, f, g);
    c.set_name(x, "xor");
    c.mark_output("clk_out", out);
    c
}

/// The replicated hardcore of Fig. 5.5b: `n` clock-disable modules in
/// series, all observing the same `(f, g)`. Inputs `clk`, `f`, `g`; output
/// `clk_out`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn replicated_clock_disable(n: usize) -> Circuit {
    assert!(n > 0, "need at least one module");
    let mut c = Circuit::new();
    let clk = c.input("clk");
    let f = c.input("f");
    let g = c.input("g");
    let mut wire = clk;
    for _ in 0..n {
        let (_, out) = clock_disable(&mut c, wire, f, g);
        wire = out;
    }
    c.mark_output("clk_out", wire);
    c
}

/// Probability that *all* `n` replicated hardcore modules have failed, given
/// per-module failure probability `p` — the paper's `p^n`, which "can be
/// made arbitrarily small for p < 1".
///
/// # Panics
///
/// Panics unless `0.0 <= p <= 1.0`.
#[must_use]
pub fn hardcore_failure_probability(p: f64, n: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    p.powi(i32::try_from(n).expect("replication count fits i32"))
}

/// Faults of a clock-disable network that are **undetectable during code
/// operation**: for every input with a valid `(f, g)` code (and either clock
/// value) the faulty module behaves exactly like the fault-free one, so the
/// fault lies dormant until it matters. Theorem 5.2's argument is that any
/// realization from standard gates/flip-flops has at least one such fault;
/// [`clock_disable_module`]'s witness is the XOR output stuck-at-1.
#[must_use]
pub fn dormant_faults(module: &Circuit) -> Vec<Fault> {
    // Code-operation inputs: clk ∈ {0,1}, (f,g) ∈ {(0,1),(1,0)}.
    let code_inputs: Vec<Vec<bool>> = (0..4u32)
        .map(|m| {
            let clk = m & 1 == 1;
            let f = m & 2 != 0;
            vec![clk, f, !f]
        })
        .collect();
    enumerate_faults(module)
        .into_iter()
        .filter(|fault| {
            let ov = [fault.to_override()];
            code_inputs
                .iter()
                .all(|ins| module.eval(ins) == module.eval_with(ins, &ov))
        })
        .collect()
}

/// Checks that a dormant fault is also *dangerous*: with the fault present,
/// some non-code `(f, g)` word fails to disable the clock. Returns the
/// non-code inputs that slip through.
#[must_use]
pub fn dangerous_inputs(module: &Circuit, fault: Fault) -> Vec<Vec<bool>> {
    let ov = [fault.to_override()];
    let mut bad = Vec::new();
    for m in 0..8u32 {
        let clk = m & 1 == 1;
        let f = m & 2 != 0;
        let g = m & 4 != 0;
        if f != g {
            continue; // code word
        }
        let ins = vec![clk, f, g];
        let out = module.eval_with(&ins, &ov);
        // Correct behaviour on a non-code word: clock blocked (false).
        if out[0] {
            bad.push(ins);
        }
    }
    bad
}

/// The latching checker-output stage of Fig. 5.7: a sequential circuit with
/// inputs `f`, `g` and outputs `F`, `G` that passes the checker word through
/// while it remains a valid code and **latches the first non-code word
/// forever** ("once a faulty output is signalled by the checker it will then
/// remain at that noncode word").
#[must_use]
pub fn latching_checker_output() -> Circuit {
    let mut c = Circuit::new();
    let f = c.input("f");
    let g = c.input("g");
    let ff = c.dff(true);
    let gg = c.dff(false);
    // ok = latched word is still a code word.
    let ok = c.xor(&[ff, gg]);
    let nok = c.not(ok);
    // next_f = ok ? f : ff   (and likewise for g)
    let t1 = c.and(&[ok, f]);
    let t2 = c.and(&[nok, ff]);
    let df = c.or(&[t1, t2]);
    let t3 = c.and(&[ok, g]);
    let t4 = c.and(&[nok, gg]);
    let dg = c.or(&[t3, t4]);
    c.connect_dff(ff, df);
    c.connect_dff(gg, dg);
    c.mark_output("F", ff);
    c.mark_output("G", gg);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_netlist::{Sim, Site};

    #[test]
    fn module_implements_table_5_2() {
        let m = clock_disable_module();
        for i in 0..8u32 {
            let clk = i & 4 != 0;
            let f = i & 2 != 0;
            let g = i & 1 != 0;
            let expect = clk && (f != g);
            assert_eq!(m.eval(&[clk, f, g]), vec![expect], "clk={clk} f={f} g={g}");
        }
    }

    #[test]
    fn xor_stuck_at_1_is_the_dormant_witness() {
        let m = clock_disable_module();
        let xor_node = m.node_ids().find(|&id| m.name(id) == Some("xor")).unwrap();
        let dormant = dormant_faults(&m);
        let witness = Fault::new(Site::Stem(xor_node), true);
        assert!(
            dormant.contains(&witness),
            "XOR s-a-1 must be dormant; got {dormant:?}"
        );
        // And it is dangerous: noncode words no longer stop the clock.
        let bad = dangerous_inputs(&m, witness);
        assert!(!bad.is_empty());
        assert!(bad.iter().all(|ins| ins[0]), "danger needs clk high");
    }

    #[test]
    fn all_dormant_faults_of_this_module_are_clock_masking() {
        // Faults dormant under code operation must involve the XOR output
        // or its AND pin — the module boundary faults the paper says *are*
        // detected when the module is viewed as a single gate.
        let m = clock_disable_module();
        for fault in dormant_faults(&m) {
            let dangerous = !dangerous_inputs(&m, fault).is_empty();
            // Dormant-but-harmless faults would be redundancy; this module
            // has none.
            assert!(dangerous, "{fault} dormant but not dangerous?");
        }
    }

    #[test]
    fn replication_multiplies_protection() {
        let m3 = replicated_clock_disable(3);
        // Functionally identical to one module.
        for i in 0..8u32 {
            let clk = i & 4 != 0;
            let f = i & 2 != 0;
            let g = i & 1 != 0;
            assert_eq!(m3.eval(&[clk, f, g]), vec![clk && (f != g)]);
        }
        // A dormant fault in one stage is covered by the others: with any
        // single XOR s-a-1, noncode words still stop the clock.
        for fault in dormant_faults(&m3) {
            assert!(
                dangerous_inputs(&m3, fault).is_empty(),
                "{fault} defeats triple hardcore alone"
            );
        }
    }

    #[test]
    fn failure_probability_model() {
        assert!((hardcore_failure_probability(0.1, 3) - 1e-3).abs() < 1e-12);
        assert_eq!(hardcore_failure_probability(1.0, 5), 1.0);
        assert_eq!(hardcore_failure_probability(0.0, 2), 0.0);
    }

    #[test]
    fn latching_output_passes_good_words() {
        let c = latching_checker_output();
        let mut sim = Sim::new(&c);
        // Initial latched word is (1,0): valid.
        for &(f, g) in &[(true, false), (false, true), (true, false)] {
            let out = sim.step(&[f, g]);
            assert_ne!(out[0], out[1]);
        }
        // The word tracks the input with one period delay.
        let out = sim.step(&[false, true]);
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn latching_output_holds_noncode_forever() {
        let c = latching_checker_output();
        let mut sim = Sim::new(&c);
        sim.step(&[true, false]);
        sim.step(&[true, true]); // fault signalled
                                 // From the next period on, the output stays at the latched noncode
                                 // word regardless of inputs.
        let out = sim.step(&[true, false]);
        assert_eq!(out[0], out[1], "noncode must latch");
        for _ in 0..5 {
            let out = sim.step(&[false, true]);
            assert_eq!(out[0], out[1]);
        }
    }
}
