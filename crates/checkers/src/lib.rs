//! Checker designs for self-checking alternating logic (Chapter 5).
//!
//! A SCAL network's outputs are code words *in time* — alternating pairs —
//! and a checker must flag any non-alternating output while itself being
//! self-checking. This crate provides the paper's checker families:
//!
//! * [`two_rail`] — the Anderson two-rail totally self-checking checker
//!   (TSCC) and Reynolds' dual-rail SCAL checker built from it (Fig. 5.1):
//!   each network line contributes the pair (first-period value latched in a
//!   flip-flop, second-period value), a valid 1-out-of-2 code exactly when
//!   the line alternates;
//! * [`xor_tree`] — the independent-line checker of Theorem 5.1: an XOR tree
//!   whose gates all have an odd number of inputs (padded with the period
//!   clock), whose single output alternates iff every checked line does;
//! * [`mixed`] — Algorithm 5.1: partition outputs into independently
//!   checkable (cheap XOR tree) and interdependent (dual-rail) groups,
//!   reproducing the §5.4 cost reduction;
//! * [`hardcore`] — the clock-disable module of Table 5.2/Fig. 5.5, its
//!   provably untestable fault (the witness behind Theorem 5.2), the
//!   replication reliability model, and the latching checker-output loop of
//!   Fig. 5.7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod hardcore;
pub mod mixed;
pub mod two_rail;
pub mod xor_tree;

pub use compose::{attach_dual_rail, CheckedNetwork};
