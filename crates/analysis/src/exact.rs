//! Exact (truth-table) machinery: line functions, Corollary 3.1 / 3.2.
//!
//! Exhaustive sweeps run on the compiled `scal-engine` schedule: a circuit
//! is compiled once into an [`ExactSweep`] and every stuck-table after that
//! is one linear pass over the op array, all outputs at once.

use scal_engine::{CompiledCircuit, Evaluator};
use scal_logic::Tt;
use scal_netlist::{Circuit, NodeId, Override, Site};

/// A compiled exhaustive-sweep context: compile once, sweep many.
///
/// Wraps a [`scal_engine::CompiledCircuit`] plus a reusable evaluator so
/// Algorithm 3.1's per-line stuck tables cost one schedule pass each instead
/// of a fresh graph walk per output per batch.
#[derive(Debug)]
pub struct ExactSweep {
    compiled: CompiledCircuit,
    ev: Evaluator,
}

impl ExactSweep {
    /// Compiles `circuit` for exhaustive sweeping.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential, invalid, or wider than
    /// [`scal_logic::MAX_VARS`].
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        assert!(!circuit.is_sequential(), "combinational circuits only");
        assert!(
            circuit.inputs().len() <= scal_logic::MAX_VARS,
            "too many inputs"
        );
        let compiled = CompiledCircuit::compile(circuit);
        let ev = Evaluator::new(&compiled);
        ExactSweep { compiled, ev }
    }

    /// Truth tables of every node, fault-free (see [`all_node_tts`]).
    #[must_use]
    pub fn all_node_tts(&mut self) -> Vec<Tt> {
        scal_engine::all_node_tables(&self.compiled, &mut self.ev)
    }

    /// Truth tables of every primary output under `overrides`, one sweep.
    #[must_use]
    pub fn output_tts(&mut self, overrides: &[Override]) -> Vec<Tt> {
        scal_engine::output_tables(&self.compiled, &mut self.ev, overrides)
    }

    /// [`LineFunctions`] for one line (see the free [`line_functions`]).
    #[must_use]
    pub fn line_functions(
        &mut self,
        circuit: &Circuit,
        node_tts: &[Tt],
        site: Site,
    ) -> LineFunctions {
        let normal: Vec<Tt> = circuit
            .outputs()
            .iter()
            .map(|o| node_tts[o.node.index()].clone())
            .collect();
        let g = node_tts[source_of(circuit, site).index()].clone();
        let mut stuck_tables =
            |value: bool| -> Vec<Tt> { self.output_tts(&[Override { site, value }]) };
        LineFunctions {
            site,
            g,
            normal,
            stuck0: stuck_tables(false),
            stuck1: stuck_tables(true),
        }
    }
}

/// The truth tables Algorithm 3.1 manipulates for one line `g` of a network:
/// the paper's `G(X)`, `F(X, G(X))`, `F(X, 0)` and `F(X, 1)` for every
/// output `F`.
#[derive(Debug, Clone)]
pub struct LineFunctions {
    /// The line under analysis.
    pub site: Site,
    /// `G(X)` — the fault-free value of the line (for a branch, the value of
    /// its source stem).
    pub g: Tt,
    /// Per output: the fault-free output `F(X, G(X))`.
    pub normal: Vec<Tt>,
    /// Per output: the output with the line stuck-at-0, `F(X, 0)`.
    pub stuck0: Vec<Tt>,
    /// Per output: the output with the line stuck-at-1, `F(X, 1)`.
    pub stuck1: Vec<Tt>,
}

impl LineFunctions {
    /// Theorem 3.1's incorrect-alternation set for output `j` under
    /// stuck-at-`s`: the minterms `X` at which the faulty output is wrong in
    /// *both* periods of the pair `(X, X̄)` while still alternating.
    #[must_use]
    pub fn violation_minterms(&self, output: usize, stuck: bool) -> Tt {
        let fs = if stuck {
            &self.stuck1[output]
        } else {
            &self.stuck0[output]
        };
        // D(X) = 1 where the faulty output differs from the correct one in
        // period 1; D(X̄) lifted back to period-1 coordinates marks period-2
        // wrongness. Both wrong ⇒ incorrect alternating output.
        let d = fs ^ &self.normal[output];
        &d & &d.flip_inputs()
    }

    /// Corollary 3.1 for output `j`: `true` iff neither stuck value can ever
    /// produce an incorrect alternating output on that output.
    #[must_use]
    pub fn condition_e(&self, output: usize) -> bool {
        self.violation_minterms(output, false).is_zero()
            && self.violation_minterms(output, true).is_zero()
    }

    /// Theorem 3.4: the line is redundant iff no stuck value ever changes any
    /// output.
    #[must_use]
    pub fn redundant(&self) -> bool {
        self.unobservable(false) && self.unobservable(true)
    }

    /// `true` iff stuck-at-`s` on this line never changes any output (the
    /// fault is untestable; the paper then models the line as a constant).
    #[must_use]
    pub fn unobservable(&self, stuck: bool) -> bool {
        let fs = if stuck { &self.stuck1 } else { &self.stuck0 };
        fs.iter().zip(&self.normal).all(|(a, b)| a == b)
    }
}

/// Corollary 3.2's global check: the minterms at which *every* output
/// alternates yet at least one is wrong — undetected wrong code words — for
/// each stuck value. The network is self-checking with respect to the line
/// iff both tables are zero (given irredundancy).
#[must_use]
pub fn global_violation_minterms(funcs: &LineFunctions) -> (Tt, Tt) {
    let n = funcs.g.nvars();
    let mut out = Vec::with_capacity(2);
    for stuck in [false, true] {
        let fs = if stuck { &funcs.stuck1 } else { &funcs.stuck0 };
        let mut all_alternate = Tt::one(n);
        let mut some_wrong = Tt::zero(n);
        for (k, f) in fs.iter().enumerate() {
            // Output k alternates at pair (X, X̄) iff Fk(X) ≠ Fk(X̄).
            let alt = f ^ &f.flip_inputs();
            all_alternate = all_alternate & alt;
            some_wrong = some_wrong | (f ^ &funcs.normal[k]);
        }
        out.push(all_alternate & some_wrong);
    }
    let s1 = out.pop().expect("two entries");
    let s0 = out.pop().expect("two entries");
    (s0, s1)
}

/// Truth tables of *every node* of a combinational circuit as functions of
/// the primary inputs, computed in one bit-parallel sweep.
///
/// Convenience wrapper that compiles a throwaway [`ExactSweep`]; callers
/// that also need [`line_functions`] should build the sweep themselves so
/// the compile is paid once.
///
/// # Panics
///
/// Panics if the circuit is sequential or wider than
/// [`scal_logic::MAX_VARS`].
#[must_use]
pub fn all_node_tts(circuit: &Circuit) -> Vec<Tt> {
    ExactSweep::new(circuit).all_node_tts()
}

/// Source stem of a site (the node whose value the line carries).
#[must_use]
pub fn source_of(circuit: &Circuit, site: Site) -> NodeId {
    match site {
        Site::Stem(n) => n,
        Site::Branch { node, pin } => circuit.fanins(node)[pin],
    }
}

/// Computes [`LineFunctions`] for one line. `node_tts` must come from
/// [`all_node_tts`] on the same circuit.
///
/// Convenience wrapper that compiles a throwaway [`ExactSweep`]; loops over
/// many lines should use [`ExactSweep::line_functions`] directly.
///
/// # Panics
///
/// Panics on arity/width violations (see [`all_node_tts`]).
#[must_use]
pub fn line_functions(circuit: &Circuit, node_tts: &[Tt], site: Site) -> LineFunctions {
    ExactSweep::new(circuit).line_functions(circuit, node_tts, site)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f = (w AND ¬c) OR (¬w AND c) with w = a XOR b: the unequal-parity
    /// reconvergence whose w-stem faults are fault-secure violations.
    fn unequal_parity() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let w = c.xor(&[a, b]);
        let nd = c.not(d);
        let nw = c.not(w);
        let t1 = c.and(&[w, nd]);
        let t2 = c.and(&[nw, d]);
        let f = c.or(&[t1, t2]);
        c.mark_output("f", f);
        (c, w)
    }

    #[test]
    fn all_node_tts_match_node_tt() {
        let (c, _) = unequal_parity();
        let tts = all_node_tts(&c);
        for id in c.node_ids() {
            assert_eq!(tts[id.index()], c.node_tt(id), "node {id}");
        }
    }

    #[test]
    fn condition_e_catches_theorem_3_1_violation() {
        let (c, w) = unequal_parity();
        let tts = all_node_tts(&c);
        let lf = line_functions(&c, &tts, Site::Stem(w));
        assert!(!lf.condition_e(0));
        let v0 = lf.violation_minterms(0, false);
        assert!(!v0.is_zero());
        // s-a-0 makes f = c, which is wrong in both periods exactly when
        // w(X) = 1, i.e. a ⊕ b.
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = (m >> 1) & 1 == 1;
            assert_eq!(v0.eval(m), a != b, "minterm {m}");
        }
    }

    #[test]
    fn condition_e_passes_on_two_level_network() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        let tts = all_node_tts(&c);
        for id in c.node_ids() {
            let lf = line_functions(&c, &tts, Site::Stem(id));
            assert!(lf.condition_e(0), "line {id}");
            assert!(!lf.redundant());
        }
    }

    #[test]
    fn redundancy_detected() {
        // A line with no path to any output is redundant in both directions
        // (Theorem 3.4's A ∨ C = 0): here m = AND(g, ¬g) feeds a gate whose
        // other input masks it completely is modelled by simply not using m.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.or(&[a, b]);
        c.mark_output("f", f);
        let tts = all_node_tts(&c);
        let lf = line_functions(&c, &tts, Site::Stem(g));
        assert!(lf.redundant());
        assert!(lf.unobservable(false) && lf.unobservable(true));
    }

    #[test]
    fn one_direction_untestable() {
        // f = a OR (a AND b) = a. Stuck-0 on the AND leaves f = a
        // (unobservable); stuck-1 forces f = 1, observable at a = 0. The
        // paper's rule then replaces the subnetwork by a constant; here we
        // just require the flags to tell the two directions apart.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.or(&[a, g]);
        c.mark_output("f", f);
        let tts = all_node_tts(&c);
        let lf = line_functions(&c, &tts, Site::Stem(g));
        assert!(lf.unobservable(false));
        assert!(!lf.unobservable(true));
        assert!(!lf.redundant());
    }

    #[test]
    fn global_violation_rescued_by_second_output() {
        // The paper's "line 9" mechanism (§3.6): a NAND stem shared between
        // the XOR chain of F2 = a⊕b⊕c and the majority F3. Stuck-at-0 on the
        // shared stem makes F2 alternate *incorrectly* at some pairs, but F3
        // simultaneously goes non-alternating — Corollary 3.2 rescues it.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        // Shared stem: n1 = NAND(a, b).
        let n1 = c.nand(&[a, b]);
        // x = a ⊕ b from NANDs reusing n1.
        let ta = c.nand(&[a, n1]);
        let tb = c.nand(&[b, n1]);
        let x = c.nand(&[ta, tb]);
        // F2 = x ⊕ d via unequal-parity AND/OR reconvergence.
        let nd = c.not(d);
        let nx = c.not(x);
        let t1 = c.and(&[x, nd]);
        let t2 = c.and(&[nx, d]);
        let f2 = c.or(&[t1, t2]);
        // F3 = MAJ(a,b,c) = NAND(n1, NAND(a,d), NAND(b,d)), sharing n1.
        let nad = c.nand(&[a, d]);
        let nbd = c.nand(&[b, d]);
        let f3 = c.nand(&[n1, nad, nbd]);
        c.mark_output("f2", f2);
        c.mark_output("f3", f3);

        let tts = all_node_tts(&c);
        let lf = line_functions(&c, &tts, Site::Stem(n1));
        assert!(!lf.condition_e(0), "F2 alone alternates incorrectly");
        assert!(lf.condition_e(1), "F3 alone is clean for n1");
        let (v0, v1) = global_violation_minterms(&lf);
        assert!(
            v0.is_zero() && v1.is_zero(),
            "jointly fault-secure via Cor. 3.2"
        );
    }
}
