//! Complete stuck-at test-set generation for alternating networks.
//!
//! §3.2 derives, per line and stuck value, the input pairs that detect the
//! fault (Theorem 3.2). This module extends the calculus to the whole
//! network: derive a detecting pair for *every* collapsed fault, then
//! compact the result into a small test sequence by greedy set cover —
//! giving the static-test complement to SCAL's dynamic checking (useful for
//! the paper's assumption that "the network is free of faults when it is
//! initially used").

use crate::exact::ExactSweep;
use crate::AnalysisError;
use scal_faults::{enumerate_faults, Fault};
use scal_logic::Tt;
use scal_netlist::Circuit;
use std::collections::BTreeMap;

/// A generated test set for an alternating network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSet {
    /// Canonical first-period minterms: applying each with its complement
    /// detects every detectable fault.
    pub pairs: Vec<u32>,
    /// Faults with no detecting pair (unobservable — redundant lines).
    pub untestable: Vec<Fault>,
    /// Total faults considered.
    pub fault_count: usize,
}

impl TestSet {
    /// Fault coverage over the testable universe (0.0–1.0).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.fault_count == 0 {
            return 1.0;
        }
        (self.fault_count - self.untestable.len()) as f64 / self.fault_count as f64
    }
}

/// Derives a compact test set detecting every detectable single stuck-at
/// fault of a combinational alternating network.
///
/// For each fault, the detecting pairs are the minterms of
/// `D ⊕ (D at X̄)`-style sets from Theorem 3.2 aggregated over all outputs
/// (a pair detects iff the faulty response is non-code: wrong in exactly
/// one period on some output, or non-alternating outright). Greedy set
/// cover then picks few pairs covering all faults.
///
/// # Errors
///
/// Returns [`AnalysisError`] on the same prerequisites as
/// [`crate::analyze`] (combinational, ≤ 16 inputs, self-dual outputs).
pub fn generate_tests(circuit: &Circuit) -> Result<TestSet, AnalysisError> {
    circuit.validate()?;
    if circuit.is_sequential() {
        return Err(AnalysisError::Sequential);
    }
    let n = circuit.inputs().len();
    if n > crate::algorithm::MAX_ANALYSIS_INPUTS {
        return Err(AnalysisError::TooWide { inputs: n });
    }
    let mut sweep = ExactSweep::new(circuit);
    let node_tts = sweep.all_node_tts();
    for (j, out) in circuit.outputs().iter().enumerate() {
        if !node_tts[out.node.index()].is_self_dual() {
            return Err(AnalysisError::NotSelfDual { output: j });
        }
    }

    let faults = enumerate_faults(circuit);
    let mask = (1u32 << n) - 1;

    // detecting[f] = canonical pair minterms that detect fault f.
    let mut detecting: Vec<Vec<u32>> = Vec::with_capacity(faults.len());
    let mut untestable = Vec::new();
    let mut site_cache: BTreeMap<scal_netlist::Site, crate::LineFunctions> = BTreeMap::new();

    for fault in &faults {
        let funcs = site_cache
            .entry(fault.site)
            .or_insert_with(|| sweep.line_functions(circuit, &node_tts, fault.site));
        // A pair (X, X̄) detects iff some output is non-alternating under
        // the fault: output k non-alternating at X ⟺ Fk,s(X) == Fk,s(X̄).
        let stuck_tables = if fault.stuck {
            &funcs.stuck1
        } else {
            &funcs.stuck0
        };
        let mut detected = Tt::zero(n);
        for fs in stuck_tables {
            let nonalt = !(fs ^ &fs.flip_inputs());
            detected = detected | nonalt;
        }
        let pairs: Vec<u32> = detected.minterms().filter(|&m| m <= (!m & mask)).collect();
        if pairs.is_empty() {
            untestable.push(*fault);
            detecting.push(Vec::new());
        } else {
            detecting.push(pairs);
        }
    }

    // Greedy cover.
    let mut covered: Vec<bool> = detecting.iter().map(Vec::is_empty).collect();
    let mut chosen: Vec<u32> = Vec::new();
    while covered.iter().any(|&c| !c) {
        let mut gain: BTreeMap<u32, usize> = BTreeMap::new();
        for (fi, pairs) in detecting.iter().enumerate() {
            if covered[fi] {
                continue;
            }
            for &p in pairs {
                *gain.entry(p).or_insert(0) += 1;
            }
        }
        let (&best, _) = gain
            .iter()
            .max_by_key(|(_, &g)| g)
            .expect("uncovered fault must have a detecting pair");
        chosen.push(best);
        for (fi, pairs) in detecting.iter().enumerate() {
            if !covered[fi] && pairs.contains(&best) {
                covered[fi] = true;
            }
        }
    }
    chosen.sort_unstable();

    Ok(TestSet {
        pairs: chosen,
        untestable,
        fault_count: faults.len(),
    })
}

/// Validates a test set against exhaustive fault simulation: returns the
/// faults the pairs fail to detect (must equal the untestable set).
#[must_use]
pub fn validate_tests(circuit: &Circuit, tests: &TestSet) -> Vec<Fault> {
    let n = circuit.inputs().len();
    let faults = enumerate_faults(circuit);
    let mut missed = Vec::new();
    for fault in &faults {
        let ov = [fault.to_override()];
        let mut caught = false;
        for &m in &tests.pairs {
            let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let y: Vec<bool> = x.iter().map(|&b| !b).collect();
            let o1 = circuit.eval_with(&x, &ov);
            let o2 = circuit.eval_with(&y, &ov);
            if o1.iter().zip(&o2).any(|(a, b)| a == b) {
                caught = true;
                break;
            }
        }
        if !caught {
            missed.push(*fault);
        }
    }
    missed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maj_nand() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        c
    }

    #[test]
    fn full_coverage_on_majority() {
        let c = maj_nand();
        let tests = generate_tests(&c).unwrap();
        assert!(tests.untestable.is_empty());
        assert_eq!(tests.coverage(), 1.0);
        let missed = validate_tests(&c, &tests);
        assert!(missed.is_empty(), "missed: {missed:?}");
        // All four pairs exist for 3 inputs; a compact set needs at most 4.
        assert!(tests.pairs.len() <= 4);
    }

    #[test]
    fn compaction_beats_exhaustive_application() {
        let c = scal_core_like_adder();
        let tests = generate_tests(&c).unwrap();
        let all_pairs = 1usize << (c.inputs().len() - 1);
        assert!(
            tests.pairs.len() < all_pairs,
            "{} pairs vs {} exhaustive",
            tests.pairs.len(),
            all_pairs
        );
        assert!(validate_tests(&c, &tests).is_empty());
    }

    /// A 2-bit self-dual ripple adder built locally (avoids a dev-dependency
    /// cycle on scal-core).
    fn scal_core_like_adder() -> Circuit {
        let mut c = Circuit::new();
        let mut carry = c.input("cin");
        let mut outputs = Vec::new();
        for i in 0..2 {
            let a = c.input(format!("a{i}"));
            let b = c.input(format!("b{i}"));
            let na = c.not(a);
            let nb = c.not(b);
            let nc = c.not(carry);
            let s1 = c.nand(&[a, nb, nc]);
            let s2 = c.nand(&[na, b, nc]);
            let s3 = c.nand(&[na, nb, carry]);
            let s4 = c.nand(&[a, b, carry]);
            let sum = c.nand(&[s1, s2, s3, s4]);
            let c1 = c.nand(&[a, b]);
            let c2 = c.nand(&[a, carry]);
            let c3 = c.nand(&[b, carry]);
            carry = c.nand(&[c1, c2, c3]);
            outputs.push(sum);
        }
        for (i, &s) in outputs.iter().enumerate() {
            c.mark_output(format!("s{i}"), s);
        }
        c.mark_output("cout", carry);
        c
    }

    #[test]
    fn untestable_faults_reported_not_covered() {
        // Dangling gate: its faults are unobservable; coverage reflects it.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let dangling = c.and(&[a, b]);
        let _ = dangling;
        let f = c.gate(scal_netlist::GateKind::Xor, &[a, b, d]);
        c.mark_output("f", f);
        let tests = generate_tests(&c).unwrap();
        assert!(!tests.untestable.is_empty());
        assert!(tests.coverage() < 1.0);
        // Validation misses exactly the untestable ones.
        let missed = validate_tests(&c, &tests);
        assert_eq!(missed.len(), tests.untestable.len());
    }

    #[test]
    fn rejects_non_alternating_networks() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let f = c.and(&[a, b]);
        c.mark_output("f", f);
        assert!(matches!(
            generate_tests(&c),
            Err(AnalysisError::NotSelfDual { .. })
        ));
    }
}
