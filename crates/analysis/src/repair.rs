//! Constructive repair: making a network self-checking by fanout splitting —
//! the §8.3 "constructive design procedures" direction, generalizing the
//! paper's own Fig. 3.4 → Fig. 3.7 fix.
//!
//! The fatal pattern of Chapter 3 is a stem whose fanout branches reconverge
//! with unequal parity: its stuck faults can flip the output in *both*
//! periods and hide behind a still-alternating pair (Theorem 3.1). The fix
//! the paper applies by hand — duplicate the logic so the line no longer
//! fans out — is mechanized here: [`split_fanout`] clones an offending
//! stem's fan-in cone once per branch, and [`make_self_checking`] iterates
//! Algorithm 3.1 + splitting to a fixed point.

use crate::algorithm::analyze;
use crate::AnalysisError;
use scal_netlist::{Circuit, NodeId, NodeView, Site};

/// Duplicates `stem`'s fan-in cone so that each of its fanout branches is
/// fed by a private copy (the first branch keeps the original). Functionally
/// the circuit is unchanged.
///
/// # Panics
///
/// Panics if `stem` is not a gate, or the circuit is sequential.
#[must_use]
pub fn split_fanout(circuit: &Circuit, stem: NodeId) -> Circuit {
    assert!(!circuit.is_sequential(), "combinational repair only");
    assert!(
        matches!(circuit.view(stem), NodeView::Gate(_)),
        "only gate stems can be split"
    );
    // Consumers of the stem, in a stable order.
    let consumers: Vec<(NodeId, usize)> = circuit
        .node_ids()
        .flat_map(|id| {
            circuit
                .fanins(id)
                .iter()
                .enumerate()
                .filter(|(_, f)| **f == stem)
                .map(|(pin, _)| (id, pin))
                .collect::<Vec<_>>()
        })
        .collect();
    if consumers.len() <= 1 {
        return circuit.clone();
    }

    // Rebuild, creating one extra copy of the stem's cone per extra branch.
    let mut c = Circuit::new();
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.len()];
    for &inp in circuit.inputs() {
        map[inp.index()] = Some(c.input(circuit.name(inp).unwrap_or("x").to_owned()));
    }
    let order = circuit.topo_order();
    for &id in &order {
        if map[id.index()].is_some() {
            continue;
        }
        let new = match circuit.view(id) {
            NodeView::Input => unreachable!("inputs pre-mapped"),
            NodeView::Const(v) => c.constant(v),
            NodeView::Dff { .. } => unreachable!("combinational only"),
            NodeView::Gate(kind) => {
                let fanins: Vec<NodeId> = circuit
                    .fanins(id)
                    .iter()
                    .map(|f| map[f.index()].expect("topo order"))
                    .collect();
                c.gate(kind, &fanins)
            }
        };
        if let Some(n) = circuit.name(id) {
            c.set_name(new, n.to_owned());
        }
        map[id.index()] = Some(new);
    }

    // Build duplicate cones for branches 1.. and rewire.
    for (branch_idx, &(consumer, pin)) in consumers.iter().enumerate().skip(1) {
        let copy = clone_cone(circuit, &mut c, &map, stem);
        let mapped_consumer = map[consumer.index()].expect("mapped");
        c.replace_fanin(mapped_consumer, pin, copy);
        let _ = branch_idx;
    }

    for o in circuit.outputs() {
        c.mark_output(o.name.clone(), map[o.node.index()].expect("mapped"));
    }
    c
}

/// Clones the gate cone of `stem` (stopping at inputs/constants, which are
/// shared) into `c`, returning the copy's root.
fn clone_cone(
    original: &Circuit,
    c: &mut Circuit,
    base_map: &[Option<NodeId>],
    stem: NodeId,
) -> NodeId {
    fn go(
        original: &Circuit,
        c: &mut Circuit,
        base_map: &[Option<NodeId>],
        local: &mut std::collections::BTreeMap<usize, NodeId>,
        node: NodeId,
    ) -> NodeId {
        if let Some(&done) = local.get(&node.index()) {
            return done;
        }
        let new = match original.view(node) {
            NodeView::Input | NodeView::Const(_) => {
                base_map[node.index()].expect("sources pre-mapped")
            }
            NodeView::Dff { .. } => unreachable!("combinational only"),
            NodeView::Gate(kind) => {
                let fanins: Vec<NodeId> = original
                    .fanins(node)
                    .iter()
                    .map(|&f| go(original, c, base_map, local, f))
                    .collect();
                c.gate(kind, &fanins)
            }
        };
        local.insert(node.index(), new);
        new
    }
    let mut local = std::collections::BTreeMap::new();
    go(original, c, base_map, &mut local, stem)
}

/// Report from [`make_self_checking`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Number of stems split.
    pub splits: usize,
    /// Gate counts before and after.
    pub gates_before: usize,
    /// Gate count of the repaired circuit.
    pub gates_after: usize,
    /// Whether the fixed point is self-checking.
    pub self_checking: bool,
}

/// Iteratively applies Algorithm 3.1 and splits the first offending gate
/// stem until the network is self-checking or no further progress is
/// possible (offenders that are inputs or branch-only cannot be split).
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the analysis passes.
pub fn make_self_checking(circuit: &Circuit) -> Result<(Circuit, RepairReport), AnalysisError> {
    let gates_before = circuit.cost().gates;
    let mut current = circuit.clone();
    let mut splits = 0usize;
    let max_rounds = 4 * circuit.len();
    for _ in 0..max_rounds {
        let report = analyze(&current)?;
        if report.self_checking {
            break;
        }
        // A victim must be a gate stem that actually fans out — splitting a
        // single-consumer stem changes nothing. Offending fanout-free stems
        // are usually *upstream* of a reconvergent stem; splitting the
        // reconvergent one duplicates them too.
        let structure = scal_netlist::Structure::new(&current);
        let victim = report.offending.iter().find_map(|site| match site {
            Site::Stem(n)
                if matches!(current.view(*n), NodeView::Gate(_))
                    && structure.fanout_count(*n) >= 2 =>
            {
                Some(*n)
            }
            _ => None,
        });
        // If no offender itself fans out, split the closest fanning-out
        // gate stem downstream-or-equal in an offender's cone influence:
        // fall back to any offender's consumer chain.
        let victim = victim.or_else(|| {
            report.offending.iter().find_map(|site| {
                let start = match site {
                    Site::Stem(n) => *n,
                    Site::Branch { node, .. } => *node,
                };
                // Walk forward until a fanning-out gate stem is found.
                let mut cur = start;
                loop {
                    if matches!(current.view(cur), NodeView::Gate(_))
                        && structure.fanout_count(cur) >= 2
                    {
                        return Some(cur);
                    }
                    let outs = structure.fanouts(cur);
                    match outs.first() {
                        Some(&(next, _)) if outs.len() == 1 => cur = next,
                        _ => return None,
                    }
                }
            })
        });
        let Some(stem) = victim else {
            break; // nothing splittable
        };
        current = split_fanout(&current, stem);
        splits += 1;
    }
    let final_report = analyze(&current)?;
    Ok((
        current.clone(),
        RepairReport {
            splits,
            gates_before,
            gates_after: current.cost().gates,
            self_checking: final_report.self_checking,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The line-20 pattern: an XOR stem feeding an unequal-parity
    /// reconvergence.
    fn offending_network() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let w = c.xor(&[a, b]);
        let nd = c.not(d);
        let nw = c.not(w);
        let t1 = c.and(&[w, nd]);
        let t2 = c.and(&[nw, d]);
        let f = c.or(&[t1, t2]);
        c.mark_output("f", f);
        (c, w)
    }

    #[test]
    fn split_preserves_function() {
        let (c, w) = offending_network();
        let split = split_fanout(&c, w);
        assert_eq!(split.output_tts(), c.output_tts());
        assert!(split.cost().gates > c.cost().gates);
    }

    #[test]
    fn split_removes_the_fanout() {
        let (c, w) = offending_network();
        let split = split_fanout(&c, w);
        // Every XOR stem in the result must have fanout 1.
        let s = scal_netlist::Structure::new(&split);
        for id in split.node_ids() {
            if split.view(id) == NodeView::Gate(scal_netlist::GateKind::Xor) {
                assert_eq!(s.fanout_count(id), 1);
            }
        }
        let _ = w;
    }

    #[test]
    fn repair_fixes_the_line_20_pattern() {
        let (c, _) = offending_network();
        assert!(!analyze(&c).unwrap().self_checking);
        let (fixed, report) = make_self_checking(&c).unwrap();
        assert!(report.self_checking, "report: {report:?}");
        assert_eq!(fixed.output_tts(), c.output_tts());
        assert!(report.splits >= 1);
    }

    #[test]
    fn repair_is_identity_on_clean_networks() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nad = c.nand(&[a, d]);
        let nbd = c.nand(&[b, d]);
        let f = c.nand(&[nab, nad, nbd]);
        c.mark_output("f", f);
        let (_, report) = make_self_checking(&c).unwrap();
        assert_eq!(report.splits, 0);
        assert!(report.self_checking);
        assert_eq!(report.gates_after, report.gates_before);
    }

    #[test]
    fn split_with_single_consumer_is_noop() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.not(g);
        c.mark_output("f", f);
        let split = split_fanout(&c, g);
        assert_eq!(split.cost().gates, c.cost().gates);
    }
}
