//! Redundancy handling (§3.2 after Theorem 3.4): lines untestable in one
//! direction are replaced by the constant they are indistinguishable from
//! ("the subnetwork generating the line value may be removed and replaced by
//! a constant input"), and fully redundant logic is swept away; the analysis
//! then assumes "all such replacements have been done".

use crate::exact::ExactSweep;
use crate::AnalysisError;
use scal_netlist::{Circuit, NodeId, NodeView, Site, Structure};

/// The outcome of one redundancy-removal pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Stems whose value was proved constant-equivalent and replaced.
    pub replaced: Vec<(NodeId, bool)>,
    /// Gate count before and after.
    pub gates_before: usize,
    /// Gate count after sweeping.
    pub gates_after: usize,
}

/// Replaces every stem that is untestable stuck-at-`s` (for exactly one
/// `s`) by the constant `s`, sweeps unreachable logic, and iterates to a
/// fixed point. Functionally the output is unchanged; structurally the
/// result has no one-direction-untestable stems left, which is what
/// Theorem 3.5 needs to conclude self-testing from irredundancy.
///
/// # Errors
///
/// Same prerequisites as [`crate::analyze`], except self-duality is not
/// required (redundancy is a plain combinational notion).
pub fn remove_redundancy(circuit: &Circuit) -> Result<(Circuit, RedundancyReport), AnalysisError> {
    circuit.validate()?;
    if circuit.is_sequential() {
        return Err(AnalysisError::Sequential);
    }
    if circuit.inputs().len() > crate::algorithm::MAX_ANALYSIS_INPUTS {
        return Err(AnalysisError::TooWide {
            inputs: circuit.inputs().len(),
        });
    }

    let gates_before = circuit.cost().gates;
    let mut current = circuit.clone();
    let mut replaced_total = Vec::new();
    loop {
        let mut sweep = ExactSweep::new(&current);
        let node_tts = sweep.all_node_tts();
        let mut replacement: Option<(NodeId, bool)> = None;
        for id in current.node_ids() {
            if !matches!(current.view(id), NodeView::Gate(_)) {
                continue;
            }
            let funcs = sweep.line_functions(&current, &node_tts, Site::Stem(id));
            // Untestable stuck-at-s means the network cannot distinguish the
            // line from constant s.
            let u0 = funcs.unobservable(false);
            let u1 = funcs.unobservable(true);
            if u0 || u1 {
                // Untestable stuck-at-s means the network behaves
                // identically with the line at constant s; when both
                // directions are untestable (fully redundant) either
                // constant works.
                replacement = Some((id, !u0));
                break;
            }
        }
        let Some((victim, value)) = replacement else {
            break;
        };
        replaced_total.push((victim, value));
        current = rebuild_with_constant(&current, victim, value);
    }

    let report = RedundancyReport {
        replaced: replaced_total,
        gates_before,
        gates_after: current.cost().gates,
    };
    Ok((current, report))
}

/// Rebuilds the circuit with `victim`'s stem replaced by `value`, keeping
/// only logic still reachable from the outputs.
fn rebuild_with_constant(circuit: &Circuit, victim: NodeId, value: bool) -> Circuit {
    let mut c = Circuit::new();
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.len()];
    for &inp in circuit.inputs() {
        map[inp.index()] = Some(c.input(circuit.name(inp).unwrap_or("x").to_owned()));
    }
    let const_node = c.constant(value);
    map[victim.index()] = Some(const_node);

    for id in circuit.topo_order() {
        if map[id.index()].is_some() {
            continue;
        }
        let new = match circuit.view(id) {
            NodeView::Input => unreachable!("inputs pre-mapped"),
            NodeView::Const(v) => c.constant(v),
            NodeView::Dff { .. } => unreachable!("combinational only"),
            NodeView::Gate(kind) => {
                let fanins: Vec<NodeId> = circuit
                    .fanins(id)
                    .iter()
                    .map(|f| map[f.index()].expect("fanin mapped"))
                    .collect();
                c.gate(kind, &fanins)
            }
        };
        map[id.index()] = Some(new);
    }
    for o in circuit.outputs() {
        c.mark_output(o.name.clone(), map[o.node.index()].expect("mapped"));
    }
    sweep_dead(&c)
}

/// Copies only logic reachable from the outputs.
fn sweep_dead(circuit: &Circuit) -> Circuit {
    let structure = Structure::new(circuit);
    let mut live = vec![false; circuit.len()];
    for o in circuit.outputs() {
        for (i, &inc) in structure.cone(o.node).iter().enumerate() {
            live[i] = live[i] || inc;
        }
    }
    // Inputs always survive (interface stability).
    for &inp in circuit.inputs() {
        live[inp.index()] = true;
    }
    let mut c = Circuit::new();
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.len()];
    for &inp in circuit.inputs() {
        map[inp.index()] = Some(c.input(circuit.name(inp).unwrap_or("x").to_owned()));
    }
    for id in circuit.topo_order() {
        if map[id.index()].is_some() || !live[id.index()] {
            continue;
        }
        let new = match circuit.view(id) {
            NodeView::Input => unreachable!(),
            NodeView::Const(v) => c.constant(v),
            NodeView::Dff { .. } => unreachable!("combinational only"),
            NodeView::Gate(kind) => {
                let fanins: Vec<NodeId> = circuit
                    .fanins(id)
                    .iter()
                    .map(|f| map[f.index()].expect("live fanin mapped"))
                    .collect();
                c.gate(kind, &fanins)
            }
        };
        map[id.index()] = Some(new);
    }
    for o in circuit.outputs() {
        c.mark_output(o.name.clone(), map[o.node.index()].expect("output live"));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{all_node_tts, line_functions};

    #[test]
    fn absorbed_term_is_replaced_by_constant() {
        // f = a OR (a AND b): the AND is untestable s-a-0 -> becomes const 0
        // and the OR collapses away functionally (f = a).
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.or(&[a, g]);
        c.mark_output("f", f);
        let before = c.output_tt(0);
        let (clean, report) = remove_redundancy(&c).unwrap();
        assert!(!report.replaced.is_empty());
        assert!(report.gates_after < report.gates_before);
        assert_eq!(clean.output_tt(0), before, "function preserved");
    }

    #[test]
    fn irredundant_network_is_untouched() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        let (clean, report) = remove_redundancy(&c).unwrap();
        assert!(report.replaced.is_empty());
        assert_eq!(clean.cost().gates, c.cost().gates);
    }

    #[test]
    fn dangling_logic_swept() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let dangling = c.and(&[a, b]);
        let _ = dangling;
        let f = c.xor(&[a, b]);
        c.mark_output("f", f);
        let (clean, report) = remove_redundancy(&c).unwrap();
        assert!(report.gates_after <= report.gates_before);
        assert_eq!(clean.count_kind(scal_netlist::GateKind::And), 0);
    }

    #[test]
    fn cleaned_network_has_no_untestable_gate_stems() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let h = c.or(&[a, g]); // absorbed
        let f = c.xor(&[h, b]);
        c.mark_output("f", f);
        let (clean, _) = remove_redundancy(&c).unwrap();
        let tts = all_node_tts(&clean);
        for id in clean.node_ids() {
            if matches!(clean.view(id), NodeView::Gate(_)) {
                let funcs = line_functions(&clean, &tts, Site::Stem(id));
                assert!(
                    !funcs.unobservable(false) && !funcs.unobservable(true),
                    "gate {id} still untestable"
                );
            }
        }
    }
}
