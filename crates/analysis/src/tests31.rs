//! Theorem 3.2: deriving stuck-at tests for a line of an alternating network.
//!
//! The paper defines, for a line `g` and output `F`:
//!
//! ```text
//! A = F(X,0) ⊕ F(X,G(X))      B = F(X̄,0) ⊕ F(X̄,G(X̄))
//! C = F(X,1) ⊕ F(X,G(X))      D = F(X̄,1) ⊕ F(X̄,G(X̄))
//! E = A & B                   F = C & D
//! ```
//!
//! Iff `E = 0` the line can be tested for stuck-at-0, with every input in
//! `A ∨ B` a test (and symmetrically `F = 0` / `C ∨ D` for stuck-at-1). The
//! worked example of §3.2 (our `fig3_1` experiment) derives the test set
//! {1011, 0110, 0100, 1001} and pairs (1011,0100), (0110,1001).

use crate::exact::{all_node_tts, line_functions};
use scal_logic::Tt;
use scal_netlist::{Circuit, Site};

/// Tests for one stuck value of one line, per Theorem 3.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckTests {
    /// The stuck value under test.
    pub stuck: bool,
    /// Theorem 3.2's `E` (or `F`) predicate is identically zero, i.e. the
    /// fault never produces an incorrect alternating output and is therefore
    /// testable by alternation checking.
    pub e_zero: bool,
    /// First-period input minterms that (with their complements) detect the
    /// fault — the ON-set of `A ∨ B` (resp. `C ∨ D`).
    pub tests: Vec<u32>,
    /// The same tests grouped into unordered alternating pairs
    /// `(min(X, X̄), max(X, X̄))`, deduplicated.
    pub pairs: Vec<(u32, u32)>,
}

/// Derives Theorem 3.2 test sets for both stuck values of `site`, as seen at
/// output `output` of a combinational alternating network.
///
/// # Panics
///
/// Panics if the circuit is sequential, too wide, or `output` out of range.
#[must_use]
pub fn derive_tests(circuit: &Circuit, site: Site, output: usize) -> (StuckTests, StuckTests) {
    let node_tts = all_node_tts(circuit);
    let funcs = line_functions(circuit, &node_tts, site);
    let mk = |stuck: bool| -> StuckTests {
        let fs = if stuck {
            &funcs.stuck1[output]
        } else {
            &funcs.stuck0[output]
        };
        // A(X) = F(X,s) ⊕ F(X,G(X)); B(X) = A(X̄) lifted to first-period
        // coordinates.
        let a = fs ^ &funcs.normal[output];
        let b = a.flip_inputs();
        let e = &a & &b;
        let tests_tt = &a | &b;
        let tests: Vec<u32> = tests_tt.minterms().collect();
        let pairs = canonical_pairs(&tests_tt);
        StuckTests {
            stuck,
            e_zero: e.is_zero(),
            tests,
            pairs,
        }
    };
    (mk(false), mk(true))
}

fn canonical_pairs(tests: &Tt) -> Vec<(u32, u32)> {
    let mask = (tests.len() - 1) as u32;
    let mut pairs: Vec<(u32, u32)> = tests
        .minterms()
        .map(|m| {
            let n = !m & mask;
            (m.min(n), m.max(n))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_faults::{Campaign, Fault};

    /// The §3.2 example: F(X,G(X)) = G(X)·x̄3 ∨ x1x2x̄3 ∨ x̄2x3x4 ∨ x1x3x4
    /// with G(X) = x1x̄2x̄3 ∨ x̄1x̄2x4 ∨ x̄1x̄2̄… — rather than transcribe the
    /// OCR-damaged cover, we reproduce the *calculus* on a circuit with the
    /// same shape: a line g with computable A, B, E sets, checking that the
    /// derived tests exactly match exhaustive fault simulation.
    fn example_circuit() -> (Circuit, Site) {
        // Self-dual F over 4 vars: F = x4̄·H ∨ x4·¬H(X̄) with H = (g & x3) ∨ x1x2
        // where g = NAND(x1, x3). Self-duality is by the Yamamoto trick
        // realized structurally with x4 as the period input.
        let mut c = Circuit::new();
        let x1 = c.input("x1");
        let x2 = c.input("x2");
        let x3 = c.input("x3");
        let phi = c.input("phi");
        let g = c.nand(&[x1, x3]);
        // H = (g AND x3) OR (x1 AND x2)
        let h1 = c.and(&[g, x3]);
        let h2 = c.and(&[x1, x2]);
        let h = c.or(&[h1, h2]);
        // Hd(X) = ¬H(X̄) built explicitly on complemented inputs.
        let n1 = c.not(x1);
        let n2 = c.not(x2);
        let n3 = c.not(x3);
        let gd = c.nand(&[n1, n3]);
        let hd1 = c.and(&[gd, n3]);
        let hd2 = c.and(&[n1, n2]);
        let hd = c.nor(&[hd1, hd2]);
        let nphi = c.not(phi);
        let t1 = c.and(&[nphi, h]);
        let t2 = c.and(&[phi, hd]);
        let f = c.or(&[t1, t2]);
        c.mark_output("f", f);
        (c, Site::Stem(g))
    }

    #[test]
    fn derived_tests_match_fault_simulation() {
        let (c, site) = example_circuit();
        // Reference: exhaustive campaign on the two faults of this site.
        let faults = [Fault::new(site, false), Fault::new(site, true)];
        let campaign = Campaign::new(&c)
            .faults(faults.to_vec())
            .run()
            .unwrap()
            .results;
        let (t0, t1) = derive_tests(&c, site, 0);
        for (t, r) in [(&t0, &campaign[0]), (&t1, &campaign[1])] {
            // e_zero ⇔ fault secure (single output network).
            assert_eq!(t.e_zero, r.fault_secure(), "stuck={}", t.stuck);
            // Every derived pair must be a detecting pair and vice versa.
            let derived: std::collections::BTreeSet<u32> =
                t.pairs.iter().map(|&(lo, _)| lo).collect();
            let simulated: std::collections::BTreeSet<u32> =
                r.detected_pairs.iter().copied().collect();
            assert_eq!(derived, simulated, "stuck={}", t.stuck);
        }
    }

    #[test]
    fn pairs_are_canonical_and_deduped() {
        let (c, site) = example_circuit();
        let (t0, _) = derive_tests(&c, site, 0);
        for &(lo, hi) in &t0.pairs {
            assert!(lo < hi);
            assert_eq!(lo, !hi & 0xF);
        }
        let mut sorted = t0.pairs.clone();
        sorted.dedup();
        assert_eq!(sorted, t0.pairs);
    }

    #[test]
    fn both_members_of_a_pair_listed_as_tests() {
        // If X detects, the pair (X, X̄) is applied as a unit; the paper
        // notes "whichever input of the input pair is applied first is
        // irrelevant". Check tests contains X iff A∨B at X; the pair list
        // dedups.
        let (c, site) = example_circuit();
        let (t0, t1) = derive_tests(&c, site, 0);
        for t in [&t0, &t1] {
            assert!(t.tests.len() >= t.pairs.len());
        }
    }

    #[test]
    fn untestable_direction_has_no_tests() {
        // f = a OR (a AND b): the AND stem is unobservable stuck-at-0 … but
        // that network is not alternating. Use an alternating one: f =
        // MAJ(a,b,c) with the redundant consensus NAND(b,c) added:
        // f = NAND(NAND(a,b), NAND(a,c), NAND(b,c)) where NAND(b,c) is NOT
        // redundant — majority needs all three. Instead check a healthy line
        // has tests in both directions.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        let (t0, t1) = derive_tests(&c, Site::Stem(nab), 0);
        assert!(t0.e_zero && t1.e_zero);
        assert!(!t0.tests.is_empty());
        assert!(!t1.tests.is_empty());
    }
}
