//! Analytic self-checking analysis for alternating-logic networks.
//!
//! Chapter 3 of the paper develops an *analytic* (non-simulation) procedure —
//! Algorithm 3.1 — that decides whether an irredundant self-dual network is
//! self-checking by examining each line against a ladder of conditions:
//!
//! * **A** — the line alternates for every input pair (Theorem 3.6);
//! * **B** — the line does not fan out and its path to the output passes only
//!   unate gates (Theorem 3.7);
//! * **C** — all paths from the line to the output share one parity
//!   (Theorem 3.8, Definition 3.1);
//! * **D** — the line feeds the same standard gate as an alternating line
//!   (Theorem 3.9);
//! * **E** — the exact fault-secure equation of Corollary 3.1 holds;
//! * and, for lines shared between outputs, the relaxed multiple-output
//!   condition of Corollary 3.2 (an incorrect alternating output must be
//!   accompanied by a non-alternating one, Definition 3.3/Theorem 3.10).
//!
//! [`analyze`] runs the full algorithm and produces a [`NetworkReport`];
//! [`derive_tests`] implements Theorem 3.2's `A,B,C,D,E,F` test-derivation
//! calculus; redundancy is detected per Theorem 3.4.
//!
//! Conditions A–D are *sufficient*, condition E (and its multiple-output
//! relaxation) is *exact*; the crate's tests cross-validate both against the
//! exhaustive fault simulation in `scal-faults`.
//!
//! # Example
//!
//! ```
//! use scal_netlist::Circuit;
//! use scal_analysis::analyze;
//!
//! // MAJ(a,b,c) from NANDs: two-level self-dual => self-checking.
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let d = c.input("c");
//! let nab = c.nand(&[a, b]);
//! let nac = c.nand(&[a, d]);
//! let nbc = c.nand(&[b, d]);
//! let f = c.nand(&[nab, nac, nbc]);
//! c.mark_output("f", f);
//!
//! let report = analyze(&c).unwrap();
//! assert!(report.self_checking);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod exact;
mod redundancy;
mod repair;
mod structural;
mod testgen;
mod tests31;

pub use algorithm::{analysis_sites, analyze, LineReport, NetworkReport, OutputConditions};
pub use exact::{
    all_node_tts, global_violation_minterms, line_functions, source_of, ExactSweep, LineFunctions,
};
pub use redundancy::{remove_redundancy, RedundancyReport};
pub use repair::{make_self_checking, split_fanout, RepairReport};
pub use structural::{condition_a, condition_b, condition_c, condition_d};
pub use testgen::{generate_tests, validate_tests, TestSet};
pub use tests31::{derive_tests, StuckTests};

use scal_netlist::NetlistError;

/// Errors from the analysis entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The circuit failed structural validation.
    Netlist(NetlistError),
    /// The circuit is sequential; Chapter 3's analysis is combinational.
    Sequential,
    /// An output is not self-dual, so the network is not an alternating
    /// network (Theorem 2.1) and self-checking analysis does not apply.
    NotSelfDual {
        /// Index of the offending output.
        output: usize,
    },
    /// Too many primary inputs for exhaustive truth-table analysis.
    TooWide {
        /// The circuit's input count.
        inputs: usize,
    },
}

impl core::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AnalysisError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            AnalysisError::Sequential => write!(f, "analysis applies to combinational networks"),
            AnalysisError::NotSelfDual { output } => {
                write!(
                    f,
                    "output {output} is not self-dual; not an alternating network"
                )
            }
            AnalysisError::TooWide { inputs } => {
                write!(f, "{inputs} inputs exceed the exhaustive-analysis limit")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<NetlistError> for AnalysisError {
    fn from(e: NetlistError) -> Self {
        AnalysisError::Netlist(e)
    }
}
