//! Structural sufficient conditions A–D of Algorithm 3.1.

use scal_logic::Tt;
use scal_netlist::{Circuit, NodeId, NodeView, Site, Structure};

/// Condition **A** (Theorem 3.6): the line alternates for every input pair,
/// i.e. its fault-free function is self-dual. `stem_tts` must index node
/// truth tables (see [`crate::exact::all_node_tts`]).
#[must_use]
pub fn condition_a(circuit: &Circuit, stem_tts: &[Tt], site: Site) -> bool {
    let src = crate::exact::source_of(circuit, site);
    stem_tts[src.index()].is_self_dual()
}

/// Condition **B** (Theorem 3.7): the line does not fan out within the
/// output's cone and its single path to the output passes only unate gates.
#[must_use]
pub fn condition_b(structure: &Structure<'_>, site: Site, output: NodeId) -> bool {
    match site {
        Site::Stem(n) => structure.single_unate_path(n, output),
        Site::Branch { node, .. } => {
            // The branch is a single wire into `node`; from there on the
            // same single-unate-path requirement applies, and `node` itself
            // must be a unate gate on the path.
            match structure.circuit().view(node) {
                NodeView::Gate(k) if k.is_unate() => {
                    node == output || structure.single_unate_path(node, output)
                }
                _ => false,
            }
        }
    }
}

/// Condition **C** (Theorem 3.8): all paths from the line to the output have
/// the same, well-defined inversion parity.
#[must_use]
pub fn condition_c(structure: &Structure<'_>, site: Site, output: NodeId) -> bool {
    match site {
        Site::Stem(n) => structure.path_parity(n, output).uniform(),
        Site::Branch { node, .. } => {
            // Paths through this branch all start by crossing `node`; their
            // parity is node's own contribution plus any path from node on.
            let gate_parity = match structure.circuit().view(node) {
                NodeView::Gate(k) => k.inversion_parity(),
                _ => None,
            };
            if gate_parity.is_none() {
                return false;
            }
            if node == output {
                return true;
            }
            structure.path_parity(node, output).uniform()
        }
    }
}

/// Condition **D** (Theorem 3.9): the line feeds a *standard* gate (NAND,
/// AND, NOR, OR — gates with a dominant input value) that another,
/// alternating line also feeds, and feeds nothing else within the cone.
///
/// `alternating` marks stems whose functions are self-dual.
#[must_use]
pub fn condition_d(
    circuit: &Circuit,
    structure: &Structure<'_>,
    alternating: &[bool],
    site: Site,
    output: NodeId,
) -> bool {
    // Identify the consuming pins of the line inside the output's cone.
    let cone = structure.cone(output);
    let consumers: Vec<(NodeId, usize)> = match site {
        Site::Branch { node, pin } => {
            if cone[node.index()] {
                vec![(node, pin)]
            } else {
                Vec::new()
            }
        }
        Site::Stem(n) => structure
            .fanouts(n)
            .iter()
            .copied()
            .filter(|(c, _)| cone[c.index()])
            .collect(),
    };
    // Theorem 3.9's masking argument needs a *single* consuming gate: if the
    // stem fans out elsewhere in this cone the fault propagates around the
    // dominated gate.
    if consumers.len() != 1 {
        return false;
    }
    let (gate, pin) = consumers[0];
    let kind = match circuit.view(gate) {
        NodeView::Gate(k) => k,
        _ => return false,
    };
    if kind.dominant_input().is_none() {
        return false;
    }
    circuit
        .fanins(gate)
        .iter()
        .enumerate()
        .any(|(p, f)| p != pin && alternating[f.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::all_node_tts;
    use scal_netlist::Circuit;

    /// F = NAND(g, a) with g = NAND(a, b): the non-alternating line g feeds
    /// the same NAND as the alternating input a — condition D's archetype.
    fn dominance_example() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.nand(&[a, b]);
        let f = c.nand(&[g, a]);
        c.mark_output("f", f);
        (c, g, f)
    }

    fn alternating_flags(c: &Circuit) -> Vec<bool> {
        all_node_tts(c)
            .iter()
            .map(scal_logic::Tt::is_self_dual)
            .collect()
    }

    #[test]
    fn condition_a_holds_for_inputs_and_their_inverses() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let na = c.not(a);
        let g = c.and(&[na, b]);
        c.mark_output("f", g);
        let tts = all_node_tts(&c);
        assert!(condition_a(&c, &tts, Site::Stem(a)));
        assert!(condition_a(&c, &tts, Site::Stem(na)));
        assert!(!condition_a(&c, &tts, Site::Stem(g)));
        assert!(condition_a(&c, &tts, Site::Branch { node: g, pin: 0 }));
    }

    #[test]
    fn condition_b_stem_and_branch() {
        let (c, g, f) = dominance_example();
        let s = Structure::new(&c);
        assert!(condition_b(&s, Site::Stem(g), f));
        assert!(condition_b(&s, Site::Branch { node: f, pin: 0 }, f));
    }

    #[test]
    fn condition_b_fails_through_xor() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.xor(&[g, a]);
        c.mark_output("f", f);
        let s = Structure::new(&c);
        assert!(!condition_b(&s, Site::Stem(g), f));
        assert!(!condition_b(&s, Site::Branch { node: f, pin: 0 }, f));
    }

    #[test]
    fn condition_c_uniform_and_nonuniform() {
        let (c, g, f) = dominance_example();
        let s = Structure::new(&c);
        assert!(condition_c(&s, Site::Stem(g), f));

        // Unequal parity reconvergence.
        let mut c2 = Circuit::new();
        let a = c2.input("a");
        let b = c2.input("b");
        let g2 = c2.and(&[a, b]);
        let p1 = c2.and(&[g2, a]);
        let p2 = c2.not(g2);
        let f2 = c2.or(&[p1, p2]);
        c2.mark_output("f", f2);
        let s2 = Structure::new(&c2);
        assert!(!condition_c(&s2, Site::Stem(g2), f2));
        // But each branch individually has definite parity.
        assert!(condition_c(&s2, Site::Branch { node: p1, pin: 0 }, f2));
        assert!(condition_c(&s2, Site::Branch { node: p2, pin: 0 }, f2));
    }

    #[test]
    fn condition_d_requires_alternating_companion() {
        let (c, g, f) = dominance_example();
        let s = Structure::new(&c);
        let alt = alternating_flags(&c);
        assert!(condition_d(&c, &s, &alt, Site::Stem(g), f));
        assert!(condition_d(
            &c,
            &s,
            &alt,
            Site::Branch { node: f, pin: 0 },
            f
        ));
    }

    #[test]
    fn condition_d_fails_without_alternating_companion() {
        // f = NAND(g, h) where both g and h are non-alternating ANDs.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("d");
        let g = c.and(&[a, b]);
        let h = c.and(&[b, d]);
        let f = c.nand(&[g, h]);
        c.mark_output("f", f);
        let s = Structure::new(&c);
        let alt = alternating_flags(&c);
        assert!(!condition_d(&c, &s, &alt, Site::Stem(g), f));
    }

    #[test]
    fn condition_d_fails_on_xor_consumer() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let f = c.xor(&[g, a]);
        c.mark_output("f", f);
        let s = Structure::new(&c);
        let alt = alternating_flags(&c);
        assert!(
            !condition_d(&c, &s, &alt, Site::Stem(g), f),
            "XOR has no dominant input; Theorem 3.9 excludes it"
        );
    }

    #[test]
    fn condition_d_fails_when_stem_fans_out_in_cone() {
        // g feeds two gates of the same cone; masking in one gate does not
        // stop propagation through the other.
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        let p = c.nand(&[g, a]);
        let q = c.nand(&[g, b]);
        let f = c.and(&[p, q]);
        c.mark_output("f", f);
        let s = Structure::new(&c);
        let alt = alternating_flags(&c);
        assert!(!condition_d(&c, &s, &alt, Site::Stem(g), f));
        // …but each branch alone passes.
        assert!(condition_d(
            &c,
            &s,
            &alt,
            Site::Branch { node: p, pin: 0 },
            f
        ));
        assert!(condition_d(
            &c,
            &s,
            &alt,
            Site::Branch { node: q, pin: 0 },
            f
        ));
    }
}
