//! Algorithm 3.1: the complete per-line self-checking decision procedure.

use crate::exact::{global_violation_minterms, ExactSweep};
use crate::structural::{condition_a, condition_b, condition_c, condition_d};
use crate::AnalysisError;
use scal_faults::enumerate_faults;
use scal_logic::Tt;
use scal_netlist::{Circuit, Site, Structure};
use std::collections::BTreeSet;

/// Maximum primary-input count for exhaustive analysis.
pub(crate) const MAX_ANALYSIS_INPUTS: usize = 16;

/// Per-(line, output) record of which of Algorithm 3.1's conditions hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputConditions {
    /// Index of the output (into [`Circuit::outputs`]).
    pub output: usize,
    /// Condition A — the line alternates (Theorem 3.6).
    pub a: bool,
    /// Condition B — fanout-free unate path (Theorem 3.7).
    pub b: bool,
    /// Condition C — uniform path parity (Theorem 3.8).
    pub c: bool,
    /// Condition D — standard-gate dominance (Theorem 3.9).
    pub d: bool,
    /// Condition E — the exact equation of Corollary 3.1.
    pub e: bool,
}

impl OutputConditions {
    /// `true` iff at least one condition certifies the line for this output.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.a || self.b || self.c || self.d || self.e
    }

    /// First passing condition as a letter, for report printing
    /// (`'A'`…`'E'`), or `'-'`.
    #[must_use]
    pub fn witness(&self) -> char {
        if self.a {
            'A'
        } else if self.b {
            'B'
        } else if self.c {
            'C'
        } else if self.d {
            'D'
        } else if self.e {
            'E'
        } else {
            '-'
        }
    }
}

/// The verdict for one line of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineReport {
    /// The line.
    pub site: Site,
    /// Conditions per output whose cone contains the line.
    pub outputs: Vec<OutputConditions>,
    /// Theorem 3.4: neither stuck value is observable.
    pub redundant: bool,
    /// Stuck-at-0 is unobservable on every output.
    pub untestable_s0: bool,
    /// Stuck-at-1 is unobservable on every output.
    pub untestable_s1: bool,
    /// The line failed the single-output conditions on some output, so the
    /// multiple-output relaxation had to be consulted.
    pub needs_multi_output: bool,
    /// Corollary 3.2's global check passed (meaningful when
    /// `needs_multi_output`).
    pub multi_output_ok: bool,
    /// No stuck value ever produces an undetected wrong code word.
    pub fault_secure: bool,
}

impl LineReport {
    /// The network is self-checking with respect to this line.
    #[must_use]
    pub fn self_checking(&self) -> bool {
        self.fault_secure && !self.redundant
    }
}

/// The result of running Algorithm 3.1 on a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkReport {
    /// One report per analysed line.
    pub lines: Vec<LineReport>,
    /// Lines that defeat self-checking.
    pub offending: Vec<Site>,
    /// The network-level verdict: every line fault-secure and irredundant.
    pub self_checking: bool,
}

impl NetworkReport {
    /// Report for a specific line, if analysed.
    #[must_use]
    pub fn line(&self, site: Site) -> Option<&LineReport> {
        self.lines.iter().find(|l| l.site == site)
    }
}

/// Runs Algorithm 3.1 on a combinational alternating network.
///
/// Prerequisites checked up front: the circuit validates, is combinational,
/// has at most 16 inputs, and every output realizes a self-dual function
/// (Theorem 2.1 — otherwise it is not an alternating network at all).
///
/// # Errors
///
/// Returns an [`AnalysisError`] if a prerequisite fails.
pub fn analyze(circuit: &Circuit) -> Result<NetworkReport, AnalysisError> {
    circuit.validate()?;
    if circuit.is_sequential() {
        return Err(AnalysisError::Sequential);
    }
    let n = circuit.inputs().len();
    if n > MAX_ANALYSIS_INPUTS {
        return Err(AnalysisError::TooWide { inputs: n });
    }

    let mut sweep = ExactSweep::new(circuit);
    let node_tts = sweep.all_node_tts();
    for (j, out) in circuit.outputs().iter().enumerate() {
        if !node_tts[out.node.index()].is_self_dual() {
            return Err(AnalysisError::NotSelfDual { output: j });
        }
    }

    let structure = Structure::new(circuit);
    let alternating: Vec<bool> = node_tts.iter().map(Tt::is_self_dual).collect();
    let output_cones: Vec<Vec<bool>> = circuit
        .outputs()
        .iter()
        .map(|o| structure.cone(o.node))
        .collect();

    // The line universe: one entry per distinct fault site (both stuck
    // values are analysed inside line_functions).
    let sites: BTreeSet<Site> = enumerate_faults(circuit)
        .into_iter()
        .map(|f| f.site)
        .collect();

    let mut lines = Vec::new();
    let mut offending = Vec::new();

    for site in sites {
        let funcs = sweep.line_functions(circuit, &node_tts, site);
        let redundant = funcs.redundant();
        let untestable_s0 = funcs.unobservable(false);
        let untestable_s1 = funcs.unobservable(true);

        // Which outputs does the line reach?
        let anchor = match site {
            Site::Stem(s) => s,
            Site::Branch { node, .. } => node,
        };
        let mut outputs = Vec::new();
        for (j, out) in circuit.outputs().iter().enumerate() {
            if !output_cones[j][anchor.index()] {
                continue;
            }
            let cond = OutputConditions {
                output: j,
                a: condition_a(circuit, &node_tts, site),
                b: condition_b(&structure, site, out.node),
                c: condition_c(&structure, site, out.node),
                d: condition_d(circuit, &structure, &alternating, site, out.node),
                e: funcs.condition_e(j),
            };
            outputs.push(cond);
        }

        let single_output_ok = outputs.iter().all(OutputConditions::passes);
        let needs_multi_output = !single_output_ok;
        let (v0, v1) = if needs_multi_output {
            global_violation_minterms(&funcs)
        } else {
            (Tt::zero(n), Tt::zero(n))
        };
        let multi_output_ok = v0.is_zero() && v1.is_zero();
        let fault_secure = single_output_ok || multi_output_ok;

        let report = LineReport {
            site,
            outputs,
            redundant,
            untestable_s0,
            untestable_s1,
            needs_multi_output,
            multi_output_ok,
            fault_secure,
        };
        if !report.self_checking() {
            offending.push(site);
        }
        lines.push(report);
    }

    let self_checking = offending.is_empty();
    Ok(NetworkReport {
        lines,
        offending,
        self_checking,
    })
}

/// Convenience: the sites Algorithm 3.1 analyses for a circuit.
#[must_use]
pub fn analysis_sites(circuit: &Circuit) -> Vec<Site> {
    let set: BTreeSet<Site> = enumerate_faults(circuit)
        .into_iter()
        .map(|f| f.site)
        .collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scal_faults::Campaign;

    fn maj_nand() -> Circuit {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let nab = c.nand(&[a, b]);
        let nac = c.nand(&[a, d]);
        let nbc = c.nand(&[b, d]);
        let f = c.nand(&[nab, nac, nbc]);
        c.mark_output("f", f);
        c
    }

    /// Reconstructed Fig. 3.4-style multi-output network (see crate docs):
    /// F1 = MAJ(ā,b,c), F2 = a⊕b⊕c, F3 = MAJ(a,b,c), with a NAND stem shared
    /// between F2 and F3 ("line 9") and an unequal-parity XOR stem private
    /// to F2 ("line 20").
    fn fig3_4_like() -> (Circuit, Site, Site) {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let d = c.input("c");
        let n1 = c.nand(&[a, b]); // "line 9"
        let ta = c.nand(&[a, n1]);
        let tb = c.nand(&[b, n1]);
        let x = c.nand(&[ta, tb]); // "line 20": x = a⊕b
        let nd = c.not(d);
        let nx = c.not(x);
        let t1 = c.and(&[x, nd]);
        let t2 = c.and(&[nx, d]);
        let f2 = c.or(&[t1, t2]); // F2 = a⊕b⊕c
        let nad = c.nand(&[a, d]);
        let nbd = c.nand(&[b, d]);
        let f3 = c.nand(&[n1, nad, nbd]); // F3 = MAJ(a,b,c)
        let na = c.not(a);
        let m1 = c.nand(&[na, b]);
        let m2 = c.nand(&[na, d]);
        let m3 = c.nand(&[b, d]);
        let f1 = c.nand(&[m1, m2, m3]); // F1 = MAJ(ā,b,c)
        c.mark_output("f1", f1);
        c.mark_output("f2", f2);
        c.mark_output("f3", f3);
        (c, Site::Stem(n1), Site::Stem(x))
    }

    #[test]
    fn two_level_network_fully_self_checking() {
        let report = analyze(&maj_nand()).unwrap();
        assert!(report.self_checking);
        assert!(report.offending.is_empty());
        // Every line certified by a structural condition or E.
        for line in &report.lines {
            assert!(line.fault_secure);
            assert!(!line.redundant);
        }
    }

    #[test]
    fn analysis_agrees_with_exhaustive_campaign() {
        for (circuit, _, _) in [fig3_4_like()] {
            let report = analyze(&circuit).unwrap();
            let campaign = Campaign::new(&circuit).run().unwrap().results;
            // Per-site fault security must match exactly.
            for line in &report.lines {
                let sim_secure = campaign
                    .iter()
                    .filter(|r| r.fault.site == line.site)
                    .all(|r| r.fault_secure());
                assert_eq!(
                    line.fault_secure, sim_secure,
                    "analytic vs simulated disagreement at {}",
                    line.site
                );
            }
        }
    }

    #[test]
    fn fig3_4_like_fails_only_at_line_20() {
        let (c, line9, line20) = fig3_4_like();
        let report = analyze(&c).unwrap();
        assert!(!report.self_checking);
        // line 9 is rescued by the multiple-output condition…
        let l9 = report.line(line9).unwrap();
        assert!(l9.needs_multi_output);
        assert!(l9.multi_output_ok);
        assert!(l9.fault_secure);
        // …line 20 is not.
        let l20 = report.line(line20).unwrap();
        assert!(l20.needs_multi_output);
        assert!(!l20.multi_output_ok);
        assert!(!l20.fault_secure);
        assert!(report.offending.contains(&line20));
    }

    #[test]
    fn structural_conditions_imply_exact_condition() {
        // Soundness of Theorems 3.6–3.9: whenever A/B/C/D certifies a line
        // for an output, condition E must also hold for that output.
        let (c, _, _) = fig3_4_like();
        let report = analyze(&c).unwrap();
        for line in &report.lines {
            for oc in &line.outputs {
                if oc.a || oc.b || oc.c || oc.d {
                    assert!(
                        oc.e,
                        "structural condition passed but E failed at {} output {}",
                        line.site, oc.output
                    );
                }
            }
        }
    }

    #[test]
    fn non_self_dual_network_rejected() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let g = c.and(&[a, b]);
        c.mark_output("f", g);
        assert_eq!(analyze(&c), Err(AnalysisError::NotSelfDual { output: 0 }));
    }

    #[test]
    fn sequential_network_rejected() {
        let mut c = Circuit::new();
        let ff = c.dff(false);
        let n = c.not(ff);
        c.connect_dff(ff, n);
        c.mark_output("q", ff);
        assert_eq!(analyze(&c), Err(AnalysisError::Sequential));
    }

    #[test]
    fn witnesses_are_printable() {
        let report = analyze(&maj_nand()).unwrap();
        for line in &report.lines {
            for oc in &line.outputs {
                assert!(matches!(oc.witness(), 'A'..='E'));
            }
        }
    }
}
