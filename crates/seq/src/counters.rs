//! Multi-bit-input machines: an up/down counter exercising the synthesis
//! and SCAL-conversion paths with input alphabets wider than one bit.

use crate::StateMachine;

/// Command alphabet of the [`up_down_counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterCmd {
    /// Keep the count.
    Hold,
    /// Increment modulo the modulus.
    Up,
    /// Decrement modulo the modulus.
    Down,
    /// Return to zero.
    Reset,
}

impl CounterCmd {
    /// The 2-bit input symbol encoding.
    #[must_use]
    pub fn symbol(self) -> u32 {
        match self {
            CounterCmd::Hold => 0b00,
            CounterCmd::Up => 0b01,
            CounterCmd::Down => 0b10,
            CounterCmd::Reset => 0b11,
        }
    }
}

/// A modulo-`modulus` up/down counter with a 2-bit command input; outputs
/// the state bits.
///
/// # Panics
///
/// Panics if `modulus < 2 || modulus > 16`.
#[must_use]
pub fn up_down_counter(modulus: usize) -> StateMachine {
    assert!((2..=16).contains(&modulus));
    let bits = usize::BITS as usize - (modulus - 1).leading_zeros() as usize;
    let mut m = StateMachine::new(format!("updown-{modulus}"), modulus, 2, bits);
    for s in 0..modulus {
        let out: Vec<bool> = (0..bits).map(|k| (s >> k) & 1 == 1).collect();
        m.set(s, CounterCmd::Hold.symbol(), s, &out);
        m.set(s, CounterCmd::Up.symbol(), (s + 1) % modulus, &out);
        m.set(
            s,
            CounterCmd::Down.symbol(),
            (s + modulus - 1) % modulus,
            &out,
        );
        m.set(s, CounterCmd::Reset.symbol(), 0, &out);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual_ff::AltSeqDriver;
    use crate::synth::synthesize;
    use crate::{code_conversion_machine, dual_ff_machine};
    use scal_netlist::Sim;
    use CounterCmd::{Down, Hold, Reset, Up};

    fn script() -> Vec<CounterCmd> {
        vec![
            Up, Up, Up, Hold, Down, Up, Up, Up, Up, Reset, Up, Down, Down, Up, Up, Hold,
        ]
    }

    fn golden_counts(modulus: usize, cmds: &[CounterCmd]) -> Vec<usize> {
        let mut s = 0usize;
        cmds.iter()
            .map(|c| {
                let out = s;
                s = match c {
                    Hold => s,
                    Up => (s + 1) % modulus,
                    Down => (s + modulus - 1) % modulus,
                    Reset => 0,
                };
                out
            })
            .collect()
    }

    fn outputs_to_count(out: &[bool], bits: usize) -> usize {
        (0..bits).fold(0, |acc, k| acc | (usize::from(out[k]) << k))
    }

    #[test]
    fn machine_counts_correctly() {
        for modulus in [2usize, 3, 5, 8] {
            let m = up_down_counter(modulus);
            let symbols: Vec<u32> = script().iter().map(|c| c.symbol()).collect();
            let golden = golden_counts(modulus, &script());
            for (i, out) in m.run(&symbols).iter().enumerate() {
                assert_eq!(
                    outputs_to_count(out, m.output_bits()),
                    golden[i],
                    "modulus {modulus} step {i}"
                );
            }
        }
    }

    #[test]
    fn synthesized_counter_matches() {
        let m = up_down_counter(5);
        let c = synthesize(&m);
        let mut sim = Sim::new(&c);
        let golden = golden_counts(5, &script());
        for (i, cmd) in script().iter().enumerate() {
            let sym = cmd.symbol();
            let ins = [sym & 1 == 1, sym & 2 != 0];
            let out = sim.step(&ins);
            assert_eq!(
                outputs_to_count(&out, m.output_bits()),
                golden[i],
                "step {i}"
            );
        }
    }

    #[test]
    fn both_scal_designs_count_and_alternate() {
        let m = up_down_counter(6);
        let golden = golden_counts(6, &script());
        for scal in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let mut drv = AltSeqDriver::new(&scal);
            for (i, cmd) in script().iter().enumerate() {
                let sym = cmd.symbol();
                let word = [sym & 1 == 1, sym & 2 != 0];
                let (o1, o2) = drv.apply(&word);
                assert_eq!(
                    outputs_to_count(&o1, m.output_bits()),
                    golden[i],
                    "{} step {i}",
                    scal.design
                );
                for k in scal.monitored() {
                    assert_ne!(o1[k], o2[k], "{} line {k} step {i}", scal.design);
                }
            }
        }
    }

    #[test]
    fn translator_memory_advantage_holds_for_wide_machines() {
        let m = up_down_counter(16); // 4 state bits
        let dff = dual_ff_machine(&m).circuit.cost().flip_flops;
        let tr = code_conversion_machine(&m).circuit.cost().flip_flops;
        assert_eq!(dff, 8);
        assert_eq!(tr, 5);
    }

    #[test]
    fn sequential_fault_security_on_a_two_bit_input_machine() {
        let m = up_down_counter(4);
        let scal = code_conversion_machine(&m);
        let words: Vec<Vec<bool>> = script()
            .iter()
            .map(|c| {
                let s = c.symbol();
                vec![s & 1 == 1, s & 2 != 0]
            })
            .collect();
        let mut golden = Vec::new();
        {
            let mut drv = AltSeqDriver::new(&scal);
            for w in &words {
                golden.push(drv.apply(w));
            }
        }
        let (cf, cg) = scal.code_pair.unwrap();
        for fault in scal.checkable_faults() {
            let mut drv = AltSeqDriver::new(&scal);
            drv.attach(fault.to_override());
            for (i, w) in words.iter().enumerate() {
                let (o1, o2) = drv.apply(w);
                let mon = scal.monitored();
                let wrong = mon
                    .clone()
                    .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
                if wrong {
                    let flagged =
                        mon.clone().any(|k| o1[k] == o2[k]) || o1[cf] == o1[cg] || o2[cf] == o2[cg];
                    assert!(flagged, "fault {fault} slipped at step {i}");
                    break;
                }
            }
        }
    }
}
