//! Synthesis: state machine → gate-level netlist, and the self-dual core.

use crate::StateMachine;
use scal_logic::{qm, self_dualize, Tt};
use scal_netlist::{Circuit, GateKind, NodeId};

/// Builds the truth tables of a machine's combinational logic under the
/// natural binary state assignment: variables are `input_bits` input lines
/// (low indices) followed by `state_bits` present-state lines; the returned
/// tables are `(outputs Z, next-state Y)`.
///
/// Unused state codes are don't-cares resolved to "go to state 0 / output 0"
/// (completeness keeps the netlist deterministic).
#[must_use]
pub fn machine_tables(m: &StateMachine) -> (Vec<Tt>, Vec<Tt>) {
    let ib = m.input_bits();
    let sb = m.state_bits();
    let n = ib + sb;
    let eval = |mnt: u32| -> (usize, u32) {
        let symbol = mnt & ((1 << ib) - 1);
        let state = (mnt >> ib) as usize;
        (state, symbol)
    };
    let z: Vec<Tt> = (0..m.output_bits())
        .map(|k| {
            Tt::from_fn(n, |mnt| {
                let (state, symbol) = eval(mnt);
                if state < m.num_states() {
                    m.output(state, symbol)[k]
                } else {
                    false
                }
            })
        })
        .collect();
    let y: Vec<Tt> = (0..sb)
        .map(|k| {
            Tt::from_fn(n, |mnt| {
                let (state, symbol) = eval(mnt);
                if state < m.num_states() {
                    (m.next(state, symbol) >> k) & 1 == 1
                } else {
                    false
                }
            })
        })
        .collect();
    (z, y)
}

/// Synthesizes the machine as a conventional netlist (Fig. 4.1a): two-level
/// NAND-NAND combinational logic plus one D flip-flop per state bit.
///
/// Inputs: the machine's input lines. Outputs: `z0..` then the feedback
/// lines `y0..` (exposed for checking).
#[must_use]
pub fn synthesize(m: &StateMachine) -> Circuit {
    let (z_tts, y_tts) = machine_tables(m);
    let ib = m.input_bits();
    let sb = m.state_bits();
    let mut c = Circuit::new();
    let inputs: Vec<NodeId> = (0..ib).map(|i| c.input(format!("x{i}"))).collect();
    let dffs: Vec<NodeId> = (0..sb).map(|_| c.dff(false)).collect();
    let mut vars = inputs;
    vars.extend(&dffs);
    let mut inverters: Vec<Option<NodeId>> = vec![None; vars.len()];
    let realize = |c: &mut Circuit, tt: &Tt, inverters: &mut Vec<Option<NodeId>>| {
        realize_sop(c, &vars, inverters, tt)
    };
    let z_nodes: Vec<NodeId> = z_tts
        .iter()
        .map(|tt| realize(&mut c, tt, &mut inverters))
        .collect();
    let y_nodes: Vec<NodeId> = y_tts
        .iter()
        .map(|tt| realize(&mut c, tt, &mut inverters))
        .collect();
    for (k, &z) in z_nodes.iter().enumerate() {
        c.mark_output(format!("z{k}"), z);
    }
    for (k, (&y, &ff)) in y_nodes.iter().zip(&dffs).enumerate() {
        c.connect_dff(ff, y);
        c.mark_output(format!("y{k}"), y);
    }
    c
}

/// Builds the *self-dual combinational core* used by both SCAL designs: each
/// of the machine's combinational functions, self-dualized with a trailing
/// period-clock variable `φ` (Yamamoto), realized as shared-inverter
/// two-level NAND logic.
///
/// Inputs: `x0.. , y0.. , phi` (purely combinational — the flip-flops are
/// added by the surrounding design). Outputs: `z0..` then `Y0..`.
#[must_use]
pub fn self_dual_core(m: &StateMachine) -> Circuit {
    let (z_tts, y_tts) = machine_tables(m);
    let ib = m.input_bits();
    let sb = m.state_bits();
    let mut c = Circuit::new();
    let mut vars: Vec<NodeId> = (0..ib).map(|i| c.input(format!("x{i}"))).collect();
    vars.extend((0..sb).map(|i| c.input(format!("y{i}"))));
    vars.push(c.input("phi"));
    let mut inverters: Vec<Option<NodeId>> = vec![None; vars.len()];
    let mut nodes = Vec::new();
    for tt in z_tts.iter().chain(&y_tts) {
        let sd = self_dualize(tt);
        nodes.push(realize_sop(&mut c, &vars, &mut inverters, &sd));
    }
    for (k, &node) in nodes.iter().take(z_tts.len()).enumerate() {
        c.mark_output(format!("z{k}"), node);
    }
    for (k, &node) in nodes.iter().skip(z_tts.len()).enumerate() {
        c.mark_output(format!("Y{k}"), node);
    }
    c
}

/// Two-level NAND-NAND realization with a shared, lazily-built inverter
/// rail.
pub(crate) fn realize_sop(
    c: &mut Circuit,
    vars: &[NodeId],
    inverters: &mut [Option<NodeId>],
    tt: &Tt,
) -> NodeId {
    assert_eq!(vars.len(), tt.nvars());
    if tt.is_zero() {
        return c.constant(false);
    }
    if tt.is_one() {
        return c.constant(true);
    }
    let cover = qm::minimize(tt, None);
    let mut term_nodes = Vec::new();
    for cube in &cover {
        let mut literals = Vec::new();
        for v in 0..tt.nvars() {
            let bit = 1u32 << v;
            if cube.mask() & bit != 0 {
                let lit = if cube.value() & bit != 0 {
                    vars[v]
                } else {
                    match inverters[v] {
                        Some(n) => n,
                        None => {
                            let n = c.not(vars[v]);
                            inverters[v] = Some(n);
                            n
                        }
                    }
                };
                literals.push(lit);
            }
        }
        term_nodes.push(if literals.len() == 1 {
            c.gate(GateKind::Not, &[literals[0]])
        } else {
            c.nand(&literals)
        });
    }
    if term_nodes.len() == 1 {
        c.not(term_nodes[0])
    } else {
        c.nand(&term_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kohavi::kohavi_0101;
    use scal_netlist::Sim;

    #[test]
    fn synthesized_kohavi_matches_machine() {
        let m = kohavi_0101();
        let c = synthesize(&m);
        let mut sim = Sim::new(&c);
        let seq = [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1];
        let golden = m.run(&seq);
        for (i, &s) in seq.iter().enumerate() {
            let out = sim.step(&[s == 1]);
            assert_eq!(out[0], golden[i][0], "step {i}");
        }
    }

    #[test]
    fn self_dual_core_outputs_are_self_dual() {
        let m = kohavi_0101();
        let core = self_dual_core(&m);
        assert!(!core.is_sequential());
        for tt in core.output_tts() {
            assert!(tt.is_self_dual());
        }
    }

    #[test]
    fn self_dual_core_restricts_to_machine_logic() {
        let m = kohavi_0101();
        let core = self_dual_core(&m);
        let (z_tts, y_tts) = machine_tables(&m);
        let tts = core.output_tts();
        let n = m.input_bits() + m.state_bits();
        for (k, want) in z_tts.iter().chain(&y_tts).enumerate() {
            for mnt in 0..(1u32 << n) {
                assert_eq!(tts[k].eval(mnt), want.eval(mnt), "fn {k} minterm {mnt}");
            }
        }
    }

    #[test]
    fn machine_tables_shapes() {
        let m = kohavi_0101();
        let (z, y) = machine_tables(&m);
        assert_eq!(z.len(), 1);
        assert_eq!(y.len(), 2);
        assert_eq!(z[0].nvars(), 3);
    }

    #[test]
    fn synthesize_counts_are_sane() {
        let m = kohavi_0101();
        let c = synthesize(&m);
        let cost = c.cost();
        assert_eq!(cost.flip_flops, 2);
        assert!(cost.gates >= 5, "got {}", cost.gates);
    }
}
