//! Sequential fault campaigns: the dynamic-testing counterpart of
//! `scal_faults::run_campaign` for SCAL machines.
//!
//! A sequential SCAL machine is judged over a *driven input sequence*: for
//! every fault, at the first word where any monitored line deviates from the
//! golden trace, some check (a non-alternating monitored line, or a non-code
//! check pair) must fire — otherwise a wrong code word was accepted, a
//! fault-secure violation.

use crate::dual_ff::{AltSeqDriver, ScalMachine};
use scal_engine::{par_map, CompiledCircuit, CompiledSim};
use scal_faults::Fault;

/// Outcome of one fault under a driven sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The fault never changed any monitored value over the run.
    Dormant,
    /// The fault's first manifestation was accompanied by a check flag.
    Detected {
        /// Word index of the first manifestation.
        word: usize,
    },
    /// The fault produced a wrong code word with no flag — a violation.
    Violation {
        /// Word index of the violation.
        word: usize,
    },
}

/// Summary of a sequential campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqCampaign {
    /// Per-fault outcomes, in [`ScalMachine::checkable_faults`] order.
    pub outcomes: Vec<(Fault, SeqOutcome)>,
}

impl SeqCampaign {
    /// Number of faults with each outcome: `(dormant, detected, violations)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for (_, o) in &self.outcomes {
            match o {
                SeqOutcome::Dormant => t.0 += 1,
                SeqOutcome::Detected { .. } => t.1 += 1,
                SeqOutcome::Violation { .. } => t.2 += 1,
            }
        }
        t
    }

    /// `true` iff no fault slipped a wrong code word.
    #[must_use]
    pub fn fault_secure(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| !matches!(o, SeqOutcome::Violation { .. }))
    }
}

/// Classifies one fault's trace against the golden trace: outcome at the
/// first word where any monitored line deviates.
fn classify_trace(
    machine: &ScalMachine,
    golden: &[(Vec<bool>, Vec<bool>)],
    mut apply: impl FnMut(&[bool]) -> (Vec<bool>, Vec<bool>),
    words: &[Vec<bool>],
) -> SeqOutcome {
    for (i, w) in words.iter().enumerate() {
        let (o1, o2) = apply(w);
        let mon = machine.monitored();
        let wrong = mon
            .clone()
            .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
        if wrong {
            let nonalt = mon.clone().any(|k| o1[k] == o2[k]);
            let code_bad = machine
                .code_pair
                .map(|(f, g)| o1[f] == o1[g] || o2[f] == o2[g])
                .unwrap_or(false);
            return if nonalt || code_bad {
                SeqOutcome::Detected { word: i }
            } else {
                SeqOutcome::Violation { word: i }
            };
        }
    }
    SeqOutcome::Dormant
}

/// Applies one information word over two alternating periods of a compiled
/// simulator (`(X‖0, X̄‖1)`), mirroring [`AltSeqDriver::apply`].
fn apply_compiled(sim: &mut CompiledSim<'_>, word: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let mut p1: Vec<bool> = word.to_vec();
    p1.push(false); // φ = 0
    let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
    p2.push(true); // φ = 1
    let o1 = sim.step(&p1);
    let o2 = sim.step(&p2);
    (o1, o2)
}

/// Runs every checkable fault of `machine` against the driven `words`
/// (each an external-input vector), comparing monitored lines and check
/// pairs against the fault-free golden trace.
///
/// The machine is compiled once ([`scal_engine::CompiledCircuit`]) and the
/// per-fault re-simulations fan out across the engine's worker pool; the
/// original graph-walking implementation survives as
/// [`run_seq_campaign_scalar`] and serves as a differential oracle.
///
/// # Panics
///
/// Panics if a word's width mismatches the machine's external inputs.
#[must_use]
pub fn run_seq_campaign(machine: &ScalMachine, words: &[Vec<bool>]) -> SeqCampaign {
    let compiled = CompiledCircuit::compile(&machine.circuit);
    let mut golden = Vec::with_capacity(words.len());
    {
        let mut sim = CompiledSim::new(&compiled);
        for w in words {
            golden.push(apply_compiled(&mut sim, w));
        }
    }
    let faults = machine.checkable_faults();
    let outcomes = par_map(&faults, 0, |_, &fault| {
        let mut sim = CompiledSim::new(&compiled);
        sim.attach(&[fault.to_override()]);
        classify_trace(machine, &golden, |w| apply_compiled(&mut sim, w), words)
    });
    SeqCampaign {
        outcomes: faults.into_iter().zip(outcomes).collect(),
    }
}

/// The original graph-walking sequential campaign, retained as the
/// differential oracle for [`run_seq_campaign`].
///
/// # Panics
///
/// Panics if a word's width mismatches the machine's external inputs.
#[must_use]
pub fn run_seq_campaign_scalar(machine: &ScalMachine, words: &[Vec<bool>]) -> SeqCampaign {
    let mut golden = Vec::with_capacity(words.len());
    {
        let mut drv = AltSeqDriver::new(machine);
        for w in words {
            golden.push(drv.apply(w));
        }
    }
    let outcomes = machine
        .checkable_faults()
        .into_iter()
        .map(|fault| {
            let mut drv = AltSeqDriver::new(machine);
            drv.attach(fault.to_override());
            let outcome = classify_trace(machine, &golden, |w| drv.apply(w), words);
            (fault, outcome)
        })
        .collect();
    SeqCampaign { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::up_down_counter;
    use crate::kohavi::kohavi_0101;
    use crate::{code_conversion_machine, dual_ff_machine};

    fn bit_words(seq: &[u32]) -> Vec<Vec<bool>> {
        seq.iter().map(|&s| vec![s == 1]).collect()
    }

    #[test]
    fn kohavi_designs_are_sequentially_fault_secure() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = run_seq_campaign(&machine, &words);
            assert!(campaign.fault_secure(), "{}", machine.design);
            let (dormant, detected, violations) = campaign.tally();
            assert_eq!(violations, 0);
            assert!(detected > 0);
            // A short drive leaves some faults unexercised — that is the
            // static-test gap `scal_analysis::generate_tests` fills.
            let _ = dormant;
        }
    }

    #[test]
    fn counter_campaign_is_fault_secure() {
        use crate::counters::CounterCmd::{Down, Hold, Up};
        let m = up_down_counter(4);
        let words: Vec<Vec<bool>> = [Up, Up, Down, Hold, Up, Up, Up, Down]
            .iter()
            .map(|c| {
                let s = c.symbol();
                vec![s & 1 == 1, s & 2 != 0]
            })
            .collect();
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = run_seq_campaign(&machine, &words);
            assert!(campaign.fault_secure(), "{}", machine.design);
        }
    }

    #[test]
    fn engine_campaign_matches_scalar_oracle() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            assert_eq!(
                run_seq_campaign(&machine, &words),
                run_seq_campaign_scalar(&machine, &words),
                "{}",
                machine.design
            );
        }
    }

    #[test]
    fn longer_drives_detect_more_faults() {
        let m = kohavi_0101();
        let machine = code_conversion_machine(&m);
        let short = run_seq_campaign(&machine, &bit_words(&[0, 1]));
        let long = run_seq_campaign(
            &machine,
            &bit_words(&[0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1]),
        );
        assert!(long.tally().1 >= short.tally().1);
        assert!(long.tally().0 <= short.tally().0);
    }
}
