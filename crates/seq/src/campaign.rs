//! Sequential fault campaigns: the dynamic-testing counterpart of
//! `scal_faults::Campaign` for SCAL machines.
//!
//! A sequential SCAL machine is judged over a *driven input sequence*: for
//! every fault, at the first word where any monitored line deviates from the
//! golden trace, some check (a non-alternating monitored line, or a non-code
//! check pair) must fire — otherwise a wrong code word was accepted, a
//! fault-secure violation.
//!
//! [`Campaign`] is the builder twin of `scal_faults::Campaign`: it forwards a
//! [`CampaignObserver`] through compile / golden / fault-sim / merge phases
//! (per-fault events replayed in fault order at merge, worker-attributed)
//! and honors a [`CancelToken`] at fault boundaries, returning the completed
//! fault-ordered prefix. On the engine backend faults default to
//! cone-restricted replay ([`EvalMode::Cone`]): the golden run is captured
//! once as a [`GoldenTrace`], and each fault replays only its fanout cone
//! (widened across the D→Q arc) against the cached golden slots via
//! [`ConeSim`]. [`EvalMode::Full`] re-simulates the whole machine per fault
//! and serves as the differential oracle.

use crate::dual_ff::{AltSeqDriver, ScalMachine};
use scal_engine::{
    par_map_cancellable, CompiledCircuit, CompiledSim, ConeSim, ConeSimStats, EngineError,
    EvalMode, GoldenTrace,
};
use scal_faults::Fault;
use scal_obs::{
    CampaignEvent, CampaignObserver, CancelToken, CoverageObserver, MultiObserver, Phase,
};
use std::time::{Duration, Instant};

/// Outcome of one fault under a driven sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The fault never changed any monitored value over the run.
    Dormant,
    /// The fault's first manifestation was accompanied by a check flag.
    Detected {
        /// Word index of the first manifestation.
        word: usize,
    },
    /// The fault produced a wrong code word with no flag — a violation.
    Violation {
        /// Word index of the violation.
        word: usize,
    },
}

/// Summary of a sequential campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqCampaign {
    /// Per-fault outcomes, in [`ScalMachine::checkable_faults`] order; a
    /// contiguous prefix of that list when [`SeqCampaign::cancelled`].
    pub outcomes: Vec<(Fault, SeqOutcome)>,
    /// `true` iff a [`CancelToken`] stopped the run before every fault was
    /// simulated.
    pub cancelled: bool,
}

impl SeqCampaign {
    /// Number of faults with each outcome: `(dormant, detected, violations)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for (_, o) in &self.outcomes {
            match o {
                SeqOutcome::Dormant => t.0 += 1,
                SeqOutcome::Detected { .. } => t.1 += 1,
                SeqOutcome::Violation { .. } => t.2 += 1,
            }
        }
        t
    }

    /// `true` iff no fault slipped a wrong code word.
    #[must_use]
    pub fn fault_secure(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| !matches!(o, SeqOutcome::Violation { .. }))
    }
}

/// Classifies one fault's trace against the golden trace: outcome at the
/// first word where any monitored line deviates.
fn classify_trace(
    machine: &ScalMachine,
    golden: &[(Vec<bool>, Vec<bool>)],
    mut apply: impl FnMut(&[bool]) -> (Vec<bool>, Vec<bool>),
    words: &[Vec<bool>],
) -> SeqOutcome {
    for (i, w) in words.iter().enumerate() {
        let (o1, o2) = apply(w);
        let mon = machine.monitored();
        let wrong = mon
            .clone()
            .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
        if wrong {
            let nonalt = mon.clone().any(|k| o1[k] == o2[k]);
            let code_bad = machine
                .code_pair
                .map(|(f, g)| o1[f] == o1[g] || o2[f] == o2[g])
                .unwrap_or(false);
            return if nonalt || code_bad {
                SeqOutcome::Detected { word: i }
            } else {
                SeqOutcome::Violation { word: i }
            };
        }
    }
    SeqOutcome::Dormant
}

/// Driven words (alternating pairs) a fault's classification consumed: a
/// trace stops at the word that classified it.
fn words_consumed(outcome: &SeqOutcome, total: usize) -> usize {
    match outcome {
        SeqOutcome::Dormant => total,
        SeqOutcome::Detected { word } | SeqOutcome::Violation { word } => word + 1,
    }
}

/// Applies one information word over two alternating periods of a compiled
/// simulator (`(X‖0, X̄‖1)`), mirroring [`AltSeqDriver::apply`].
fn apply_compiled(sim: &mut CompiledSim<'_>, word: &[bool]) -> (Vec<bool>, Vec<bool>) {
    let mut p1: Vec<bool> = word.to_vec();
    p1.push(false); // φ = 0
    let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
    p2.push(true); // φ = 1
    let o1 = sim.step(&p1);
    let o2 = sim.step(&p2);
    (o1, o2)
}

/// Which simulation backend a sequential [`Campaign`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Compiled machine with worker fan-out (default).
    Engine,
    /// The original graph-walking [`AltSeqDriver`] oracle.
    Scalar,
}

/// Builder for a sequential fault campaign over a [`ScalMachine`] and a
/// driven word sequence — the `scal-seq` twin of `scal_faults::Campaign`.
pub struct Campaign<'a> {
    machine: &'a ScalMachine,
    words: &'a [Vec<bool>],
    threads: usize,
    observer: Option<&'a dyn CampaignObserver>,
    coverage: Option<&'a CoverageObserver>,
    cancel: Option<&'a CancelToken>,
    backend: Backend,
    eval_mode: EvalMode,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("machine", &self.machine.design)
            .field("words", &self.words.len())
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .field("coverage", &self.coverage.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("backend", &self.backend)
            .field("eval_mode", &self.eval_mode)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// Starts a campaign driving `machine` with `words` (each an
    /// external-input vector): compiled engine backend, auto thread count,
    /// no observer, no cancellation.
    #[must_use]
    pub fn new(machine: &'a ScalMachine, words: &'a [Vec<bool>]) -> Self {
        Campaign {
            machine,
            words,
            threads: 0,
            observer: None,
            coverage: None,
            cancel: None,
            backend: Backend::Engine,
            eval_mode: EvalMode::default(),
        }
    }

    /// Worker-thread count; `0` = auto. The scalar backend is always
    /// single-threaded.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Streams every [`CampaignEvent`] of the run to `observer`.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn CampaignObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builds a per-fault [`scal_obs::CoverageMap`] into `coverage`, labelled
    /// with [`Fault::describe`] line names, alongside any plain
    /// [`Campaign::observer`]. Read `coverage.latest()` after the run; a
    /// record's `first_detected` is the first detecting *word* index of the
    /// driven sequence.
    #[must_use]
    pub fn coverage(mut self, coverage: &'a CoverageObserver) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// Makes the run cancellable through `token`, checked at fault
    /// boundaries; the returned outcomes are then a fault-ordered prefix.
    #[must_use]
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs on the original graph-walking [`AltSeqDriver`] oracle instead of
    /// the compiled machine.
    #[must_use]
    pub fn scalar(mut self) -> Self {
        self.backend = Backend::Scalar;
        self
    }

    /// Selects the per-fault replay strategy on the engine backend:
    /// cone-restricted incremental replay ([`EvalMode::Cone`], the default)
    /// or full re-simulation ([`EvalMode::Full`], the differential oracle).
    /// Both produce identical outcomes; the scalar backend ignores this
    /// knob.
    #[must_use]
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledCircuit::try_compile`] errors on the engine
    /// backend (the scalar oracle never compiles, so it only errors on
    /// future validations).
    ///
    /// # Panics
    ///
    /// Panics if a word's width mismatches the machine's external inputs.
    pub fn run(self) -> Result<SeqCampaign, EngineError> {
        let total_t = Instant::now();
        let faults = self.machine.checkable_faults();
        // Fan out to the plain observer and/or the coverage map; an empty
        // fan-out reports enabled() == false, preserving the fast path.
        let mut fan = MultiObserver::new();
        if let Some(o) = self.observer {
            fan.push(o);
        }
        if let Some(cov) = self.coverage {
            cov.set_labels(
                faults
                    .iter()
                    .map(|f| f.describe(&self.machine.circuit))
                    .collect(),
            );
            fan.push(cov);
        }
        let observer: &dyn CampaignObserver = &fan;
        let obs = observer.enabled();
        if obs {
            observer.on_event(&CampaignEvent::CampaignStart {
                campaign: match self.backend {
                    Backend::Engine => "seq",
                    Backend::Scalar => "seq_scalar",
                },
                faults: faults.len(),
                inputs: self.machine.circuit.inputs().len(),
                outputs: self.machine.circuit.outputs().len(),
                threads: match self.backend {
                    Backend::Engine => self.threads,
                    Backend::Scalar => 1,
                },
            });
            if self.backend == Backend::Engine {
                observer.on_event(&CampaignEvent::EvalMode {
                    mode: self.eval_mode.name(),
                });
            }
        }

        // Compile phase (engine backend only).
        let compiled = match self.backend {
            Backend::Engine => {
                let t = Instant::now();
                if obs {
                    observer.on_event(&CampaignEvent::PhaseStart {
                        phase: Phase::Compile,
                    });
                }
                let compiled = CompiledCircuit::try_compile(&self.machine.circuit)?;
                if obs {
                    observer.on_event(&CampaignEvent::PhaseEnd {
                        phase: Phase::Compile,
                        micros: duration_micros(t.elapsed()),
                    });
                }
                Some(compiled)
            }
            Backend::Scalar => None,
        };

        // Golden trace.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Golden,
            });
        }
        // In cone mode the golden run is captured once with every slot value
        // cached; faulty replays seed their cones from it.
        let cone_trace: Option<GoldenTrace> = match (&compiled, self.eval_mode) {
            (Some(compiled), EvalMode::Cone) => {
                let steps: Vec<Vec<bool>> = self
                    .words
                    .iter()
                    .flat_map(|w| {
                        let mut p1 = w.clone();
                        p1.push(false); // φ = 0
                        let mut p2: Vec<bool> = w.iter().map(|&b| !b).collect();
                        p2.push(true); // φ = 1
                        [p1, p2]
                    })
                    .collect();
                Some(GoldenTrace::capture(compiled, &steps))
            }
            _ => None,
        };
        let golden: Vec<(Vec<bool>, Vec<bool>)> = match (&cone_trace, &compiled) {
            (Some(trace), _) => (0..self.words.len())
                .map(|i| {
                    (
                        trace.outputs(2 * i).to_vec(),
                        trace.outputs(2 * i + 1).to_vec(),
                    )
                })
                .collect(),
            (None, Some(compiled)) => {
                let mut sim = CompiledSim::new(compiled);
                self.words
                    .iter()
                    .map(|w| apply_compiled(&mut sim, w))
                    .collect()
            }
            (None, None) => {
                let mut drv = AltSeqDriver::new(self.machine);
                self.words.iter().map(|w| drv.apply(w)).collect()
            }
        };
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Golden,
                micros: duration_micros(t.elapsed()),
            });
        }

        // Fault simulation, cancellable at fault boundaries. Each worker
        // reports which worker id simulated the fault so the merge replay
        // stays worker-attributed.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::FaultSim,
            });
        }
        let done = std::sync::atomic::AtomicUsize::new(0);
        let sim_one = |worker: usize, fault: &Fault| -> (usize, SeqOutcome, Option<ConeSimStats>) {
            let (outcome, cone_stats) = match (&compiled, &cone_trace) {
                (Some(compiled), Some(trace)) => {
                    // Cone replay: only the fault's fanout cone is
                    // re-evaluated per step, seeded from the cached golden
                    // slots of the trace.
                    let mut sim = ConeSim::new(compiled, &[fault.to_override()]);
                    let outcome = classify_trace(
                        self.machine,
                        &golden,
                        |_w| {
                            let o1 = sim.step(trace);
                            let o2 = sim.step(trace);
                            (o1, o2)
                        },
                        self.words,
                    );
                    let stats = sim.stats();
                    (outcome, Some(stats))
                }
                (Some(compiled), None) => {
                    let mut sim = CompiledSim::new(compiled);
                    sim.attach(&[fault.to_override()]);
                    let outcome = classify_trace(
                        self.machine,
                        &golden,
                        |w| apply_compiled(&mut sim, w),
                        self.words,
                    );
                    (outcome, None)
                }
                (None, _) => {
                    let mut drv = AltSeqDriver::new(self.machine);
                    drv.attach(fault.to_override());
                    let outcome =
                        classify_trace(self.machine, &golden, |w| drv.apply(w), self.words);
                    (outcome, None)
                }
            };
            if obs {
                observer.on_event(&CampaignEvent::Progress {
                    done: done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1,
                    total: faults.len(),
                });
            }
            (worker, outcome, cone_stats)
        };
        let slots: Vec<Option<(usize, SeqOutcome, Option<ConeSimStats>)>> = match self.backend {
            Backend::Engine => {
                par_map_cancellable(&faults, self.threads, self.cancel, |worker, _, fault| {
                    sim_one(worker, fault)
                })
            }
            Backend::Scalar => faults
                .iter()
                .map(|fault| {
                    if self.cancel.is_some_and(CancelToken::is_cancelled) {
                        None
                    } else {
                        Some(sim_one(0, fault))
                    }
                })
                .collect(),
        };
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::FaultSim,
                micros: duration_micros(t.elapsed()),
            });
        }

        // Merge: deterministic fault-ordered prefix with event replay.
        let merge_t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Merge,
            });
        }
        let completed = slots.iter().take_while(|s| s.is_some()).count();
        let cancelled = completed < faults.len();
        let mut outcomes = Vec::with_capacity(completed);
        let mut pairs_total = 0u64;
        for (i, (fault, slot)) in faults.into_iter().zip(slots).take(completed).enumerate() {
            let (worker, outcome, cone_stats) = slot.expect("prefix is complete");
            let pairs = words_consumed(&outcome, self.words.len()) as u64;
            pairs_total += pairs;
            if obs {
                observer.on_event(&CampaignEvent::FaultStart { fault: i, worker });
                if let Some(s) = &cone_stats {
                    observer.on_event(&CampaignEvent::ConeStats {
                        fault: i,
                        worker,
                        cone_ops: s.cone_ops,
                        ops_evaluated: s.ops_evaluated,
                        ops_skipped: s.ops_skipped,
                        frontier_died_at_level: s.frontier_died_at_level,
                    });
                }
                observer.on_event(&CampaignEvent::FaultFinish {
                    fault: i,
                    worker,
                    detected: usize::from(matches!(outcome, SeqOutcome::Detected { .. })),
                    violations: usize::from(matches!(outcome, SeqOutcome::Violation { .. })),
                    observable: !matches!(outcome, SeqOutcome::Dormant),
                    dropped: false,
                    first_detected: match outcome {
                        SeqOutcome::Detected { word } => u32::try_from(word).ok(),
                        _ => None,
                    },
                    pairs,
                });
            }
            outcomes.push((fault, outcome));
        }
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Merge,
                micros: duration_micros(merge_t.elapsed()),
            });
            if cancelled {
                observer.on_event(&CampaignEvent::Cancelled { completed });
            }
            observer.on_event(&CampaignEvent::CampaignEnd {
                faults: completed,
                dropped: 0,
                pairs: pairs_total,
                // Each driven pair is two clocked evaluation steps; the
                // golden trace consumed the full sequence once.
                words: (pairs_total + self.words.len() as u64) * 2,
                micros: duration_micros(total_t.elapsed()),
                cancelled,
            });
        }
        Ok(SeqCampaign {
            outcomes,
            cancelled,
        })
    }
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::up_down_counter;
    use crate::kohavi::kohavi_0101;
    use crate::{code_conversion_machine, dual_ff_machine};
    use scal_obs::CollectObserver;

    fn bit_words(seq: &[u32]) -> Vec<Vec<bool>> {
        seq.iter().map(|&s| vec![s == 1]).collect()
    }

    #[test]
    fn kohavi_designs_are_sequentially_fault_secure() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = Campaign::new(&machine, &words).run().unwrap();
            assert!(campaign.fault_secure(), "{}", machine.design);
            let (dormant, detected, violations) = campaign.tally();
            assert_eq!(violations, 0);
            assert!(detected > 0);
            // A short drive leaves some faults unexercised — that is the
            // static-test gap `scal_analysis::generate_tests` fills.
            let _ = dormant;
        }
    }

    #[test]
    fn counter_campaign_is_fault_secure() {
        use crate::counters::CounterCmd::{Down, Hold, Up};
        let m = up_down_counter(4);
        let words: Vec<Vec<bool>> = [Up, Up, Down, Hold, Up, Up, Up, Down]
            .iter()
            .map(|c| {
                let s = c.symbol();
                vec![s & 1 == 1, s & 2 != 0]
            })
            .collect();
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = Campaign::new(&machine, &words).run().unwrap();
            assert!(campaign.fault_secure(), "{}", machine.design);
        }
    }

    #[test]
    fn engine_campaign_matches_scalar_oracle() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            assert_eq!(
                Campaign::new(&machine, &words).run().unwrap(),
                Campaign::new(&machine, &words).scalar().run().unwrap(),
                "{}",
                machine.design
            );
        }
    }

    #[test]
    fn cone_and_full_eval_modes_agree() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let cone = Campaign::new(&machine, &words).run().unwrap();
            let full = Campaign::new(&machine, &words)
                .eval_mode(EvalMode::Full)
                .run()
                .unwrap();
            assert_eq!(cone, full, "{}", machine.design);
        }
    }

    #[test]
    fn cone_mode_emits_mode_and_stats_events() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1]);
        let machine = dual_ff_machine(&m);
        let collect = CollectObserver::default();
        let campaign = Campaign::new(&machine, &words)
            .threads(1)
            .observer(&collect)
            .run()
            .unwrap();
        let events = collect.events();
        assert!(matches!(
            events.get(1),
            Some(CampaignEvent::EvalMode { mode: "cone" })
        ));
        let stat_faults: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::ConeStats { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(
            stat_faults,
            (0..campaign.outcomes.len()).collect::<Vec<_>>()
        );

        let collect2 = CollectObserver::default();
        let _ = Campaign::new(&machine, &words)
            .eval_mode(EvalMode::Full)
            .observer(&collect2)
            .run()
            .unwrap();
        let events2 = collect2.events();
        assert!(matches!(
            events2.get(1),
            Some(CampaignEvent::EvalMode { mode: "full" })
        ));
        assert!(!events2
            .iter()
            .any(|e| matches!(e, CampaignEvent::ConeStats { .. })));
    }

    #[test]
    fn longer_drives_detect_more_faults() {
        let m = kohavi_0101();
        let machine = code_conversion_machine(&m);
        let short = Campaign::new(&machine, &bit_words(&[0, 1])).run().unwrap();
        let long_words = bit_words(&[0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1]);
        let long = Campaign::new(&machine, &long_words).run().unwrap();
        assert!(long.tally().1 >= short.tally().1);
        assert!(long.tally().0 <= short.tally().0);
    }

    #[test]
    fn coverage_maps_record_first_detecting_word() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        let machine = dual_ff_machine(&m);
        let cov = scal_obs::CoverageObserver::new();
        let campaign = Campaign::new(&machine, &words)
            .coverage(&cov)
            .run()
            .unwrap();
        let map = cov.latest().expect("coverage map");
        assert_eq!(map.records.len(), campaign.outcomes.len());
        for (record, (fault, outcome)) in map.records.iter().zip(&campaign.outcomes) {
            assert_eq!(record.label, fault.describe(&machine.circuit));
            match outcome {
                SeqOutcome::Detected { word } => {
                    assert_eq!(record.first_detected, u32::try_from(*word).ok());
                }
                _ => assert_eq!(record.first_detected, None),
            }
        }
        // Cone mode annotates every record; the scalar oracle yields the
        // identical verdicts without cone stats.
        assert!(map.records.iter().all(|r| r.cone_ops.is_some()));
        let cov2 = scal_obs::CoverageObserver::new();
        let _ = Campaign::new(&machine, &words)
            .scalar()
            .coverage(&cov2)
            .run()
            .unwrap();
        let stripped: Vec<_> = map
            .records
            .iter()
            .map(|r| scal_obs::FaultRecord {
                cone_ops: None,
                ops_skipped: None,
                frontier_died_at_level: None,
                ..r.clone()
            })
            .collect();
        assert_eq!(cov2.latest().expect("scalar map").records, stripped);
    }

    #[test]
    fn observer_and_cancel_work_on_seq_campaigns() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 1, 0]);
        let machine = dual_ff_machine(&m);
        let collect = CollectObserver::default();
        let campaign = Campaign::new(&machine, &words)
            .threads(1)
            .observer(&collect)
            .run()
            .unwrap();
        assert!(!campaign.cancelled);
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "seq",
                ..
            })
        ));
        let finishes = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::FaultFinish { .. }))
            .count();
        assert_eq!(finishes, campaign.outcomes.len());

        let token = CancelToken::new();
        token.cancel();
        let cancelled = Campaign::new(&machine, &words)
            .cancel(&token)
            .run()
            .unwrap();
        assert!(cancelled.cancelled);
        assert!(cancelled.outcomes.is_empty());
    }
}
