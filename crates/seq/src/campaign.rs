//! Sequential fault campaigns: the dynamic-testing counterpart of
//! `scal_faults::Campaign` for SCAL machines.
//!
//! A sequential SCAL machine is judged over a *driven input sequence*: for
//! every fault, at the first word where any monitored line deviates from the
//! golden trace, some check (a non-alternating monitored line, or a non-code
//! check pair) must fire — otherwise a wrong code word was accepted, a
//! fault-secure violation.
//!
//! [`Campaign`] is the builder twin of `scal_faults::Campaign`: it forwards a
//! [`CampaignObserver`] through compile / golden / fault-sim / merge phases
//! (per-fault events replayed in fault order at merge, worker-attributed)
//! and honors a [`CancelToken`], returning the completed fault-ordered
//! prefix on cancellation.
//!
//! The default backend ([`SeqBackend::Packed`]) first collapses the fault
//! list into structural-equivalence classes ([`collapse_overrides`], default
//! on; see [`Campaign::fault_collapse`]) so only class representatives are
//! simulated, then packs up to `63 × W` representatives
//! into the lanes of one wide evaluation word of `W` 64-bit sub-words (`W ∈
//! {1, 4, 8}`, chosen by [`Campaign::word_width`] or CPU-feature detection)
//! — lane 0 of every sub-word replays the golden machine, every other lane
//! one fault — and replays the driven sequence **once per
//! batch** through [`WidePackedSeqSim`]: per-lane flip-flop state is carried
//! across periods, every lane is classified against the golden lane with
//! word-wide masks, and a classified lane *retires* (drops out of the
//! batch's activity mask), so the batch early-exits once every lane is
//! classified. [`SeqBackend::Scalar`] keeps the per-fault compiled path —
//! cone-restricted replay ([`EvalMode::Cone`]) against a cached
//! [`GoldenTrace`] via [`ConeSim`], or whole-machine re-simulation
//! ([`EvalMode::Full`]) — as the packed backend's differential oracle, and
//! [`SeqBackend::Graph`] the original graph-walking driver. All backends
//! produce bit-identical outcomes, `first_detected` words, and coverage
//! records (the scalar cone path additionally annotates cone statistics).

use crate::dual_ff::{AltSeqDriver, ScalMachine};
use scal_engine::{
    collapse_overrides, effective_threads, par_map_cancellable, resolve_fault_collapse,
    resolve_word_width, CompiledCircuit, CompiledSim, ConeSim, ConeSimStats, EngineError, EvalMode,
    GoldenTrace, Toggle, WidePackedBatchPlan, WidePackedSeqSim, Word,
};
use scal_faults::Fault;
use scal_netlist::Override;
use scal_obs::{
    CampaignEvent, CampaignObserver, CancelToken, CoverageObserver, MultiObserver, Phase,
};
use std::time::{Duration, Instant};

/// Outcome of one fault under a driven sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The fault never changed any monitored value over the run.
    Dormant,
    /// The fault's first manifestation was accompanied by a check flag.
    Detected {
        /// Word index of the first manifestation.
        word: usize,
    },
    /// The fault produced a wrong code word with no flag — a violation.
    Violation {
        /// Word index of the violation.
        word: usize,
    },
}

/// Summary of a sequential campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqCampaign {
    /// Per-fault outcomes, in [`ScalMachine::checkable_faults`] order; a
    /// contiguous prefix of that list when [`SeqCampaign::cancelled`].
    pub outcomes: Vec<(Fault, SeqOutcome)>,
    /// `true` iff a [`CancelToken`] stopped the run before every fault was
    /// simulated.
    pub cancelled: bool,
}

impl SeqCampaign {
    /// Number of faults with each outcome: `(dormant, detected, violations)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for (_, o) in &self.outcomes {
            match o {
                SeqOutcome::Dormant => t.0 += 1,
                SeqOutcome::Detected { .. } => t.1 += 1,
                SeqOutcome::Violation { .. } => t.2 += 1,
            }
        }
        t
    }

    /// `true` iff no fault slipped a wrong code word.
    #[must_use]
    pub fn fault_secure(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| !matches!(o, SeqOutcome::Violation { .. }))
    }
}

/// Classifies one fault's trace against the golden trace: outcome at the
/// first word where any monitored line deviates.
fn classify_trace(
    machine: &ScalMachine,
    golden: &[(Vec<bool>, Vec<bool>)],
    mut apply: impl FnMut(&[bool]) -> (Vec<bool>, Vec<bool>),
    words: &[Vec<bool>],
) -> SeqOutcome {
    for (i, w) in words.iter().enumerate() {
        let (o1, o2) = apply(w);
        let mon = machine.monitored();
        let wrong = mon
            .clone()
            .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
        if wrong {
            let nonalt = mon.clone().any(|k| o1[k] == o2[k]);
            let code_bad = machine
                .code_pair
                .map(|(f, g)| o1[f] == o1[g] || o2[f] == o2[g])
                .unwrap_or(false);
            return if nonalt || code_bad {
                SeqOutcome::Detected { word: i }
            } else {
                SeqOutcome::Violation { word: i }
            };
        }
    }
    SeqOutcome::Dormant
}

/// Driven words (alternating pairs) a fault's classification consumed: a
/// trace stops at the word that classified it.
fn words_consumed(outcome: &SeqOutcome, total: usize) -> usize {
    match outcome {
        SeqOutcome::Dormant => total,
        SeqOutcome::Detected { word } | SeqOutcome::Violation { word } => word + 1,
    }
}

/// Fills `p1`/`p2` with the two alternating periods of one information word
/// (`X‖0`, `X̄‖1`), reusing the caller's scratch buffers.
fn alt_periods(word: &[bool], p1: &mut Vec<bool>, p2: &mut Vec<bool>) {
    p1.clear();
    p1.extend_from_slice(word);
    p1.push(false); // φ = 0
    p2.clear();
    p2.extend(word.iter().map(|&b| !b));
    p2.push(true); // φ = 1
}

/// Applies one information word over two alternating periods of a compiled
/// simulator (`(X‖0, X̄‖1)`), mirroring [`AltSeqDriver::apply`]. `p1`/`p2`
/// are caller-owned scratch buffers reused across words, so the scalar path
/// allocates nothing per driven word beyond the returned output vectors.
fn apply_compiled(
    sim: &mut CompiledSim<'_>,
    word: &[bool],
    p1: &mut Vec<bool>,
    p2: &mut Vec<bool>,
) -> (Vec<bool>, Vec<bool>) {
    alt_periods(word, p1, p2);
    let o1 = sim.step(p1);
    let o2 = sim.step(p2);
    (o1, o2)
}

/// Which simulation backend a sequential [`Campaign`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeqBackend {
    /// Fault-per-lane packed replay (default): up to 63 faults ride the
    /// lanes of one word (lane 0 golden) through [`WidePackedSeqSim`], replay
    /// the driven sequence once per batch, and retire lanes as they are
    /// classified.
    #[default]
    Packed,
    /// Per-fault compiled replay — cone-restricted or full per
    /// [`Campaign::eval_mode`] — the packed backend's differential oracle.
    Scalar,
    /// The original graph-walking [`AltSeqDriver`] oracle, single-threaded.
    Graph,
}

impl SeqBackend {
    /// Stable lowercase name (`"packed"`, `"scalar"`, `"graph"`), as used by
    /// the `--seq-backend` bench flag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SeqBackend::Packed => "packed",
            SeqBackend::Scalar => "scalar",
            SeqBackend::Graph => "graph",
        }
    }
}

impl std::fmt::Display for SeqBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SeqBackend {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packed" => Ok(SeqBackend::Packed),
            "scalar" => Ok(SeqBackend::Scalar),
            "graph" => Ok(SeqBackend::Graph),
            other => Err(EngineError::InvalidConfig {
                reason: format!(
                    "seq backend must be \"packed\", \"scalar\" or \"graph\", got {other:?}"
                ),
            }),
        }
    }
}

/// Builder for a sequential fault campaign over a [`ScalMachine`] and a
/// driven word sequence — the `scal-seq` twin of `scal_faults::Campaign`.
pub struct Campaign<'a> {
    machine: &'a ScalMachine,
    words: &'a [Vec<bool>],
    threads: usize,
    observer: Option<&'a dyn CampaignObserver>,
    coverage: Option<&'a CoverageObserver>,
    cancel: Option<&'a CancelToken>,
    backend: SeqBackend,
    eval_mode: EvalMode,
    word_width: usize,
    fault_collapse: Toggle,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("machine", &self.machine.design)
            .field("words", &self.words.len())
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .field("coverage", &self.coverage.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("backend", &self.backend)
            .field("eval_mode", &self.eval_mode)
            .field("word_width", &self.word_width)
            .field("fault_collapse", &self.fault_collapse)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// Starts a campaign driving `machine` with `words` (each an
    /// external-input vector): packed fault-per-lane backend, auto thread
    /// count, no observer, no cancellation.
    #[must_use]
    pub fn new(machine: &'a ScalMachine, words: &'a [Vec<bool>]) -> Self {
        Campaign {
            machine,
            words,
            threads: 0,
            observer: None,
            coverage: None,
            cancel: None,
            backend: SeqBackend::default(),
            eval_mode: EvalMode::default(),
            word_width: 0,
            fault_collapse: Toggle::default(),
        }
    }

    /// Worker-thread count; `0` = auto. The scalar backend is always
    /// single-threaded.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Streams every [`CampaignEvent`] of the run to `observer`.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn CampaignObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builds a per-fault [`scal_obs::CoverageMap`] into `coverage`, labelled
    /// with [`Fault::describe`] line names, alongside any plain
    /// [`Campaign::observer`]. Read `coverage.latest()` after the run; a
    /// record's `first_detected` is the first detecting *word* index of the
    /// driven sequence.
    #[must_use]
    pub fn coverage(mut self, coverage: &'a CoverageObserver) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// Makes the run cancellable through `token`, checked at fault
    /// boundaries (batch boundaries on the packed backend); the returned
    /// outcomes are then a fault-ordered prefix.
    #[must_use]
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Selects the simulation backend; see [`SeqBackend`]. All backends
    /// produce bit-identical outcomes.
    #[must_use]
    pub fn backend(mut self, backend: SeqBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Runs on the original graph-walking [`AltSeqDriver`] oracle instead of
    /// a compiled backend — shorthand for `.backend(SeqBackend::Graph)`.
    #[must_use]
    pub fn scalar(self) -> Self {
        self.backend(SeqBackend::Graph)
    }

    /// Selects the per-fault replay strategy on the [`SeqBackend::Scalar`]
    /// backend: cone-restricted incremental replay ([`EvalMode::Cone`], the
    /// default) or full re-simulation ([`EvalMode::Full`], the differential
    /// oracle). Both produce identical outcomes; the packed and graph
    /// backends ignore this knob.
    #[must_use]
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Evaluation word width for the packed backend, in 64-bit sub-words
    /// (`1`, `4` or `8`); `0` (the default) resolves through the
    /// `SCAL_WORD_WIDTH` environment variable and then CPU-feature
    /// detection. At width `W` one packed batch carries `63 × W` faults, so
    /// wider words cut the number of driven-sequence replays; outcomes are
    /// bit-identical at every width. The scalar and graph backends ignore
    /// this knob.
    #[must_use]
    pub fn word_width(mut self, width: usize) -> Self {
        self.word_width = width;
        self
    }

    /// Switches compile-time fault collapsing on the packed backend: the
    /// fault list is partitioned into structural-equivalence classes
    /// ([`collapse_overrides`]) and only class representatives ride the
    /// lanes; each representative's outcome is expanded over its class at
    /// merge time, so outcomes and coverage stay per-original-fault and
    /// bit-identical to an uncollapsed run. Left untouched, collapsing
    /// defaults to on (overridable through `SCAL_FAULT_COLLAPSE`). The
    /// scalar and graph backends never collapse — they are the packed
    /// backend's differential oracles.
    #[must_use]
    pub fn fault_collapse(mut self, on: bool) -> Self {
        self.fault_collapse = on.into();
        self
    }

    /// Builds the observer fan-out (plain observer and/or coverage map); an
    /// empty fan-out reports `enabled() == false`, preserving the fast path.
    fn fan_out(&self, faults: &[Fault]) -> MultiObserver<'a> {
        let mut fan = MultiObserver::new();
        if let Some(o) = self.observer {
            fan.push(o);
        }
        if let Some(cov) = self.coverage {
            cov.set_labels(
                faults
                    .iter()
                    .map(|f| f.describe(&self.machine.circuit))
                    .collect(),
            );
            fan.push(cov);
        }
        fan
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledCircuit::try_compile`] errors on the compiled
    /// backends (the graph oracle never compiles, so it only errors on
    /// future validations), and `InvalidConfig` when
    /// [`Campaign::word_width`] (or `SCAL_WORD_WIDTH`) names an unusable
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if a word's width mismatches the machine's external inputs.
    pub fn run(self) -> Result<SeqCampaign, EngineError> {
        match self.backend {
            SeqBackend::Packed => match resolve_word_width(self.word_width)? {
                1 => self.run_packed::<1>(),
                4 => self.run_packed::<4>(),
                8 => self.run_packed::<8>(),
                other => Err(EngineError::InvalidConfig {
                    reason: format!("unsupported word width {other}"),
                }),
            },
            SeqBackend::Scalar | SeqBackend::Graph => self.run_per_fault(),
        }
    }

    /// The packed fault-per-lane path: up to `63 × W` faults per batch ride
    /// the lanes of one wide word (lane 0 of every sub-word golden) and the
    /// driven sequence is replayed once per batch, with lanes retiring as
    /// they are classified.
    fn run_packed<const W: usize>(self) -> Result<SeqCampaign, EngineError> {
        let total_t = Instant::now();
        let faults = self.machine.checkable_faults();
        let fan = self.fan_out(&faults);
        let observer: &dyn CampaignObserver = &fan;
        let obs = observer.enabled();

        // Compile phase: the schedule, the collapsed fault list, and every
        // batch's lane plan — mapping faults onto lanes is planning, not
        // evaluation, so the fault-sim phase below only sets up evaluator
        // scratch and sweeps. The phase runs up front (timed; events emitted
        // after the preamble) because the batch count reported in the
        // preamble depends on how many representatives survive collapsing.
        let compile_t = Instant::now();
        let compiled = CompiledCircuit::try_compile(&self.machine.circuit)?;
        let collapsed = if resolve_fault_collapse(self.fault_collapse)? {
            let overrides: Vec<Override> = faults.iter().map(|f| f.to_override()).collect();
            Some(collapse_overrides(&compiled, &overrides))
        } else {
            None
        };
        // The faults that actually ride lanes: class representatives under
        // collapsing, the caller-visible list verbatim otherwise.
        let sim_faults: Vec<Fault> = match &collapsed {
            Some(cl) => cl.reps.iter().map(|&r| faults[r as usize]).collect(),
            None => faults.clone(),
        };
        let sim_total = sim_faults.len();
        let batches: Vec<&[Fault]> = sim_faults
            .chunks(WidePackedSeqSim::<W>::FAULT_LANES)
            .collect();
        let n_batches = batches.len();
        let plans: Vec<WidePackedBatchPlan<W>> = {
            let mut overrides: Vec<[Override; 1]> =
                Vec::with_capacity(WidePackedSeqSim::<W>::FAULT_LANES);
            batches
                .iter()
                .map(|batch| {
                    overrides.clear();
                    overrides.extend(batch.iter().map(|f| [f.to_override()]));
                    let refs: Vec<&[Override]> = overrides.iter().map(|o| o.as_slice()).collect();
                    WidePackedBatchPlan::build(&compiled, &refs)
                })
                .collect()
        };
        let compile_micros = duration_micros(compile_t.elapsed());

        if obs {
            observer.on_event(&CampaignEvent::CampaignStart {
                campaign: "seq",
                faults: faults.len(),
                inputs: self.machine.circuit.inputs().len(),
                outputs: self.machine.circuit.outputs().len(),
                threads: effective_threads(self.threads, n_batches),
            });
            observer.on_event(&CampaignEvent::LaneGeometry {
                width: W,
                fault_lanes: WidePackedSeqSim::<W>::FAULT_LANES,
                pattern_lanes: 0,
                packing: "seq",
            });
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Compile,
            });
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Compile,
                micros: compile_micros,
            });
            if let Some(cl) = &collapsed {
                observer.on_event(&CampaignEvent::Span {
                    name: "collapse",
                    parent: "compile",
                    micros: cl.micros,
                    count: 1,
                    items: cl.num_faults() as u64,
                });
                observer.on_event(&CampaignEvent::FaultCollapse {
                    faults: cl.num_faults(),
                    representatives: cl.num_reps(),
                    dominance_edges: cl.dominance_edges,
                    micros: cl.micros,
                });
            }
        }

        // Golden phase: the golden machine rides lane 0 of every batch, so
        // nothing is simulated up front — each driven word is just expanded
        // once into its two alternating periods, shared by every batch.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Golden,
            });
        }
        let periods: Vec<(Vec<bool>, Vec<bool>)> = self
            .words
            .iter()
            .map(|w| {
                let (mut p1, mut p2) = (Vec::new(), Vec::new());
                alt_periods(w, &mut p1, &mut p2);
                (p1, p2)
            })
            .collect();
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Golden,
                micros: duration_micros(t.elapsed()),
            });
        }

        // Fault simulation: one packed replay per batch, cancellable at
        // batch boundaries.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::FaultSim,
            });
        }
        let mon = self.machine.monitored();
        let code_pair = self.machine.code_pair;
        let n_outputs = self.machine.circuit.outputs().len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let run_batch = |worker: usize,
                         batch: &[Fault],
                         plan: &WidePackedBatchPlan<W>|
         -> (usize, Vec<SeqOutcome>, u64, usize) {
            let mut sim = WidePackedSeqSim::from_plan(&compiled, plan);
            let mut outcomes = vec![SeqOutcome::Dormant; batch.len()];
            // One activity mask per sub-word; a classified lane retires
            // from its sub-word's mask.
            let mut active: Vec<u64> = (0..W).map(|s| sim.sub_lane_mask(s)).collect();
            let mut words_run = 0u64;
            let mut o1 = vec![Word::<W>::ZERO; n_outputs];
            for (i, (p1, p2)) in periods.iter().enumerate() {
                sim.step(p1);
                for (k, slot) in o1.iter_mut().enumerate() {
                    *slot = sim.output_wide(k);
                }
                sim.step(p2);
                words_run = i as u64 + 1;
                // A lane manifests at the first word where any monitored
                // line deviates from its sub-word's golden lane; the flag
                // masks mirror classify_trace lane-wise.
                let mut wrong = Word::<W>::ZERO;
                let mut nonalt = Word::<W>::ZERO;
                for k in mon.clone() {
                    let (o1k, o2k) = (o1[k], sim.output_wide(k));
                    wrong |= (o1k ^ o1k.golden_splat()) | (o2k ^ o2k.golden_splat());
                    nonalt |= !(o1k ^ o2k);
                }
                let code_bad = code_pair.map_or(Word::ZERO, |(f, g)| {
                    !(o1[f] ^ o1[g]) | !(sim.output_wide(f) ^ sim.output_wide(g))
                });
                let flagged = nonalt | code_bad;
                let mut live = false;
                for (s, act) in active.iter_mut().enumerate() {
                    let newly = wrong.sub(s) & *act;
                    if newly != 0 {
                        let fl = flagged.sub(s);
                        for l in 0..63 {
                            let bit = 1u64 << (l + 1);
                            if newly & bit != 0 {
                                outcomes[s * 63 + l] = if fl & bit != 0 {
                                    SeqOutcome::Detected { word: i }
                                } else {
                                    SeqOutcome::Violation { word: i }
                                };
                            }
                        }
                        *act &= !newly;
                    }
                    live |= *act != 0;
                }
                if !live {
                    break;
                }
            }
            if obs {
                // Progress counts simulated lanes: representatives under
                // collapsing, every fault otherwise.
                observer.on_event(&CampaignEvent::Progress {
                    done: done.fetch_add(batch.len(), std::sync::atomic::Ordering::Relaxed)
                        + batch.len(),
                    total: sim_total,
                });
            }
            let retired = outcomes
                .iter()
                .filter(|o| !matches!(o, SeqOutcome::Dormant))
                .count();
            (worker, outcomes, words_run, retired)
        };
        let items: Vec<(&[Fault], &WidePackedBatchPlan<W>)> =
            batches.iter().copied().zip(plans.iter()).collect();
        let slots = par_map_cancellable(
            &items,
            self.threads,
            self.cancel,
            |worker, _, (batch, plan)| run_batch(worker, batch, plan),
        );
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::FaultSim,
                micros: duration_micros(t.elapsed()),
            });
        }
        drop(items);
        drop(batches);

        // Merge: deterministic fault-ordered prefix (whole batches) with
        // event replay — one LaneBatch per batch, then its faults' events.
        let merge_t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Merge,
            });
        }
        let completed_batches = slots.iter().take_while(|s| s.is_some()).count();
        let n_faults = faults.len();
        let mut outcomes = Vec::new();
        let mut pairs_total = 0u64;
        let mut words_total = 0u64;
        match &collapsed {
            None => {
                let mut fault_iter = faults.into_iter();
                let mut fault_idx = 0usize;
                for (b, slot) in slots.into_iter().take(completed_batches).enumerate() {
                    let (worker, batch_outcomes, words_run, retired) =
                        slot.expect("prefix is complete");
                    words_total += words_run;
                    if obs {
                        observer.on_event(&CampaignEvent::LaneBatch {
                            batch: b,
                            worker,
                            lanes: batch_outcomes.len(),
                            words: words_run,
                            retired,
                        });
                    }
                    for outcome in batch_outcomes {
                        let fault = fault_iter.next().expect("one fault per packed lane");
                        let pairs = words_consumed(&outcome, self.words.len()) as u64;
                        pairs_total += pairs;
                        if obs {
                            observer.on_event(&CampaignEvent::FaultStart {
                                fault: fault_idx,
                                worker,
                            });
                            observer.on_event(&CampaignEvent::FaultFinish {
                                fault: fault_idx,
                                worker,
                                detected: usize::from(matches!(
                                    outcome,
                                    SeqOutcome::Detected { .. }
                                )),
                                violations: usize::from(matches!(
                                    outcome,
                                    SeqOutcome::Violation { .. }
                                )),
                                observable: !matches!(outcome, SeqOutcome::Dormant),
                                dropped: false,
                                first_detected: match outcome {
                                    SeqOutcome::Detected { word } => u32::try_from(word).ok(),
                                    _ => None,
                                },
                                pairs,
                            });
                        }
                        outcomes.push((fault, outcome));
                        fault_idx += 1;
                    }
                }
            }
            Some(cl) => {
                // Expansion: lane batches replay first in batch order (they
                // speak in representative lanes), then every completed
                // original fault gets a clone of its representative's
                // outcome under its own index — equivalent faults produce
                // identical traces, so the expansion is exact. Because
                // representatives are first-occurrence ordered, the
                // answered originals form a contiguous prefix.
                let completed_reps =
                    (completed_batches * WidePackedSeqSim::<W>::FAULT_LANES).min(cl.num_reps());
                let completed_originals = cl.completed_prefix(completed_reps);
                let mut rep_outcomes: Vec<(SeqOutcome, usize)> = Vec::with_capacity(completed_reps);
                for (b, slot) in slots.into_iter().take(completed_batches).enumerate() {
                    let (worker, batch_outcomes, words_run, retired) =
                        slot.expect("prefix is complete");
                    words_total += words_run;
                    if obs {
                        observer.on_event(&CampaignEvent::LaneBatch {
                            batch: b,
                            worker,
                            lanes: batch_outcomes.len(),
                            words: words_run,
                            retired,
                        });
                    }
                    rep_outcomes.extend(batch_outcomes.into_iter().map(|o| (o, worker)));
                }
                outcomes.reserve(completed_originals);
                for (o, fault) in faults.into_iter().enumerate().take(completed_originals) {
                    let r = cl.rep_of[o] as usize;
                    let (outcome, worker) = rep_outcomes[r].clone();
                    let pairs = words_consumed(&outcome, self.words.len()) as u64;
                    pairs_total += pairs;
                    if obs {
                        observer.on_event(&CampaignEvent::FaultStart { fault: o, worker });
                        let rep_original = cl.reps[r] as usize;
                        if rep_original != o {
                            observer.on_event(&CampaignEvent::FaultClass {
                                fault: o,
                                representative: rep_original,
                                size: cl.class_sizes[r] as usize,
                            });
                        }
                        observer.on_event(&CampaignEvent::FaultFinish {
                            fault: o,
                            worker,
                            detected: usize::from(matches!(outcome, SeqOutcome::Detected { .. })),
                            violations: usize::from(matches!(
                                outcome,
                                SeqOutcome::Violation { .. }
                            )),
                            observable: !matches!(outcome, SeqOutcome::Dormant),
                            dropped: false,
                            first_detected: match outcome {
                                SeqOutcome::Detected { word } => u32::try_from(word).ok(),
                                _ => None,
                            },
                            pairs,
                        });
                    }
                    outcomes.push((fault, outcome));
                }
            }
        }
        let cancelled = outcomes.len() < n_faults;
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Merge,
                micros: duration_micros(merge_t.elapsed()),
            });
            if cancelled {
                observer.on_event(&CampaignEvent::Cancelled {
                    completed: outcomes.len(),
                });
            }
            observer.on_event(&CampaignEvent::CampaignEnd {
                faults: outcomes.len(),
                dropped: 0,
                pairs: pairs_total,
                // Each batch replays `words_run` driven words of two clocked
                // periods each; the golden machine rides lane 0, so it costs
                // no extra pass over the schedule.
                words: words_total * 2,
                micros: duration_micros(total_t.elapsed()),
                cancelled,
            });
        }
        Ok(SeqCampaign {
            outcomes,
            cancelled,
        })
    }

    /// The per-fault replay path: [`SeqBackend::Scalar`] (compiled, one
    /// fault at a time, cone-restricted or full) and [`SeqBackend::Graph`]
    /// (the original graph-walking driver).
    fn run_per_fault(self) -> Result<SeqCampaign, EngineError> {
        let total_t = Instant::now();
        let faults = self.machine.checkable_faults();
        let fan = self.fan_out(&faults);
        let observer: &dyn CampaignObserver = &fan;
        let obs = observer.enabled();
        let compiled_backend = self.backend == SeqBackend::Scalar;
        if obs {
            observer.on_event(&CampaignEvent::CampaignStart {
                campaign: if compiled_backend {
                    "seq"
                } else {
                    "seq_scalar"
                },
                faults: faults.len(),
                inputs: self.machine.circuit.inputs().len(),
                outputs: self.machine.circuit.outputs().len(),
                threads: if compiled_backend {
                    effective_threads(self.threads, faults.len())
                } else {
                    1
                },
            });
            if compiled_backend {
                observer.on_event(&CampaignEvent::EvalMode {
                    mode: self.eval_mode.name(),
                });
            }
        }

        // Compile phase (compiled backend only).
        let compiled = if compiled_backend {
            let t = Instant::now();
            if obs {
                observer.on_event(&CampaignEvent::PhaseStart {
                    phase: Phase::Compile,
                });
            }
            let compiled = CompiledCircuit::try_compile(&self.machine.circuit)?;
            if obs {
                observer.on_event(&CampaignEvent::PhaseEnd {
                    phase: Phase::Compile,
                    micros: duration_micros(t.elapsed()),
                });
            }
            Some(compiled)
        } else {
            None
        };

        // Golden trace.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Golden,
            });
        }
        // In cone mode the golden run is captured once with every slot value
        // cached; faulty replays seed their cones from it.
        let cone_trace: Option<GoldenTrace> = match (&compiled, self.eval_mode) {
            (Some(compiled), EvalMode::Cone) => {
                let steps: Vec<Vec<bool>> = self
                    .words
                    .iter()
                    .flat_map(|w| {
                        let mut p1 = w.clone();
                        p1.push(false); // φ = 0
                        let mut p2: Vec<bool> = w.iter().map(|&b| !b).collect();
                        p2.push(true); // φ = 1
                        [p1, p2]
                    })
                    .collect();
                Some(GoldenTrace::capture(compiled, &steps))
            }
            _ => None,
        };
        let golden: Vec<(Vec<bool>, Vec<bool>)> = match (&cone_trace, &compiled) {
            (Some(trace), _) => (0..self.words.len())
                .map(|i| {
                    (
                        trace.outputs(2 * i).to_vec(),
                        trace.outputs(2 * i + 1).to_vec(),
                    )
                })
                .collect(),
            (None, Some(compiled)) => {
                let mut sim = CompiledSim::new(compiled);
                let (mut p1, mut p2) = (Vec::new(), Vec::new());
                self.words
                    .iter()
                    .map(|w| apply_compiled(&mut sim, w, &mut p1, &mut p2))
                    .collect()
            }
            (None, None) => {
                let mut drv = AltSeqDriver::new(self.machine);
                self.words.iter().map(|w| drv.apply(w)).collect()
            }
        };
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Golden,
                micros: duration_micros(t.elapsed()),
            });
        }

        // Fault simulation, cancellable at fault boundaries. Each worker
        // reports which worker id simulated the fault so the merge replay
        // stays worker-attributed.
        let t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::FaultSim,
            });
        }
        let done = std::sync::atomic::AtomicUsize::new(0);
        let sim_one = |worker: usize, fault: &Fault| -> (usize, SeqOutcome, Option<ConeSimStats>) {
            let (outcome, cone_stats) = match (&compiled, &cone_trace) {
                (Some(compiled), Some(trace)) => {
                    // Cone replay: only the fault's fanout cone is
                    // re-evaluated per step, seeded from the cached golden
                    // slots of the trace.
                    let mut sim = ConeSim::new(compiled, &[fault.to_override()]);
                    let outcome = classify_trace(
                        self.machine,
                        &golden,
                        |_w| {
                            let o1 = sim.step(trace);
                            let o2 = sim.step(trace);
                            (o1, o2)
                        },
                        self.words,
                    );
                    let stats = sim.stats();
                    (outcome, Some(stats))
                }
                (Some(compiled), None) => {
                    let mut sim = CompiledSim::new(compiled);
                    sim.attach(&[fault.to_override()]);
                    let (mut p1, mut p2) = (Vec::new(), Vec::new());
                    let outcome = classify_trace(
                        self.machine,
                        &golden,
                        |w| apply_compiled(&mut sim, w, &mut p1, &mut p2),
                        self.words,
                    );
                    (outcome, None)
                }
                (None, _) => {
                    let mut drv = AltSeqDriver::new(self.machine);
                    drv.attach(fault.to_override());
                    let outcome =
                        classify_trace(self.machine, &golden, |w| drv.apply(w), self.words);
                    (outcome, None)
                }
            };
            if obs {
                observer.on_event(&CampaignEvent::Progress {
                    done: done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1,
                    total: faults.len(),
                });
            }
            (worker, outcome, cone_stats)
        };
        let slots: Vec<Option<(usize, SeqOutcome, Option<ConeSimStats>)>> = if compiled_backend {
            par_map_cancellable(&faults, self.threads, self.cancel, |worker, _, fault| {
                sim_one(worker, fault)
            })
        } else {
            faults
                .iter()
                .map(|fault| {
                    if self.cancel.is_some_and(CancelToken::is_cancelled) {
                        None
                    } else {
                        Some(sim_one(0, fault))
                    }
                })
                .collect()
        };
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::FaultSim,
                micros: duration_micros(t.elapsed()),
            });
        }

        // Merge: deterministic fault-ordered prefix with event replay.
        let merge_t = Instant::now();
        if obs {
            observer.on_event(&CampaignEvent::PhaseStart {
                phase: Phase::Merge,
            });
        }
        let completed = slots.iter().take_while(|s| s.is_some()).count();
        let cancelled = completed < faults.len();
        let mut outcomes = Vec::with_capacity(completed);
        let mut pairs_total = 0u64;
        for (i, (fault, slot)) in faults.into_iter().zip(slots).take(completed).enumerate() {
            let (worker, outcome, cone_stats) = slot.expect("prefix is complete");
            let pairs = words_consumed(&outcome, self.words.len()) as u64;
            pairs_total += pairs;
            if obs {
                observer.on_event(&CampaignEvent::FaultStart { fault: i, worker });
                if let Some(s) = &cone_stats {
                    observer.on_event(&CampaignEvent::ConeStats {
                        fault: i,
                        worker,
                        cone_ops: s.cone_ops,
                        ops_evaluated: s.ops_evaluated,
                        ops_skipped: s.ops_skipped,
                        frontier_died_at_level: s.frontier_died_at_level,
                    });
                }
                observer.on_event(&CampaignEvent::FaultFinish {
                    fault: i,
                    worker,
                    detected: usize::from(matches!(outcome, SeqOutcome::Detected { .. })),
                    violations: usize::from(matches!(outcome, SeqOutcome::Violation { .. })),
                    observable: !matches!(outcome, SeqOutcome::Dormant),
                    dropped: false,
                    first_detected: match outcome {
                        SeqOutcome::Detected { word } => u32::try_from(word).ok(),
                        _ => None,
                    },
                    pairs,
                });
            }
            outcomes.push((fault, outcome));
        }
        if obs {
            observer.on_event(&CampaignEvent::PhaseEnd {
                phase: Phase::Merge,
                micros: duration_micros(merge_t.elapsed()),
            });
            if cancelled {
                observer.on_event(&CampaignEvent::Cancelled { completed });
            }
            observer.on_event(&CampaignEvent::CampaignEnd {
                faults: completed,
                dropped: 0,
                pairs: pairs_total,
                // Each driven pair is two clocked evaluation steps; the
                // golden trace consumed the full sequence once.
                words: (pairs_total + self.words.len() as u64) * 2,
                micros: duration_micros(total_t.elapsed()),
                cancelled,
            });
        }
        Ok(SeqCampaign {
            outcomes,
            cancelled,
        })
    }
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::up_down_counter;
    use crate::kohavi::kohavi_0101;
    use crate::{code_conversion_machine, dual_ff_machine};
    use scal_obs::CollectObserver;

    fn bit_words(seq: &[u32]) -> Vec<Vec<bool>> {
        seq.iter().map(|&s| vec![s == 1]).collect()
    }

    #[test]
    fn kohavi_designs_are_sequentially_fault_secure() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = Campaign::new(&machine, &words).run().unwrap();
            assert!(campaign.fault_secure(), "{}", machine.design);
            let (dormant, detected, violations) = campaign.tally();
            assert_eq!(violations, 0);
            assert!(detected > 0);
            // A short drive leaves some faults unexercised — that is the
            // static-test gap `scal_analysis::generate_tests` fills.
            let _ = dormant;
        }
    }

    #[test]
    fn counter_campaign_is_fault_secure() {
        use crate::counters::CounterCmd::{Down, Hold, Up};
        let m = up_down_counter(4);
        let words: Vec<Vec<bool>> = [Up, Up, Down, Hold, Up, Up, Up, Down]
            .iter()
            .map(|c| {
                let s = c.symbol();
                vec![s & 1 == 1, s & 2 != 0]
            })
            .collect();
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let campaign = Campaign::new(&machine, &words).run().unwrap();
            assert!(campaign.fault_secure(), "{}", machine.design);
        }
    }

    #[test]
    fn all_backends_agree() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let packed = Campaign::new(&machine, &words).run().unwrap();
            for backend in [SeqBackend::Scalar, SeqBackend::Graph] {
                assert_eq!(
                    packed,
                    Campaign::new(&machine, &words)
                        .backend(backend)
                        .run()
                        .unwrap(),
                    "{} vs {backend}",
                    machine.design
                );
            }
        }
    }

    #[test]
    fn cone_and_full_eval_modes_agree() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let cone = Campaign::new(&machine, &words)
                .backend(SeqBackend::Scalar)
                .run()
                .unwrap();
            let full = Campaign::new(&machine, &words)
                .backend(SeqBackend::Scalar)
                .eval_mode(EvalMode::Full)
                .run()
                .unwrap();
            assert_eq!(cone, full, "{}", machine.design);
        }
    }

    #[test]
    fn cone_mode_emits_mode_and_stats_events() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1]);
        let machine = dual_ff_machine(&m);
        let collect = CollectObserver::default();
        let campaign = Campaign::new(&machine, &words)
            .backend(SeqBackend::Scalar)
            .threads(1)
            .observer(&collect)
            .run()
            .unwrap();
        let events = collect.events();
        assert!(matches!(
            events.get(1),
            Some(CampaignEvent::EvalMode { mode: "cone" })
        ));
        let stat_faults: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::ConeStats { fault, .. } => Some(*fault),
                _ => None,
            })
            .collect();
        assert_eq!(
            stat_faults,
            (0..campaign.outcomes.len()).collect::<Vec<_>>()
        );

        let collect2 = CollectObserver::default();
        let _ = Campaign::new(&machine, &words)
            .backend(SeqBackend::Scalar)
            .eval_mode(EvalMode::Full)
            .observer(&collect2)
            .run()
            .unwrap();
        let events2 = collect2.events();
        assert!(matches!(
            events2.get(1),
            Some(CampaignEvent::EvalMode { mode: "full" })
        ));
        assert!(!events2
            .iter()
            .any(|e| matches!(e, CampaignEvent::ConeStats { .. })));
    }

    #[test]
    fn longer_drives_detect_more_faults() {
        let m = kohavi_0101();
        let machine = code_conversion_machine(&m);
        let short = Campaign::new(&machine, &bit_words(&[0, 1])).run().unwrap();
        let long_words = bit_words(&[0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1]);
        let long = Campaign::new(&machine, &long_words).run().unwrap();
        assert!(long.tally().1 >= short.tally().1);
        assert!(long.tally().0 <= short.tally().0);
    }

    #[test]
    fn coverage_maps_record_first_detecting_word() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        let machine = dual_ff_machine(&m);
        let cov = scal_obs::CoverageObserver::new();
        let campaign = Campaign::new(&machine, &words)
            .backend(SeqBackend::Scalar)
            .coverage(&cov)
            .run()
            .unwrap();
        let map = cov.latest().expect("coverage map");
        assert_eq!(map.records.len(), campaign.outcomes.len());
        for (record, (fault, outcome)) in map.records.iter().zip(&campaign.outcomes) {
            assert_eq!(record.label, fault.describe(&machine.circuit));
            match outcome {
                SeqOutcome::Detected { word } => {
                    assert_eq!(record.first_detected, u32::try_from(*word).ok());
                }
                _ => assert_eq!(record.first_detected, None),
            }
        }
        // Cone mode annotates every record; the graph oracle and the packed
        // backend yield the identical verdicts modulo annotations (cone
        // stats here, class membership on the collapsed packed backend).
        assert!(map.records.iter().all(|r| r.cone_ops.is_some()));
        let stripped: Vec<_> = map
            .records
            .iter()
            .map(scal_obs::FaultRecord::without_annotations)
            .collect();
        for backend in [SeqBackend::Packed, SeqBackend::Graph] {
            let cov2 = scal_obs::CoverageObserver::new();
            let _ = Campaign::new(&machine, &words)
                .backend(backend)
                .coverage(&cov2)
                .run()
                .unwrap();
            let map2 = cov2.latest().expect("coverage map");
            let stripped2: Vec<_> = map2
                .records
                .iter()
                .map(scal_obs::FaultRecord::without_annotations)
                .collect();
            assert_eq!(stripped2, stripped, "{backend}");
        }
    }

    #[test]
    fn collapsed_packed_matches_uncollapsed() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let collect = CollectObserver::default();
            let collapsed = Campaign::new(&machine, &words)
                .threads(1)
                .observer(&collect)
                .run()
                .unwrap();
            let plain = Campaign::new(&machine, &words)
                .fault_collapse(false)
                .run()
                .unwrap();
            assert_eq!(collapsed, plain, "{}", machine.design);
            let events = collect.events();
            let (faults, reps) = events
                .iter()
                .find_map(|e| match e {
                    CampaignEvent::FaultCollapse {
                        faults,
                        representatives,
                        ..
                    } => Some((*faults, *representatives)),
                    _ => None,
                })
                .expect("collapsed run must announce its classes");
            assert_eq!(faults, collapsed.outcomes.len());
            assert!(reps < faults, "sequential machines must collapse");
            // Every original fault still finishes, and class members cite
            // their representative.
            let finishes = events
                .iter()
                .filter(|e| matches!(e, CampaignEvent::FaultFinish { .. }))
                .count();
            assert_eq!(finishes, faults);
            assert_eq!(
                events
                    .iter()
                    .filter(|e| matches!(e, CampaignEvent::FaultClass { .. }))
                    .count(),
                faults - reps
            );
        }
    }

    #[test]
    fn packed_emits_lane_batches_and_no_eval_mode() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        let machine = code_conversion_machine(&m);
        let faults = machine.checkable_faults().len();
        assert!(faults > 2 * 63, "want ≥3 batches, got {faults} faults");
        let collect = CollectObserver::default();
        // Collapsing is pinned off: the lane-count assertions below speak in
        // original faults, which under collapsing no longer fill the lanes
        // one-to-one.
        let campaign = Campaign::new(&machine, &words)
            .word_width(1)
            .threads(1)
            .fault_collapse(false)
            .observer(&collect)
            .run()
            .unwrap();
        let events = collect.events();
        assert!(!events
            .iter()
            .any(|e| matches!(e, CampaignEvent::EvalMode { .. })));
        assert!(matches!(
            events.get(1),
            Some(CampaignEvent::LaneGeometry {
                width: 1,
                fault_lanes: 63,
                pattern_lanes: 0,
                packing: "seq",
            })
        ));
        let batches: Vec<(usize, usize, u64, usize)> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::LaneBatch {
                    batch,
                    lanes,
                    words,
                    retired,
                    ..
                } => Some((*batch, *lanes, *words, *retired)),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), faults.div_ceil(63));
        assert_eq!(
            batches.iter().map(|b| b.0).collect::<Vec<_>>(),
            (0..batches.len()).collect::<Vec<_>>()
        );
        assert_eq!(batches.iter().map(|b| b.1).sum::<usize>(), faults);
        let observable = campaign
            .outcomes
            .iter()
            .filter(|(_, o)| !matches!(o, SeqOutcome::Dormant))
            .count();
        assert_eq!(batches.iter().map(|b| b.3).sum::<usize>(), observable);
        for (_, lanes, batch_words, retired) in &batches {
            assert!(*batch_words <= words.len() as u64);
            assert!(retired <= lanes);
        }
    }

    #[test]
    fn wide_packed_widths_match_scalar() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        for machine in [dual_ff_machine(&m), code_conversion_machine(&m)] {
            let scalar = Campaign::new(&machine, &words).word_width(1).run().unwrap();
            for width in [4, 8] {
                let wide = Campaign::new(&machine, &words)
                    .word_width(width)
                    .run()
                    .unwrap();
                assert_eq!(scalar, wide, "{} at W={width}", machine.design);
            }
        }
    }

    #[test]
    fn wide_packed_merges_batches_and_emits_geometry() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0]);
        let machine = code_conversion_machine(&m);
        let faults = machine.checkable_faults().len();
        assert!(faults > 63, "want faults spanning sub-words, got {faults}");
        let collect = CollectObserver::default();
        // Pinned uncollapsed for the same reason as
        // packed_emits_lane_batches_and_no_eval_mode: lanes are counted in
        // original faults.
        let campaign = Campaign::new(&machine, &words)
            .word_width(4)
            .threads(1)
            .fault_collapse(false)
            .observer(&collect)
            .run()
            .unwrap();
        let events = collect.events();
        assert!(matches!(
            events.get(1),
            Some(CampaignEvent::LaneGeometry {
                width: 4,
                fault_lanes: 252,
                pattern_lanes: 0,
                packing: "seq",
            })
        ));
        let batches: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::LaneBatch { lanes, retired, .. } => Some((*lanes, *retired)),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), faults.div_ceil(252));
        assert_eq!(batches.iter().map(|b| b.0).sum::<usize>(), faults);
        let observable = campaign
            .outcomes
            .iter()
            .filter(|(_, o)| !matches!(o, SeqOutcome::Dormant))
            .count();
        assert_eq!(batches.iter().map(|b| b.1).sum::<usize>(), observable);
        let finishes = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::FaultFinish { .. }))
            .count();
        assert_eq!(finishes, faults);
    }

    #[test]
    fn observer_and_cancel_work_on_seq_campaigns() {
        let m = kohavi_0101();
        let words = bit_words(&[0, 1, 0, 1, 1, 0]);
        let machine = dual_ff_machine(&m);
        let collect = CollectObserver::default();
        let campaign = Campaign::new(&machine, &words)
            .threads(1)
            .observer(&collect)
            .run()
            .unwrap();
        assert!(!campaign.cancelled);
        let events = collect.events();
        assert!(matches!(
            events.first(),
            Some(CampaignEvent::CampaignStart {
                campaign: "seq",
                ..
            })
        ));
        let finishes = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::FaultFinish { .. }))
            .count();
        assert_eq!(finishes, campaign.outcomes.len());

        let token = CancelToken::new();
        token.cancel();
        let cancelled = Campaign::new(&machine, &words)
            .cancel(&token)
            .run()
            .unwrap();
        assert!(cancelled.cancelled);
        assert!(cancelled.outcomes.is_empty());
    }
}
