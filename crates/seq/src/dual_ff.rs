//! The Reynolds dual flip-flop sequential SCAL design (Fig. 4.2).

use crate::synth::self_dual_core;
use crate::StateMachine;
use scal_netlist::{Circuit, NodeId, Sim};

/// A sequential SCAL machine: the netlist plus the bookkeeping needed to
/// drive it in two-period alternating mode and to know which outputs carry
/// what.
///
/// Circuit interface (both designs):
///
/// * inputs: `x0..x{ib-1}`, then `phi`;
/// * outputs: `z0..` (external), then the monitored feedback lines `Y0..`,
///   then any design-specific check lines (code-conversion adds the
///   1-out-of-2 pair `chk_f`, `chk_g`).
#[derive(Debug, Clone)]
pub struct ScalMachine {
    /// The netlist.
    pub circuit: Circuit,
    /// External output count (`z` lines).
    pub z_count: usize,
    /// Monitored feedback line count (`Y` lines).
    pub y_count: usize,
    /// Indices (into the circuit outputs) of check lines that must form a
    /// 1-out-of-2 code in the second period, if the design has any.
    pub code_pair: Option<(usize, usize)>,
    /// Human label for reports.
    pub design: String,
}

impl ScalMachine {
    /// The lines an alternation checker must monitor: all `z` and `Y`
    /// outputs (the paper: "it is necessary to monitor not only the Z
    /// outputs, but also the Y outputs").
    #[must_use]
    pub fn monitored(&self) -> std::ops::Range<usize> {
        0..(self.z_count + self.y_count)
    }

    /// The single-fault universe the SCAL guarantees cover: every collapsed
    /// fault except the period-clock input stem. The paper assigns the
    /// clock distribution to the hardcore ("all fan out of the clock φ is
    /// from a common node … if all clock lines fail, the system will
    /// stop"); a stuck φ swaps the period roles wholesale, which a live
    /// simulation cannot express as a system stop. Branch faults on
    /// individual φ pins *are* covered.
    #[must_use]
    pub fn checkable_faults(&self) -> Vec<scal_faults::Fault> {
        let phi = self
            .circuit
            .inputs()
            .iter()
            .copied()
            .find(|&i| self.circuit.name(i) == Some("phi"));
        scal_faults::enumerate_faults(&self.circuit)
            .into_iter()
            .filter(|f| match (f.site, phi) {
                (scal_netlist::Site::Stem(n), Some(p)) => n != p,
                _ => true,
            })
            .collect()
    }
}

/// Converts a machine to a SCAL machine with the dual flip-flop technique:
/// the self-dual core plus **two** plain D flip-flops per feedback variable,
/// so the state stream `(y, ȳ)` lags the `(Y, Ȳ)` stream by exactly one
/// alternating pair (Fig. 4.2b).
///
/// Drive it with [`AltSeqDriver`]: one simulator step per period, inputs
/// `(X‖0, X̄‖1)`.
#[must_use]
pub fn dual_ff_machine(m: &StateMachine) -> ScalMachine {
    let core = self_dual_core(m);
    let ib = m.input_bits();
    let sb = m.state_bits();
    let zb = m.output_bits();

    let mut c = Circuit::new();
    let xs: Vec<NodeId> = (0..ib).map(|i| c.input(format!("x{i}"))).collect();
    let phi = c.input("phi");

    // Two flip-flops per state bit: ff2 (output stage) initialized to the
    // reset-state bit, ff1 (input stage) to its complement, so the feedback
    // stream starts (s0, s̄0, …).
    let mut ff1s = Vec::with_capacity(sb);
    let mut ff2s = Vec::with_capacity(sb);
    for k in 0..sb {
        let bit = false; // reset state 0
        let ff1 = c.dff(!bit);
        let ff2 = c.dff(bit);
        c.connect_dff(ff2, ff1);
        ff1s.push(ff1);
        ff2s.push(ff2);
        let _ = k;
    }

    let mut core_inputs = xs;
    core_inputs.extend(&ff2s);
    core_inputs.push(phi);
    let outs = c.import(&core, &core_inputs);

    for (k, &z) in outs.iter().take(zb).enumerate() {
        c.mark_output(format!("z{k}"), z);
    }
    for (k, &y) in outs.iter().skip(zb).enumerate() {
        c.connect_dff(ff1s[k], y);
        c.mark_output(format!("Y{k}"), y);
    }

    ScalMachine {
        circuit: c,
        z_count: zb,
        y_count: sb,
        code_pair: None,
        design: "dual flip-flop (Reynolds)".to_owned(),
    }
}

/// Drives a [`ScalMachine`] in alternating mode: each call to
/// [`AltSeqDriver::apply`] spends two clock periods (true word with `φ = 0`,
/// complemented word with `φ = 1`) and returns both period output vectors.
#[derive(Debug)]
pub struct AltSeqDriver<'c> {
    sim: Sim<'c>,
    machine: &'c ScalMachine,
}

impl<'c> AltSeqDriver<'c> {
    /// Creates a driver at the reset state.
    ///
    /// # Panics
    ///
    /// Panics if the circuit fails validation.
    #[must_use]
    pub fn new(machine: &'c ScalMachine) -> Self {
        AltSeqDriver {
            sim: Sim::new(&machine.circuit),
            machine,
        }
    }

    /// Injects a persistent fault.
    pub fn attach(&mut self, o: scal_netlist::Override) {
        self.sim.attach(o);
    }

    /// Applies one information word over two periods; returns the two
    /// per-period output vectors.
    ///
    /// # Panics
    ///
    /// Panics if `word.len()` is not the machine's external input width.
    pub fn apply(&mut self, word: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let mut p1: Vec<bool> = word.to_vec();
        p1.push(false); // φ = 0
        let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
        p2.push(true); // φ = 1
        let o1 = self.sim.step(&p1);
        let o2 = self.sim.step(&p2);
        (o1, o2)
    }

    /// Applies a word and classifies the monitored lines: returns
    /// `(first-period monitored values, all_alternating, code_ok)` where
    /// `code_ok` is the 1-out-of-2 condition on the design's check pair in
    /// the second period (vacuously true without one).
    pub fn apply_checked(&mut self, word: &[bool]) -> (Vec<bool>, bool, bool) {
        let (o1, o2) = self.apply(word);
        let mon = self.machine.monitored();
        let alternating = mon.clone().all(|i| o1[i] != o2[i]);
        let code_ok = match self.machine.code_pair {
            Some((f, g)) => o1[f] != o1[g] && o2[f] != o2[g],
            None => true,
        };
        (o1[mon].to_vec(), alternating, code_ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kohavi::kohavi_0101;

    fn word_seq() -> Vec<Vec<bool>> {
        [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]
            .iter()
            .map(|&s| vec![s == 1])
            .collect()
    }

    #[test]
    fn dual_ff_matches_machine_in_period_one() {
        let m = kohavi_0101();
        let scal = dual_ff_machine(&m);
        let mut drv = AltSeqDriver::new(&scal);
        let golden = m.run(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]);
        for (i, w) in word_seq().iter().enumerate() {
            let (o1, o2) = drv.apply(w);
            assert_eq!(o1[0], golden[i][0], "z at word {i}");
            assert_ne!(o1[0], o2[0], "z must alternate at word {i}");
        }
    }

    #[test]
    fn all_monitored_lines_alternate_fault_free() {
        let m = kohavi_0101();
        let scal = dual_ff_machine(&m);
        let mut drv = AltSeqDriver::new(&scal);
        for w in word_seq() {
            let (_, alternating, code_ok) = drv.apply_checked(&w);
            assert!(alternating && code_ok);
        }
    }

    #[test]
    fn flip_flop_count_is_2n() {
        let m = kohavi_0101();
        let scal = dual_ff_machine(&m);
        assert_eq!(scal.circuit.cost().flip_flops, 2 * m.state_bits());
    }

    #[test]
    fn fault_secure_over_driven_sequences() {
        // For every collapsed fault: at the first word where the monitored
        // outputs differ from golden, some monitored line must fail to
        // alternate (wrong-but-code words never pass silently).
        let m = kohavi_0101();
        let scal = dual_ff_machine(&m);
        let words = word_seq();
        // Golden monitored trace.
        let mut golden = Vec::new();
        {
            let mut drv = AltSeqDriver::new(&scal);
            for w in &words {
                golden.push(drv.apply(w));
            }
        }
        for fault in scal.checkable_faults() {
            let mut drv = AltSeqDriver::new(&scal);
            drv.attach(fault.to_override());
            for (i, w) in words.iter().enumerate() {
                let (o1, o2) = drv.apply(w);
                let mon = scal.monitored();
                let wrong = mon
                    .clone()
                    .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
                if wrong {
                    let nonalt = mon.clone().any(|k| o1[k] == o2[k]);
                    assert!(
                        nonalt,
                        "fault {fault}: wrong code word accepted at word {i}"
                    );
                    break; // detected at first manifestation
                }
            }
        }
    }
}
