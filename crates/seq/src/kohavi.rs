//! The running example of Chapter 4: Kohavi's 0101 sequence detector
//! (Figs. 4.8–4.10) and the Table 4.1 cost comparison.

use crate::dual_ff::dual_ff_machine;
use crate::synth::synthesize;
use crate::translator::code_conversion_machine;
use crate::StateMachine;
use scal_netlist::Circuit;

/// Kohavi's overlapping 0101 sequence detector as a 4-state Mealy machine:
/// output 1 exactly when the last four inputs were `0101` (overlaps
/// allowed).
#[must_use]
pub fn kohavi_0101() -> StateMachine {
    let mut m = StateMachine::new("kohavi-0101", 4, 1, 1);
    // States: 0 = no progress, 1 = "0", 2 = "01", 3 = "010".
    let t = [
        // (state, input, next, out)
        (0, 0, 1, false),
        (0, 1, 0, false),
        (1, 0, 1, false),
        (1, 1, 2, false),
        (2, 0, 3, false),
        (2, 1, 0, false),
        (3, 0, 1, false),
        (3, 1, 2, true), // "0101" seen; overlap keeps "01"
    ];
    for &(s, i, n, o) in &t {
        m.set(s, i, n, &[o]);
    }
    m
}

/// Fig. 4.8: the conventional (unchecked) realization.
#[must_use]
pub fn kohavi_circuit() -> Circuit {
    synthesize(&kohavi_0101())
}

/// Fig. 4.9: Reynolds' dual flip-flop SCAL realization.
#[must_use]
pub fn reynolds_circuit() -> crate::ScalMachine {
    dual_ff_machine(&kohavi_0101())
}

/// Fig. 4.10: the translator (code-conversion) SCAL realization.
#[must_use]
pub fn translator_circuit() -> crate::ScalMachine {
    code_conversion_machine(&kohavi_0101())
}

/// One row of Table 4.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table41Row {
    /// Design name, as in the paper.
    pub design: &'static str,
    /// Flip-flop count reported by the paper (None for generated rows).
    pub paper_flip_flops: Option<usize>,
    /// Gate count reported by the paper.
    pub paper_gates: Option<usize>,
    /// Flip-flops measured on our reconstruction.
    pub measured_flip_flops: usize,
    /// Gates measured on our reconstruction.
    pub measured_gates: usize,
}

/// Regenerates Table 4.1 on the 0101 detector: paper-reported numbers next
/// to the counts measured on our synthesized reconstructions.
///
/// Absolute gate counts differ from the (unreadable) 1977 schematics; the
/// claims that *do* reproduce are structural: dual-FF doubles the memory
/// (`2n`), the translator needs only `n + 1` flip-flops, and both SCAL
/// designs cost roughly 1.5–2× the baseline gates.
#[must_use]
pub fn table_4_1() -> Vec<Table41Row> {
    let base = kohavi_circuit().cost();
    let reynolds = reynolds_circuit().circuit.cost();
    let translator = translator_circuit().circuit.cost();
    vec![
        Table41Row {
            design: "Kohavi example",
            paper_flip_flops: Some(2),
            paper_gates: Some(12),
            measured_flip_flops: base.flip_flops,
            measured_gates: base.gates,
        },
        Table41Row {
            design: "Reynolds example (dual flip-flop)",
            paper_flip_flops: Some(4),
            paper_gates: Some(19),
            measured_flip_flops: reynolds.flip_flops,
            measured_gates: reynolds.gates,
        },
        Table41Row {
            design: "Translator example (code conversion)",
            paper_flip_flops: Some(3),
            paper_gates: Some(23),
            measured_flip_flops: translator.flip_flops,
            measured_gates: translator.gates,
        },
    ]
}

/// The general-case rows of Table 4.1, as closed formulas in the baseline
/// machine's `n` flip-flops and `m` gates (with Reynolds' measured 1.8
/// average gate factor): returns
/// `[(design, flip_flops, gates); 3]` as floating-point gate counts.
#[must_use]
pub fn table_4_1_general(n: usize, m: usize) -> [(&'static str, f64, f64); 3] {
    let nf = n as f64;
    let mf = m as f64;
    [
        ("Kohavi general", nf, mf),
        ("Reynolds general", 2.0 * nf, 1.8 * mf),
        ("Translator general", nf + 1.0, 1.8 * mf + nf + 2.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual_ff::AltSeqDriver;

    #[test]
    fn all_three_detect_the_same_sequences() {
        let m = kohavi_0101();
        let seq: Vec<u32> = vec![0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 1, 0, 1];
        let golden = m.run(&seq);

        // Baseline synchronous circuit.
        let base = kohavi_circuit();
        let mut sim = scal_netlist::Sim::new(&base);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(sim.step(&[s == 1])[0], golden[i][0], "baseline step {i}");
        }

        // Both SCAL designs.
        for scal in [reynolds_circuit(), translator_circuit()] {
            let mut drv = AltSeqDriver::new(&scal);
            for (i, &s) in seq.iter().enumerate() {
                let (o1, o2) = drv.apply(&[s == 1]);
                assert_eq!(o1[0], golden[i][0], "{} word {i}", scal.design);
                assert_ne!(o1[0], o2[0], "{} alternation {i}", scal.design);
            }
        }
    }

    #[test]
    fn table_rows_reproduce_memory_claims() {
        let rows = table_4_1();
        assert_eq!(rows[0].measured_flip_flops, 2); // n
        assert_eq!(rows[1].measured_flip_flops, 4); // 2n
        assert_eq!(rows[2].measured_flip_flops, 3); // n + 1
                                                    // Paper numbers preserved for the report.
        assert_eq!(rows[0].paper_gates, Some(12));
        assert_eq!(rows[1].paper_gates, Some(19));
        assert_eq!(rows[2].paper_gates, Some(23));
    }

    #[test]
    fn scal_designs_cost_more_gates_than_baseline() {
        let rows = table_4_1();
        assert!(rows[1].measured_gates > rows[0].measured_gates);
        assert!(rows[2].measured_gates > rows[0].measured_gates);
    }

    #[test]
    fn general_formulas_match_paper() {
        let g = table_4_1_general(10, 100);
        assert_eq!(g[0].1, 10.0);
        assert_eq!(g[1].1, 20.0);
        assert_eq!(g[2].1, 11.0);
        assert!((g[1].2 - 180.0).abs() < 1e-9);
        assert!((g[2].2 - 192.0).abs() < 1e-9);
        // The translator's memory advantage grows with n while its gate
        // penalty over dual-FF stays additive (n + 2).
        let big = table_4_1_general(100, 1000);
        assert!(big[2].1 < big[1].1);
        assert!(big[2].2 - big[1].2 == 102.0);
    }
}
