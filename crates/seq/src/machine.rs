//! Synchronous Mealy machines (the standard model of Fig. 4.1a).

/// A completely-specified synchronous Mealy machine.
///
/// States are `0..num_states`; input symbols are `0..2^input_bits`; outputs
/// are bit vectors of width `output_bits`. State 0 is the reset state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    name: String,
    num_states: usize,
    input_bits: usize,
    output_bits: usize,
    /// `transitions[state][symbol] = (next_state, outputs)`
    transitions: Vec<Vec<(usize, Vec<bool>)>>,
}

impl StateMachine {
    /// Creates a machine with all transitions self-looping to state 0 with
    /// all-zero outputs; fill in with [`StateMachine::set`].
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `input_bits > 8`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        num_states: usize,
        input_bits: usize,
        output_bits: usize,
    ) -> Self {
        assert!(
            num_states > 0 && output_bits > 0,
            "dimensions must be positive"
        );
        assert!((1..=8).contains(&input_bits), "1..=8 input bits supported");
        StateMachine {
            name: name.into(),
            num_states,
            input_bits,
            output_bits,
            transitions: vec![vec![(0, vec![false; output_bits]); 1 << input_bits]; num_states],
        }
    }

    /// Sets `transitions[state][symbol] = (next, outputs)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or output width mismatch.
    pub fn set(&mut self, state: usize, symbol: u32, next: usize, outputs: &[bool]) {
        assert!(state < self.num_states && next < self.num_states);
        assert!((symbol as usize) < (1 << self.input_bits));
        assert_eq!(outputs.len(), self.output_bits);
        self.transitions[state][symbol as usize] = (next, outputs.to_vec());
    }

    /// Machine name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Input width in bits.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Output width in bits.
    #[must_use]
    pub fn output_bits(&self) -> usize {
        self.output_bits
    }

    /// Number of state bits in the natural binary encoding.
    #[must_use]
    pub fn state_bits(&self) -> usize {
        usize::BITS as usize - (self.num_states - 1).leading_zeros() as usize
    }

    /// The transition function.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range arguments.
    #[must_use]
    pub fn next(&self, state: usize, symbol: u32) -> usize {
        self.transitions[state][symbol as usize].0
    }

    /// The output function.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range arguments.
    #[must_use]
    pub fn output(&self, state: usize, symbol: u32) -> &[bool] {
        &self.transitions[state][symbol as usize].1
    }

    /// Runs the machine from reset over `symbols`, returning the output
    /// vector at each step.
    #[must_use]
    pub fn run(&self, symbols: &[u32]) -> Vec<Vec<bool>> {
        let mut state = 0usize;
        symbols
            .iter()
            .map(|&s| {
                let out = self.output(state, s).to_vec();
                state = self.next(state, s);
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kohavi::kohavi_0101;

    #[test]
    fn state_bits_rounding() {
        assert_eq!(StateMachine::new("m", 1, 1, 1).state_bits(), 0);
        assert_eq!(StateMachine::new("m", 2, 1, 1).state_bits(), 1);
        assert_eq!(StateMachine::new("m", 3, 1, 1).state_bits(), 2);
        assert_eq!(StateMachine::new("m", 4, 1, 1).state_bits(), 2);
        assert_eq!(StateMachine::new("m", 5, 1, 1).state_bits(), 3);
    }

    #[test]
    fn kohavi_machine_detects_0101() {
        let m = kohavi_0101();
        let seq = [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1];
        let outs = m.run(&seq);
        let hits: Vec<usize> = outs
            .iter()
            .enumerate()
            .filter(|(_, o)| o[0])
            .map(|(i, _)| i)
            .collect();
        // 0101 completes at indices 3 and 5 (overlapping), then the stream
        // breaks with 1 at index 6, and 0101 completes again at index 10.
        assert_eq!(hits, vec![3, 5, 10]);
    }

    #[test]
    fn run_is_reset_deterministic() {
        let m = kohavi_0101();
        assert_eq!(m.run(&[0, 1, 0, 1]), m.run(&[0, 1, 0, 1]));
    }
}
