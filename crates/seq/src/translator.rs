//! Code conversion between time and space redundancy: the ALPT and PALT
//! translators (Figs. 4.3–4.6) and the memory-efficient sequential SCAL
//! machine built from them — the paper's own contribution.
//!
//! The state word is processed as alternating signals but *stored* in an
//! `(n+1)`-bit parity code, the minimum distance-2 space code, so the
//! feedback memory costs `n + 1` flip-flops instead of the dual-flip-flop
//! design's `2n`.
//!
//! ## Modelling notes (vs. the 1977 schematics)
//!
//! The paper's latches are edge-triggered by the period clock `φ` itself
//! (data on one `φ` edge, parity on the other). Our simulator has a single
//! synchronous clock — one step per period — so "latch on a `φ` edge"
//! becomes an *enable-multiplexed* flip-flop (`d = en·new ∨ ēn·q`), and both
//! the complemented data word `Ȳ` and its reference parity `⊕Ȳ` are captured
//! at the end of the second period, from **separate lines** (each data bit
//! from its own `Y` branch, the parity from its own XOR tree). Any single
//! fault therefore corrupts the stored data or the stored parity but not
//! both consistently, which is what Theorems 4.1–4.4 actually require; the
//! clock-distribution caveat the paper resolves by assumption ("all fan out
//! of the clock φ is from a common node … if all clock lines fail, the
//! system will stop") maps here to the `phi` input stem, whose faults are
//! caught by the self-dual core's outputs going non-alternating.
//!
//! An odd word size is handled the paper's way — folding the period clock
//! into the parity recomputation — so no padding bit is stored.

use crate::dual_ff::ScalMachine;
use crate::synth::self_dual_core;
use crate::StateMachine;
use scal_netlist::{Circuit, GateKind, NodeId};

/// Builds an enable-multiplexed D flip-flop: latches `new` at the end of
/// steps where `en` is high, holds otherwise.
fn enable_ff(c: &mut Circuit, en: NodeId, nen: NodeId, new: NodeId, init: bool) -> NodeId {
    let ff = c.dff(init);
    let take = c.and(&[en, new]);
    let hold = c.and(&[nen, ff]);
    let d = c.or(&[take, hold]);
    c.connect_dff(ff, d);
    ff
}

/// The Alternating-Logic-to-Parity Translator (Fig. 4.4a) as a standalone
/// circuit.
///
/// Inputs: `y0..y{n-1}` (alternating lines), `phi`. Outputs: the stored
/// word `t0..t{n-1}` (the complemented second-period data) and its stored
/// reference parity `tp` — together an `(n+1)`-bit word of constant parity
/// (`n mod 2`), i.e. a distance-2 parity code.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn alpt(n: usize) -> Circuit {
    assert!(n > 0, "translator needs at least one line");
    let mut c = Circuit::new();
    let ys: Vec<NodeId> = (0..n).map(|i| c.input(format!("y{i}"))).collect();
    let phi = c.input("phi");
    let nphi_shared = c.not(phi); // for the parity latch only
    let parity = c.xor(&ys);
    for (i, &y) in ys.iter().enumerate() {
        // Each data latch gets its own clock-select inverter so a single
        // inverter fault stales one bit only (caught by the parity check).
        let nphi_i = c.not(phi);
        let ff = enable_ff(&mut c, phi, nphi_i, y, false);
        c.mark_output(format!("t{i}"), ff);
    }
    let pff = enable_ff(&mut c, phi, nphi_shared, parity, n % 2 == 1);
    c.mark_output("tp", pff);
    c
}

/// The Parity-to-Alternating-Logic Translator (Fig. 4.4b) as a standalone
/// circuit.
///
/// Inputs: the stored word `t0..t{n-1}`, its parity rail `tp`, and `phi`.
/// Outputs: the regenerated alternating lines `y0..y{n-1}`
/// (`yᵢ = tᵢ ⊕ φ̄`, i.e. true data in period 1, complemented in period 2)
/// and the 1-out-of-2 code pair (`chk_f`, `chk_g`) that is one-hot in *both*
/// periods exactly when the stored word is parity-consistent.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn palt(n: usize) -> Circuit {
    assert!(n > 0, "translator needs at least one line");
    let mut c = Circuit::new();
    let ts: Vec<NodeId> = (0..n).map(|i| c.input(format!("t{i}"))).collect();
    let tp = c.input("tp");
    let phi = c.input("phi");
    let ys: Vec<NodeId> = ts
        .iter()
        .map(|&t| c.gate(GateKind::Xnor, &[t, phi]))
        .collect();
    for (i, &y) in ys.iter().enumerate() {
        c.mark_output(format!("y{i}"), y);
    }
    let (chk_f, chk_g) = parity_check_pair(&mut c, &ys, tp, phi, n);
    c.mark_output("chk_f", chk_f);
    c.mark_output("chk_g", chk_g);
    c
}

/// Builds the recomputed-parity rail against the stored rail: returns
/// `(chk_f, chk_g)`, one-hot iff consistent (both periods; the period clock
/// folds into the recomputation for odd word sizes).
fn parity_check_pair(
    c: &mut Circuit,
    ys: &[NodeId],
    tp: NodeId,
    phi: NodeId,
    n: usize,
) -> (NodeId, NodeId) {
    let mut terms: Vec<NodeId> = ys.to_vec();
    if n % 2 == 1 {
        let nphi = c.not(phi);
        terms.push(nphi);
    }
    let recomputed = c.xor(&terms);
    let chk_f = c.not(recomputed);
    (chk_f, tp)
}

/// Converts a machine to a SCAL machine with the code-conversion technique
/// (Fig. 4.5): self-dual core, inline PALT feeding the feedback variables,
/// inline ALPT storing the next state as an `(n+1)`-bit parity word.
///
/// Flip-flop cost: `n + 1` (the paper's headline number; compare
/// [`crate::dual_ff_machine`]'s `2n`).
///
/// Circuit outputs: `z0..`, the monitored core lines `Y0..`, then the code
/// pair `chk_f`, `chk_g`.
#[must_use]
pub fn code_conversion_machine(m: &StateMachine) -> ScalMachine {
    let core = self_dual_core(m);
    let ib = m.input_bits();
    let sb = m.state_bits();
    let zb = m.output_bits();

    let mut c = Circuit::new();
    let xs: Vec<NodeId> = (0..ib).map(|i| c.input(format!("x{i}"))).collect();
    let phi = c.input("phi");

    // PALT read side: y_i = t_i ⊕ φ̄ = XNOR(t_i, φ). The flip-flops are
    // created first (feedback), wired by the ALPT below. The stored word is
    // the complemented state, so reset state 0 is stored as all-ones.
    let data_ffs: Vec<NodeId> = (0..sb).map(|_| c.dff(true)).collect();
    let parity_init = sb % 2 == 1; // ⊕ of the all-ones reset word
    let parity_ff = c.dff(parity_init);

    let ys: Vec<NodeId> = data_ffs
        .iter()
        .map(|&t| c.gate(GateKind::Xnor, &[t, phi]))
        .collect();

    // The self-dual core.
    let mut core_inputs = xs;
    core_inputs.extend(&ys);
    core_inputs.push(phi);
    let outs = c.import(&core, &core_inputs);
    let z_lines = &outs[..zb];
    let y_lines = &outs[zb..];

    // ALPT write side: capture Ȳ (second-period values) and its parity at
    // the end of period 2 (enable = φ), each latch with a private
    // clock-select inverter.
    for (k, &yline) in y_lines.iter().enumerate() {
        let nphi_k = c.not(phi);
        let take = c.and(&[phi, yline]);
        let hold = c.and(&[nphi_k, data_ffs[k]]);
        let d = c.or(&[take, hold]);
        c.connect_dff(data_ffs[k], d);
    }
    {
        let nphi_p = c.not(phi);
        let parity = c.xor(y_lines);
        let take = c.and(&[phi, parity]);
        let hold = c.and(&[nphi_p, parity_ff]);
        let d = c.or(&[take, hold]);
        c.connect_dff(parity_ff, d);
    }

    // PALT check side.
    let (chk_f, chk_g) = parity_check_pair(&mut c, &ys, parity_ff, phi, sb);

    for (k, &z) in z_lines.iter().enumerate() {
        c.mark_output(format!("z{k}"), z);
    }
    for (k, &y) in y_lines.iter().enumerate() {
        c.mark_output(format!("Y{k}"), y);
    }
    c.mark_output("chk_f", chk_f);
    c.mark_output("chk_g", chk_g);

    ScalMachine {
        circuit: c,
        z_count: zb,
        y_count: sb,
        code_pair: Some((zb + sb, zb + sb + 1)),
        design: "code conversion (translator)".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual_ff::AltSeqDriver;
    use crate::kohavi::kohavi_0101;
    use scal_netlist::{NodeView, Sim, Site};

    #[test]
    fn alpt_stores_complemented_word_and_parity() {
        for n in [2usize, 3, 4] {
            let c = alpt(n);
            let mut sim = Sim::new(&c);
            let word: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            // Period 1: y = word, φ = 0.
            let mut p1 = word.clone();
            p1.push(false);
            sim.step(&p1);
            // Period 2: y = ¬word, φ = 1.
            let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
            p2.push(true);
            sim.step(&p2);
            // Stored: t = ¬word, tp = ⊕(¬word).
            let state = sim.state();
            for i in 0..n {
                assert_eq!(state[i], !word[i], "n={n} bit {i}");
            }
            let parity = word.iter().map(|&b| !b).fold(false, |a, b| a ^ b);
            assert_eq!(state[n], parity, "n={n} parity");
        }
    }

    #[test]
    fn alpt_word_has_constant_overall_parity() {
        let n = 4;
        let c = alpt(n);
        for word_bits in 0..16u32 {
            let mut sim = Sim::new(&c);
            let word: Vec<bool> = (0..n).map(|i| (word_bits >> i) & 1 == 1).collect();
            let mut p1 = word.clone();
            p1.push(false);
            sim.step(&p1);
            let mut p2: Vec<bool> = word.iter().map(|&b| !b).collect();
            p2.push(true);
            sim.step(&p2);
            let overall = sim.state().iter().fold(false, |a, &b| a ^ b);
            assert_eq!(overall, n % 2 == 1, "distance-2 code invariant");
        }
    }

    #[test]
    fn palt_regenerates_alternating_word_with_valid_code() {
        for n in [2usize, 3] {
            let c = palt(n);
            for stored in 0..(1u32 << n) {
                let t: Vec<bool> = (0..n).map(|i| (stored >> i) & 1 == 1).collect();
                let tp = t.iter().fold(false, |a, &b| a ^ b); // consistent parity
                for phi in [false, true] {
                    let mut ins = t.clone();
                    ins.push(tp);
                    ins.push(phi);
                    let out = c.eval(&ins);
                    for i in 0..n {
                        assert_eq!(out[i], !(t[i] ^ phi), "y{i} = t ⊕ φ̄");
                    }
                    assert_ne!(out[n], out[n + 1], "code pair must be one-hot");
                }
            }
        }
    }

    #[test]
    fn palt_flags_any_single_bit_corruption() {
        for n in [2usize, 3, 5] {
            let c = palt(n);
            for stored in 0..(1u32 << n) {
                let t: Vec<bool> = (0..n).map(|i| (stored >> i) & 1 == 1).collect();
                let good_tp = t.iter().fold(false, |a, &b| a ^ b);
                for corrupt in 0..=n {
                    let mut word = t.clone();
                    let mut tp = good_tp;
                    if corrupt < n {
                        word[corrupt] = !word[corrupt];
                    } else {
                        tp = !tp;
                    }
                    for phi in [false, true] {
                        let mut ins = word.clone();
                        ins.push(tp);
                        ins.push(phi);
                        let out = c.eval(&ins);
                        assert_eq!(
                            out[n],
                            out[n + 1],
                            "corrupt bit {corrupt} must break the code (n={n})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn code_conversion_matches_machine_in_period_one() {
        let m = kohavi_0101();
        let scal = code_conversion_machine(&m);
        let seq = [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1];
        let golden = m.run(&seq);
        let mut drv = AltSeqDriver::new(&scal);
        for (i, &s) in seq.iter().enumerate() {
            let (o1, o2) = drv.apply(&[s == 1]);
            assert_eq!(o1[0], golden[i][0], "z at word {i}");
            assert_ne!(o1[0], o2[0], "z must alternate");
        }
    }

    #[test]
    fn code_pair_valid_in_both_periods_fault_free() {
        let m = kohavi_0101();
        let scal = code_conversion_machine(&m);
        let (f, g) = scal.code_pair.unwrap();
        let mut drv = AltSeqDriver::new(&scal);
        for &s in &[0u32, 1, 0, 1, 1, 0, 0, 1, 0, 1] {
            let (o1, o2) = drv.apply(&[s == 1]);
            assert_ne!(o1[f], o1[g], "period-1 code");
            assert_ne!(o2[f], o2[g], "period-2 code");
        }
    }

    #[test]
    fn flip_flop_count_is_n_plus_one() {
        let m = kohavi_0101();
        let scal = code_conversion_machine(&m);
        assert_eq!(scal.circuit.cost().flip_flops, m.state_bits() + 1);
    }

    #[test]
    fn fault_secure_over_driven_sequences() {
        // Same property as the dual-FF design, with the code pair as an
        // additional monitored check; the φ input stem is the paper's
        // common-clock hardcore assumption (its faults are still caught —
        // by non-alternation — but are checked separately below).
        let m = kohavi_0101();
        let scal = code_conversion_machine(&m);
        let words: Vec<Vec<bool>> = [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1]
            .iter()
            .map(|&s| vec![s == 1])
            .collect();
        let mut golden = Vec::new();
        {
            let mut drv = AltSeqDriver::new(&scal);
            for w in &words {
                golden.push(drv.apply(w));
            }
        }
        let (cf, cg) = scal.code_pair.unwrap();
        for fault in scal.checkable_faults() {
            let mut drv = AltSeqDriver::new(&scal);
            drv.attach(fault.to_override());
            for (i, w) in words.iter().enumerate() {
                let (o1, o2) = drv.apply(w);
                let mon = scal.monitored();
                let wrong = mon
                    .clone()
                    .any(|k| o1[k] != golden[i].0[k] || o2[k] != golden[i].1[k]);
                let flagged =
                    mon.clone().any(|k| o1[k] == o2[k]) || o1[cf] == o1[cg] || o2[cf] == o2[cg];
                if wrong {
                    assert!(
                        flagged,
                        "fault {fault}: wrong code word accepted at word {i}"
                    );
                    break;
                }
                // Even when outputs are still right, a flagged pair is fine
                // (early detection) — no assertion needed.
            }
        }
    }

    #[test]
    fn phi_stem_fault_is_caught_by_nonalternation() {
        let m = kohavi_0101();
        let scal = code_conversion_machine(&m);
        let phi = scal
            .circuit
            .inputs()
            .iter()
            .copied()
            .find(|&i| scal.circuit.name(i) == Some("phi"))
            .unwrap();
        assert_eq!(scal.circuit.view(phi), NodeView::Input);
        for stuck in [false, true] {
            let mut drv = AltSeqDriver::new(&scal);
            drv.attach(scal_netlist::Override {
                site: Site::Stem(phi),
                value: stuck,
            });
            let mut caught = false;
            for &s in &[0u32, 1, 0, 1] {
                let (_, alternating, code_ok) = drv.apply_checked(&[s == 1]);
                if !alternating || !code_ok {
                    caught = true;
                    break;
                }
            }
            assert!(caught, "φ stuck-at-{stuck} must be flagged");
        }
    }
}
