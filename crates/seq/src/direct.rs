//! Direct implementation of sequential SCAL (§4.4, Fig. 4.7): the design
//! taxonomy and the paper's verdicts.
//!
//! The paper enumerates eight ways to design the feedback logic, by whether
//! an output checker is used and whether the feedback word is parity- or
//! alternating-coded on each side of the combinational logic, and concludes
//! that only the alternating/alternating case (case 4 — Sections 4.2/4.3)
//! is worth building: "techniques of directly implementing sequential SCAL
//! through modified sequential machine design techniques will not be
//! worthwhile."

/// How the feedback word is encoded on one side of the combinational logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedbackCode {
    /// Space-redundant parity code (`n + 1` lines, one period).
    Parity,
    /// Time-redundant alternating code (`n` lines, two periods).
    Alternating,
}

/// One cell of the Fig. 4.7 taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackDesign {
    /// Case number 1–8, matching Fig. 4.7.
    pub case: u8,
    /// Whether the design keeps an output checker on the feedback variables.
    pub output_checker: bool,
    /// Encoding of the combinational logic's feedback *inputs*.
    pub input_code: FeedbackCode,
    /// Encoding of the combinational logic's feedback *outputs*.
    pub output_code: FeedbackCode,
    /// The paper's assessment.
    pub verdict: &'static str,
}

/// The full Fig. 4.7 table with the §4.4 verdicts.
#[must_use]
pub fn taxonomy() -> Vec<FeedbackDesign> {
    use FeedbackCode::{Alternating, Parity};
    let verdicts = [
        "loses alternating logic's advantage entirely; double time with no value",
        "loses the combinational advantages without reducing memory",
        "restricts logic sharing severely; the ALPT is the cheaper way to make parity",
        "the working design: Sections 4.2 (dual flip-flop) and 4.3 (code conversion)",
        "unchecked feedback violates fault security (wrong state accepted)",
        "unchecked feedback violates fault security",
        "unchecked feedback violates fault security",
        "unchecked feedback can turn one fault into a multiple fault at the inputs",
    ];
    let mut out = Vec::new();
    for (idx, &(checker, ic, oc)) in [
        (true, Parity, Parity),
        (true, Parity, Alternating),
        (true, Alternating, Parity),
        (true, Alternating, Alternating),
        (false, Parity, Parity),
        (false, Parity, Alternating),
        (false, Alternating, Parity),
        (false, Alternating, Alternating),
    ]
    .iter()
    .enumerate()
    {
        out.push(FeedbackDesign {
            case: (idx + 1) as u8,
            output_checker: checker,
            input_code: ic,
            output_code: oc,
            verdict: verdicts[idx],
        });
    }
    out
}

/// Demonstrates §4.4's core objection to unchecked feedback: a fault that
/// corrupts a feedback variable without an output checker lets the machine
/// sit in a wrong state while emitting perfectly alternating outputs.
///
/// Returns `(words_until_wrong, ever_flagged_by_z_alone)` for a stuck fault
/// on a feedback line of the dual flip-flop Kohavi machine when only the
/// external `z` output (not the `Y` lines) is monitored.
#[must_use]
pub fn unchecked_feedback_demo() -> (usize, bool) {
    use crate::dual_ff::AltSeqDriver;
    use crate::kohavi::{kohavi_0101, reynolds_circuit};
    let m = kohavi_0101();
    let scal = reynolds_circuit();
    let words = [0u32, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1];
    let golden = m.run(&words);
    // Stick the first feedback flip-flop's output.
    let ff = scal.circuit.dffs()[0];
    let mut drv = AltSeqDriver::new(&scal);
    drv.attach(scal_netlist::Override {
        site: scal_netlist::Site::Stem(ff),
        value: true,
    });
    let mut first_wrong = words.len();
    let mut z_flagged = false;
    for (i, &s) in words.iter().enumerate() {
        let (o1, o2) = drv.apply(&[s == 1]);
        if o1[0] == o2[0] {
            z_flagged = true;
            break;
        }
        if o1[0] != golden[i][0] && first_wrong == words.len() {
            first_wrong = i;
        }
    }
    (first_wrong, z_flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_eight_cases() {
        let t = taxonomy();
        assert_eq!(t.len(), 8);
        assert_eq!(t[3].case, 4);
        assert!(t[3].output_checker);
        assert_eq!(t[3].input_code, FeedbackCode::Alternating);
        assert_eq!(t[3].output_code, FeedbackCode::Alternating);
        assert!(t[3].verdict.contains("working design"));
        assert!(t[4..].iter().all(|d| !d.output_checker));
    }

    #[test]
    fn unchecked_feedback_is_dangerous_or_lucky() {
        // Either the z output alone eventually goes non-alternating (lucky
        // for this machine) or the machine emits wrong-but-alternating
        // outputs — the demo records which; the invariant we assert is that
        // the fault *does* corrupt behaviour, motivating feedback checking.
        let (first_wrong, z_flagged) = unchecked_feedback_demo();
        assert!(
            z_flagged || first_wrong < 11,
            "the stuck feedback bit must manifest somehow"
        );
    }
}
