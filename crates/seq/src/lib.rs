//! Sequential self-checking alternating logic — Chapter 4, the core of the
//! ISCA 1978 paper.
//!
//! Two working designs convert an arbitrary synchronous machine into a SCAL
//! machine:
//!
//! * **Dual flip-flop** (Reynolds, Fig. 4.2): make the combinational core
//!   self-dual (one extra period-clock input) and double the flip-flops in
//!   the feedback path, so state feedback alternates in unison with the
//!   inputs. Memory cost: `2n` flip-flops.
//! * **Code conversion** (this paper's contribution, Figs. 4.3–4.6): keep the
//!   alternating signals in the processor but store the state in an
//!   `(n+1)`-bit *parity* code — the minimum distance-2 space code — using
//!   two small translators: the **ALPT** (alternating logic → parity,
//!   Fig. 4.4a) and the **PALT** (parity → alternating logic, Fig. 4.4b).
//!   Memory cost: `n + 1` flip-flops, the win that grows with machine size
//!   (Table 4.1).
//!
//! The **direct implementation** alternatives of §4.4 (Fig. 4.7) are encoded
//! in [`direct::FeedbackDesign`] with the paper's verdicts.
//!
//! The module [`kohavi`] carries the running example — Kohavi's 0101
//! sequence detector (Figs. 4.8–4.10) — and regenerates Table 4.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod counters;
pub mod direct;
pub mod dual_ff;
pub mod kohavi;
pub mod machine;
pub mod patterns;
pub mod synth;
pub mod translator;

pub use campaign::{Campaign, SeqBackend, SeqCampaign, SeqOutcome};
pub use dual_ff::{dual_ff_machine, ScalMachine};
pub use machine::StateMachine;
pub use synth::{self_dual_core, synthesize};
pub use translator::{alpt, code_conversion_machine, palt};
