//! Parameterized sequence detectors: the Kohavi example generalized, so the
//! Table 4.1 comparison can be *measured* (not just formula'd) across
//! machine sizes.

use crate::dual_ff::dual_ff_machine;
use crate::synth::synthesize;
use crate::translator::code_conversion_machine;
use crate::StateMachine;

/// Builds the overlapping detector for a binary `pattern`: the Mealy
/// machine outputs 1 exactly when the last `pattern.len()` inputs equal the
/// pattern (overlaps allowed), via the KMP automaton.
///
/// # Panics
///
/// Panics if the pattern is empty or longer than 16 bits.
#[must_use]
pub fn pattern_detector(pattern: &[bool]) -> StateMachine {
    let l = pattern.len();
    assert!((1..=16).contains(&l), "pattern length 1..=16");
    // KMP prefix function.
    let mut fail = vec![0usize; l];
    let mut k = 0usize;
    for i in 1..l {
        while k > 0 && pattern[i] != pattern[k] {
            k = fail[k - 1];
        }
        if pattern[i] == pattern[k] {
            k += 1;
        }
        fail[i] = k;
    }
    // delta(state s = matched prefix length, input b) -> new matched length.
    let delta = |mut s: usize, b: bool| -> usize {
        loop {
            if b == pattern[s] {
                return s + 1;
            }
            if s == 0 {
                return 0;
            }
            s = fail[s - 1];
        }
    };

    let name = format!(
        "detect-{}",
        pattern
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>()
    );
    let mut m = StateMachine::new(name, l, 1, 1);
    for s in 0..l {
        for b in [false, true] {
            let matched = delta(s, b);
            let hit = matched == l;
            let next = if hit { fail[l - 1] } else { matched };
            // `matched == l` means full pattern: output 1, fall back to the
            // longest proper border; otherwise continue at `matched`.
            let next = delta_clamp(next, l);
            m.set(s, u32::from(b), next, &[hit]);
        }
    }
    m
}

fn delta_clamp(s: usize, l: usize) -> usize {
    debug_assert!(s < l, "KMP state must stay within 0..l");
    s.min(l - 1)
}

/// A measured Table 4.1 row for one detector size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredRow {
    /// Pattern length (states = length, state bits n = ⌈log₂ length⌉).
    pub pattern_len: usize,
    /// Baseline (flip-flops, gates).
    pub baseline: (usize, usize),
    /// Dual flip-flop design (flip-flops, gates).
    pub dual_ff: (usize, usize),
    /// Code-conversion design (flip-flops, gates).
    pub translator: (usize, usize),
}

/// Synthesizes all three designs for detectors of the given pattern lengths
/// (alternating 01… patterns) and measures their costs — the empirical
/// counterpart of Table 4.1's general case.
#[must_use]
pub fn measured_sweep(lengths: &[usize]) -> Vec<MeasuredRow> {
    lengths
        .iter()
        .map(|&l| {
            let pattern: Vec<bool> = (0..l).map(|i| i % 2 == 1).collect();
            let m = pattern_detector(&pattern);
            let base = synthesize(&m).cost();
            let dff = dual_ff_machine(&m).circuit.cost();
            let tr = code_conversion_machine(&m).circuit.cost();
            MeasuredRow {
                pattern_len: l,
                baseline: (base.flip_flops, base.gates),
                dual_ff: (dff.flip_flops, dff.gates),
                translator: (tr.flip_flops, tr.gates),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual_ff::AltSeqDriver;
    use crate::kohavi::kohavi_0101;

    fn brute_hits(pattern: &[bool], stream: &[bool]) -> Vec<usize> {
        (0..stream.len())
            .filter(|&i| i + 1 >= pattern.len() && stream[i + 1 - pattern.len()..=i] == *pattern)
            .collect()
    }

    #[test]
    fn matches_kohavi_for_0101() {
        let p = [false, true, false, true];
        let m = pattern_detector(&p);
        let k = kohavi_0101();
        let stream: Vec<u32> = (0..64).map(|i| u32::from((i * 5 + 2) % 3 == 0)).collect();
        assert_eq!(m.run(&stream), k.run(&stream));
    }

    #[test]
    fn detector_matches_brute_force_for_many_patterns() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![true],
            vec![false, false],
            vec![true, true, false],
            vec![false, true, false, true],
            vec![true, false, false, true, false],
            vec![false, false, false, false],
            vec![true, true, true, false, true, true],
        ];
        for pattern in patterns {
            let m = pattern_detector(&pattern);
            let stream: Vec<bool> = (0..80).map(|i| (i * 7 + 1) % 5 < 2).collect();
            let symbols: Vec<u32> = stream.iter().map(|&b| u32::from(b)).collect();
            let got: Vec<usize> = m
                .run(&symbols)
                .iter()
                .enumerate()
                .filter(|(_, o)| o[0])
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, brute_hits(&pattern, &stream), "pattern {pattern:?}");
        }
    }

    #[test]
    fn scal_designs_of_generated_detectors_work() {
        let pattern = [true, false, false, true];
        let m = pattern_detector(&pattern);
        let stream: Vec<bool> = (0..40).map(|i| (i * 3 + 1) % 4 < 2).collect();
        let symbols: Vec<u32> = stream.iter().map(|&b| u32::from(b)).collect();
        let golden = m.run(&symbols);
        for scal in [
            crate::dual_ff_machine(&m),
            crate::code_conversion_machine(&m),
        ] {
            let mut drv = AltSeqDriver::new(&scal);
            for (i, &b) in stream.iter().enumerate() {
                let (o1, o2) = drv.apply(&[b]);
                assert_eq!(o1[0], golden[i][0], "{} word {i}", scal.design);
                assert_ne!(o1[0], o2[0]);
            }
        }
    }

    #[test]
    fn measured_sweep_reproduces_memory_scaling() {
        let rows = measured_sweep(&[4, 8, 16]);
        for row in &rows {
            let n = row.baseline.0;
            assert_eq!(
                row.dual_ff.0,
                2 * n,
                "dual-FF memory at L={}",
                row.pattern_len
            );
            assert_eq!(
                row.translator.0,
                n + 1,
                "translator memory at L={}",
                row.pattern_len
            );
            assert!(row.dual_ff.1 > row.baseline.1);
            assert!(row.translator.1 > row.baseline.1);
        }
        // The translator's flip-flop advantage widens with machine size.
        assert!(
            rows[2].dual_ff.0 - rows[2].translator.0 > rows[0].dual_ff.0 - rows[0].translator.0
        );
    }
}
