//! The wide-word abstraction behind 2-D packed evaluation: a `Word<W>` is
//! `W` independent 64-lane sub-words evaluated simultaneously, written as
//! plain safe array loops that LLVM autovectorizes to AVX2 (`W = 4`) or
//! AVX-512 (`W = 8`) registers when the target supports them.
//!
//! Width selection is runtime-configurable: [`resolve_word_width`] combines
//! the `EngineConfig::word_width` knob, the `SCAL_WORD_WIDTH` environment
//! variable, and [`auto_word_width`] CPU-feature detection. Campaign drivers
//! monomorphize their hot loops per supported width and dispatch once per
//! run, so the inner sweeps stay branch-free.

use crate::error::EngineError;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// The word widths the engine monomorphizes: scalar, AVX2-sized (4 × u64 =
/// 256 bits), and AVX-512-sized (8 × u64 = 512 bits).
pub const WORD_WIDTHS: [usize; 3] = [1, 4, 8];

/// Environment variable overriding the automatic word-width selection
/// (accepted values: `1`, `4`, `8`). `EngineConfig::word_width` takes
/// precedence when non-zero.
pub const SCAL_WORD_WIDTH_ENV: &str = "SCAL_WORD_WIDTH";

/// A wide evaluation word: `W` independent 64-lane sub-words.
///
/// All bitwise operators act lane-wise across every sub-word. The type is
/// deliberately a plain `[u64; W]` wrapper with safe per-element loops — no
/// intrinsics — so the same code compiles on every target and vectorizes
/// where profitable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Word<const W: usize>(pub(crate) [u64; W]);

impl<const W: usize> Word<W> {
    /// The all-zeros word.
    pub const ZERO: Word<W> = Word([0; W]);

    /// The all-zeros word.
    #[inline]
    #[must_use]
    pub fn zero() -> Self {
        Self::ZERO
    }

    /// The all-ones word.
    #[inline]
    #[must_use]
    pub fn ones() -> Self {
        Self::splat(u64::MAX)
    }

    /// Broadcasts one 64-lane sub-word to every sub-word position.
    #[inline]
    #[must_use]
    pub fn splat(v: u64) -> Self {
        Word([v; W])
    }

    /// All lanes of all sub-words set to `b`.
    #[inline]
    #[must_use]
    pub fn splat_bool(b: bool) -> Self {
        Self::splat(0u64.wrapping_sub(u64::from(b)))
    }

    /// Wraps a single sub-word; only meaningful glue for `W = 1`.
    #[inline]
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        let mut w = [0u64; W];
        w[0] = v;
        Word(w)
    }

    /// Builds a word sub-word by sub-word.
    #[inline]
    #[must_use]
    pub fn from_fn(f: impl FnMut(usize) -> u64) -> Self {
        Word(core::array::from_fn(f))
    }

    /// `true` iff every lane of every sub-word is zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Sub-word `i` (64 lanes).
    // "sub" as in sub-word, not subtraction; `Word` has no arithmetic.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn sub(self, i: usize) -> u64 {
        self.0[i]
    }

    /// Sub-word 0 — the whole word when `W = 1`.
    #[inline]
    #[must_use]
    pub fn first(self) -> u64 {
        self.0[0]
    }

    /// Overwrites sub-word `i`.
    #[inline]
    pub fn set_sub(&mut self, i: usize, v: u64) {
        self.0[i] = v;
    }

    /// Per sub-word, broadcasts lane 0 (the golden lane of a fault-packed
    /// word) across all 64 lanes: `0u64.wrapping_sub(w & 1)`.
    #[inline]
    #[must_use]
    pub fn golden_splat(self) -> Self {
        let mut out = self.0;
        for w in &mut out {
            *w = 0u64.wrapping_sub(*w & 1);
        }
        Word(out)
    }

    /// `(self & !mask) | (value & mask)` — the masked-force blend.
    #[inline]
    #[must_use]
    pub fn blend(self, value: Self, mask: Self) -> Self {
        (self & !mask) | (value & mask)
    }
}

impl<const W: usize> Default for Word<W> {
    fn default() -> Self {
        Self::ZERO
    }
}

macro_rules! word_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $assign_op:tt) => {
        impl<const W: usize> $trait for Word<W> {
            type Output = Word<W>;

            #[inline]
            fn $method(self, rhs: Word<W>) -> Word<W> {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o $assign_op *r;
                }
                Word(out)
            }
        }

        impl<const W: usize> $assign_trait for Word<W> {
            #[inline]
            fn $assign_method(&mut self, rhs: Word<W>) {
                for (o, r) in self.0.iter_mut().zip(rhs.0.iter()) {
                    *o $assign_op *r;
                }
            }
        }
    };
}

word_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
word_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
word_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl<const W: usize> Not for Word<W> {
    type Output = Word<W>;

    #[inline]
    fn not(self) -> Word<W> {
        let mut out = self.0;
        for o in &mut out {
            *o = !*o;
        }
        Word(out)
    }
}

/// CPU SIMD features relevant to word-width selection that the running
/// machine supports, as stable lowercase names (subset of
/// `["avx2", "avx512f"]`; empty on non-x86 targets).
#[must_use]
pub fn detected_cpu_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
    }
    features
}

/// The widest profitable word width for this machine: 8 with AVX-512, 4
/// with AVX2, otherwise 1 (including every non-x86 target, where narrower
/// vectors rarely beat the scalar path on these masked-word kernels).
#[must_use]
pub fn auto_word_width() -> usize {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return 8;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return 4;
        }
    }
    1
}

/// Resolves the effective word width from, in precedence order: the
/// `requested` config value (`0` = unset), the [`SCAL_WORD_WIDTH_ENV`]
/// environment variable, and [`auto_word_width`] detection.
///
/// # Errors
///
/// Returns [`EngineError::InvalidConfig`] when the requested or
/// environment value is not one of [`WORD_WIDTHS`].
pub fn resolve_word_width(requested: usize) -> Result<usize, EngineError> {
    fn validate(width: usize, origin: &str) -> Result<usize, EngineError> {
        if WORD_WIDTHS.contains(&width) {
            Ok(width)
        } else {
            Err(EngineError::InvalidConfig {
                reason: format!("{origin} word width must be one of {WORD_WIDTHS:?}, got {width}"),
            })
        }
    }
    if requested != 0 {
        return validate(requested, "configured");
    }
    match std::env::var(SCAL_WORD_WIDTH_ENV) {
        Ok(raw) => {
            let width = raw
                .trim()
                .parse::<usize>()
                .map_err(|_| EngineError::InvalidConfig {
                    reason: format!("{SCAL_WORD_WIDTH_ENV} must be an integer, got {raw:?}"),
                })?;
            validate(width, SCAL_WORD_WIDTH_ENV)
        }
        Err(_) => Ok(auto_word_width()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops_act_per_sub_word() {
        let a = Word::<4>([0b1100, 0b1010, u64::MAX, 0]);
        let b = Word::<4>([0b1010, 0b1010, 0, u64::MAX]);
        assert_eq!((a & b).0, [0b1000, 0b1010, 0, 0]);
        assert_eq!((a | b).0, [0b1110, 0b1010, u64::MAX, u64::MAX]);
        assert_eq!((a ^ b).0, [0b0110, 0, u64::MAX, u64::MAX]);
        assert_eq!((!Word::<4>::ZERO).0, [u64::MAX; 4]);
        let mut c = a;
        c &= b;
        assert_eq!(c, a & b);
        c = a;
        c |= b;
        assert_eq!(c, a | b);
        c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn splat_sub_and_zero_checks() {
        let w = Word::<8>::splat(7);
        assert!((0..8).all(|i| w.sub(i) == 7));
        assert!(Word::<8>::ZERO.is_zero());
        assert!(!w.is_zero());
        assert_eq!(Word::<2>::splat_bool(true).0, [u64::MAX; 2]);
        assert_eq!(Word::<2>::splat_bool(false).0, [0; 2]);
        assert_eq!(Word::<1>::from_u64(9).first(), 9);
        let mut v = Word::<4>::ZERO;
        v.set_sub(2, 5);
        assert_eq!(v.0, [0, 0, 5, 0]);
        assert_eq!(Word::<3>::from_fn(|i| i as u64).0, [0, 1, 2]);
    }

    #[test]
    fn golden_splat_broadcasts_lane_zero_per_sub_word() {
        let w = Word::<4>([0b1, 0b0, 0b111, 0b10]);
        assert_eq!(w.golden_splat().0, [u64::MAX, 0, u64::MAX, 0]);
    }

    #[test]
    fn blend_is_the_masked_force() {
        let orig = Word::<2>([0xFF00, 0x0001]);
        let value = Word::<2>([0x00FF, 0x0000]);
        let mask = Word::<2>([0x0F0F, 0x0001]);
        assert_eq!(orig.blend(value, mask).0, [0xF00F, 0x0000]);
    }

    #[test]
    fn resolve_prefers_config_then_env_then_auto() {
        // Explicit config values validate and win without consulting the env.
        assert_eq!(resolve_word_width(1).unwrap(), 1);
        assert_eq!(resolve_word_width(4).unwrap(), 4);
        assert_eq!(resolve_word_width(8).unwrap(), 8);
        match resolve_word_width(3) {
            Err(EngineError::InvalidConfig { reason }) => assert!(reason.contains("3")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Auto always lands on a supported width.
        assert!(WORD_WIDTHS.contains(&auto_word_width()));
        // Detected features are from the known set.
        for f in detected_cpu_features() {
            assert!(["avx2", "avx512f"].contains(&f));
        }
    }
}
